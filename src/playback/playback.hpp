// The playback engine: replays a recorded (or synthetic) condition trace
// for one flow under one routing scheme and computes, per 10-second
// interval, the probability that a packet sent in that interval arrives
// within the deadline -- plus the scheme's cost in transmissions per
// packet.
//
// This mirrors the paper's Playback Network Simulator methodology: all
// schemes replay the *identical* condition stream; adaptive schemes see
// conditions with a configurable staleness (default one interval, since
// loss statistics cannot be acted upon before they are collected).
//
// Healthy intervals (the overwhelming majority) take an exact fast path;
// intervals where any member link of the current dissemination graph is
// lossy are evaluated by Monte-Carlo over the per-hop outcome model.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "routing/scheme.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/trace.hpp"
#include "playback/delivery_model.hpp"

namespace dg::playback {

struct PlaybackParams {
  DeliveryModelParams delivery;
  /// Monte-Carlo samples per lossy interval.
  int mcSamples = 1000;
  /// Member-link loss rate above which an interval needs Monte-Carlo.
  double lossEpsilon = 1e-3;
  /// How stale the view driving adaptive decisions is, in intervals.
  /// 0 = oracle (decisions see current conditions), 1 = realistic.
  int viewStaleness = 1;
  /// An interval is counted as "problematic" for a flow/scheme when its
  /// miss probability exceeds this.
  double problematicThreshold = 1e-3;
  /// Seed driving all Monte-Carlo sampling (per-interval streams are
  /// derived deterministically, so results are independent of run order).
  std::uint64_t seed = 7;
  /// When set, FlowSchemeResult::intervalLatenciesUs records the selected
  /// graph's earliest-arrival latency for every interval where delivery
  /// is possible (for latency-distribution figures).
  bool collectIntervalLatencies = false;
};

/// One problematic interval of a flow/scheme run (sparse record).
struct ProblematicInterval {
  std::size_t interval = 0;
  double missProbability = 0.0;
};

struct FlowSchemeResult {
  routing::Flow flow;
  routing::SchemeKind scheme{};

  /// Packet-weighted mean miss probability over the whole trace.
  double unavailability = 0.0;
  /// Sum over intervals of missProbability * interval length, in seconds:
  /// the expected total unavailable time ("unavailable seconds").
  double unavailableSeconds = 0.0;
  /// Number of intervals with miss probability > problematicThreshold.
  std::size_t problematicIntervals = 0;
  /// Mean transmissions per packet (the paper's cost metric).
  double averageCost = 0.0;
  /// Mean on-time one-way latency proxy: earliest-arrival latency of the
  /// selected graph under current conditions, averaged over intervals
  /// where delivery is possible, in microseconds.
  double averageLatencyUs = 0.0;

  /// Sparse list of the problematic intervals (for classification and
  /// case-study plots).
  std::vector<ProblematicInterval> problems;
  /// Dense per-interval delivery latency (microseconds; only intervals
  /// where delivery is possible). Populated only when
  /// PlaybackParams::collectIntervalLatencies is set.
  std::vector<double> intervalLatenciesUs;
};

class PlaybackEngine {
 public:
  PlaybackEngine(const graph::Graph& overlay, const trace::Trace& trace,
                 PlaybackParams params);

  /// Replays the whole trace for one flow under one scheme. `telemetry`
  /// (nullable) collects per-interval counters and histograms labeled
  /// {flow="src->dst", scheme=...}, classification counts from the
  /// scheme, and GraphSwitch trace events; `telemetry->now` tracks the
  /// sim-time start of the interval being replayed.
  FlowSchemeResult run(routing::Flow flow, routing::SchemeKind kind,
                       const routing::SchemeParams& schemeParams,
                       telemetry::Telemetry* telemetry = nullptr) const;

  /// Replays an interval range [first, last) -- used by the case-study
  /// experiment and by tests.
  FlowSchemeResult runRange(routing::Flow flow, routing::SchemeKind kind,
                            const routing::SchemeParams& schemeParams,
                            std::size_t first, std::size_t last,
                            telemetry::Telemetry* telemetry = nullptr) const;

  /// Per-interval miss probabilities over a range (dense; for timelines).
  std::vector<double> missTimeline(routing::Flow flow,
                                   routing::SchemeKind kind,
                                   const routing::SchemeParams& schemeParams,
                                   std::size_t first, std::size_t last) const;

  const trace::Trace& trace() const { return *trace_; }
  const PlaybackParams& params() const { return params_; }

 private:
  struct IntervalEval {
    double miss = 0.0;
    double cost = 0.0;
    util::SimTime latency = util::kNever;
    bool monteCarlo = false;  ///< the lossy path actually sampled
  };
  IntervalEval evaluateInterval(const graph::DisseminationGraph& dg,
                                routing::Flow flow,
                                routing::SchemeKind kind,
                                std::size_t interval) const;

  const graph::Graph* overlay_;
  const trace::Trace* trace_;
  PlaybackParams params_;
};

}  // namespace dg::playback
