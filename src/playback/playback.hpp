// The playback engine: replays a recorded (or synthetic) condition trace
// for one flow under one routing scheme and computes, per 10-second
// interval, the probability that a packet sent in that interval arrives
// within the deadline -- plus the scheme's cost in transmissions per
// packet.
//
// This mirrors the paper's Playback Network Simulator methodology: all
// schemes replay the *identical* condition stream; adaptive schemes see
// conditions with a configurable staleness (default one interval, since
// loss statistics cannot be acted upon before they are collected).
//
// Healthy intervals (the overwhelming majority) take an exact fast path;
// intervals where any member link of the current dissemination graph is
// lossy are evaluated by Monte-Carlo over the per-hop outcome model.
//
// Hot-path architecture (see DESIGN.md, "Playback performance
// architecture"): replay is driven by trace::ConditionTimeline cursors
// (O(changes) per interval, zero allocation) handing out fingerprinted
// borrowed NetworkViews; routing decisions and deterministic interval
// evaluations are memoized across jobs in engine-owned, exact-keyed,
// internally synchronized memos. Monte-Carlo evaluations are never
// memoized -- each interval draws from its own deterministic RNG stream
// -- so results are bit-identical with the memos and cursor on or off.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "playback/delivery_model.hpp"
#include "routing/decision_memo.hpp"
#include "routing/scheme.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/condition_timeline.hpp"
#include "trace/trace.hpp"

namespace dg::playback {

struct PlaybackParams {
  DeliveryModelParams delivery;
  /// Monte-Carlo samples per lossy interval.
  int mcSamples = 1000;
  /// Member-link loss rate above which an interval needs Monte-Carlo.
  double lossEpsilon = 1e-3;
  /// How stale the view driving adaptive decisions is, in intervals.
  /// 0 = oracle (decisions see current conditions), 1 = realistic.
  int viewStaleness = 1;
  /// An interval is counted as "problematic" for a flow/scheme when its
  /// miss probability exceeds this.
  double problematicThreshold = 1e-3;
  /// Seed driving all Monte-Carlo sampling (per-interval streams are
  /// derived deterministically, so results are independent of run order).
  std::uint64_t seed = 7;
  /// When set, FlowSchemeResult::intervalLatenciesUs records the selected
  /// graph's earliest-arrival latency for every interval where delivery
  /// is possible (for latency-distribution figures).
  bool collectIntervalLatencies = false;
  /// Consult/populate the engine's cross-job decision and evaluation
  /// memos (results are bit-identical either way; off = recompute
  /// everything, for benchmarking and equivalence tests).
  bool decisionMemo = true;
  /// Drive replay with the condition-timeline cursor and fingerprinted
  /// views (off = legacy per-interval vector materialization; results
  /// are bit-identical either way).
  bool conditionCursor = true;
};

/// One problematic interval of a flow/scheme run (sparse record).
struct ProblematicInterval {
  std::size_t interval = 0;
  double missProbability = 0.0;
};

struct FlowSchemeResult {
  routing::Flow flow;
  routing::SchemeKind scheme{};

  /// Packet-weighted mean miss probability over the whole trace.
  double unavailability = 0.0;
  /// Sum over intervals of missProbability * interval length, in seconds:
  /// the expected total unavailable time ("unavailable seconds").
  double unavailableSeconds = 0.0;
  /// Number of intervals with miss probability > problematicThreshold.
  std::size_t problematicIntervals = 0;
  /// Mean transmissions per packet (the paper's cost metric).
  double averageCost = 0.0;
  /// Mean on-time one-way latency proxy: earliest-arrival latency of the
  /// selected graph under current conditions, averaged over intervals
  /// where delivery is possible, in microseconds.
  double averageLatencyUs = 0.0;

  /// Sparse list of the problematic intervals (for classification and
  /// case-study plots).
  std::vector<ProblematicInterval> problems;
  /// Dense per-interval delivery latency (microseconds; only intervals
  /// where delivery is possible). Populated only when
  /// PlaybackParams::collectIntervalLatencies is set.
  std::vector<double> intervalLatenciesUs;
};

class PlaybackEngine {
 public:
  PlaybackEngine(const graph::Graph& overlay, const trace::Trace& trace,
                 PlaybackParams params);

  /// Replays the whole trace for one flow under one scheme. `telemetry`
  /// (nullable) collects per-interval counters and histograms labeled
  /// {flow="src->dst", scheme=...}, classification counts from the
  /// scheme, and GraphSwitch trace events; `telemetry->now` tracks the
  /// sim-time start of the interval being replayed.
  FlowSchemeResult run(routing::Flow flow, routing::SchemeKind kind,
                       const routing::SchemeParams& schemeParams,
                       telemetry::Telemetry* telemetry = nullptr) const;

  /// Replays an interval range [first, last) -- used by the case-study
  /// experiment and by tests.
  FlowSchemeResult runRange(routing::Flow flow, routing::SchemeKind kind,
                            const routing::SchemeParams& schemeParams,
                            std::size_t first, std::size_t last,
                            telemetry::Telemetry* telemetry = nullptr) const;

  /// Per-interval miss probabilities over a range (dense; for timelines).
  /// Every interval is evaluated fresh (no run-local reuse), so
  /// Monte-Carlo intervals reflect their own per-interval RNG streams.
  std::vector<double> missTimeline(routing::Flow flow,
                                   routing::SchemeKind kind,
                                   const routing::SchemeParams& schemeParams,
                                   std::size_t first, std::size_t last) const;

  const trace::Trace& trace() const { return *trace_; }
  const PlaybackParams& params() const { return params_; }

  /// The per-interval content index built over the trace (exact
  /// memoization fingerprints; also useful for deviation statistics).
  const trace::ConditionIndex& conditionIndex() const {
    return conditionIndex_;
  }
  /// The engine's cross-job decision memo (for hit-rate reporting).
  const routing::DecisionMemo& decisionMemo() const { return decisionMemo_; }

 private:
  struct IntervalEval {
    double miss = 0.0;
    double cost = 0.0;
    util::SimTime latency = util::kNever;
    bool monteCarlo = false;  ///< the lossy path actually sampled
  };
  /// Exact key of a memoized deterministic interval evaluation:
  /// {flow source, flow destination, interned edge-list id, interval
  /// content id}. Engine-level delivery params are fixed per engine, so
  /// these four components determine the evaluation completely.
  using EvalKey = std::array<std::uint32_t, 4>;

  /// Shared replay core behind runRange (timelineOut == nullptr) and
  /// missTimeline (timelineOut != nullptr; per-interval miss appended,
  /// no run-local evaluation reuse, no telemetry).
  FlowSchemeResult runCore(routing::Flow flow, routing::SchemeKind kind,
                           const routing::SchemeParams& schemeParams,
                           std::size_t first, std::size_t last,
                           telemetry::Telemetry* telemetry,
                           std::vector<double>* timelineOut) const;

  std::optional<IntervalEval> findEval(const EvalKey& key) const;
  void storeEval(const EvalKey& key, const IntervalEval& eval) const;

  const graph::Graph* overlay_;
  const trace::Trace* trace_;
  PlaybackParams params_;
  trace::ConditionIndex conditionIndex_;

  // Cross-job memos. Mutable + internally synchronized: one const engine
  // is shared across experiment worker threads, and every memoized value
  // is a pure function of its exact key, so results are independent of
  // thread count and insertion order.
  mutable routing::DecisionMemo decisionMemo_;
  mutable std::mutex evalMutex_;
  mutable std::map<EvalKey, IntervalEval> evalMemo_;
};

}  // namespace dg::playback
