// Ground-truth classification of a flow's problematic intervals by where
// the trouble was relative to the flow (experiment E4).
//
// The paper's pivotal observation -- that the intervals where two
// disjoint paths fail are dominated by problems around the source or
// destination -- is reproduced here by joining each problematic interval
// against the generator's ground-truth event log and bucketing by the
// location of the impaired links.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "playback/playback.hpp"
#include "routing/scheme.hpp"
#include "trace/events.hpp"

namespace dg::playback {

struct ProblemClassification {
  std::size_t sourceOnly = 0;       ///< impaired links touch only the source
  std::size_t destinationOnly = 0;  ///< ... only the destination
  std::size_t middleOnly = 0;       ///< ... neither endpoint
  std::size_t sourceAndDestination = 0;  ///< both endpoints, no middle
  std::size_t endpointAndMiddle = 0;     ///< an endpoint plus mid-network
  std::size_t unattributed = 0;  ///< no ground-truth event was active

  std::size_t total() const {
    return sourceOnly + destinationOnly + middleOnly + sourceAndDestination +
           endpointAndMiddle + unattributed;
  }
  /// Fraction of attributed intervals that involve an endpoint problem.
  double endpointInvolvedFraction() const;
};

/// Classifies each problematic interval of `problems` for `flow` using
/// the ground-truth `events`. An interval is attributed to the locations
/// of every impaired link of every event active during it.
ProblemClassification classifyProblems(
    const graph::Graph& overlay, const std::vector<trace::ProblemEvent>& events,
    routing::Flow flow, const std::vector<ProblematicInterval>& problems);

/// Sums counts across flows.
ProblemClassification combineClassifications(
    const std::vector<ProblemClassification>& parts);

}  // namespace dg::playback
