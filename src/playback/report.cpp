#include "playback/report.hpp"

#include <sstream>

#include "util/stats.hpp"
#include "util/strings.hpp"

namespace dg::playback {

namespace {
using util::formatFixed;
using util::formatPercent;
using util::padLeft;
using util::padRight;
}  // namespace

std::string renderSummaryTable(const ExperimentResult& result,
                               const trace::Trace& trace,
                               std::size_t flowCount) {
  std::ostringstream out;
  const double traceDays =
      util::toSeconds(trace.duration()) / 86'400.0;
  out << "Routing scheme performance over "
      << formatFixed(traceDays, 1) << " days, " << flowCount << " flows\n";
  out << padRight("scheme", 22) << padLeft("unavail", 12)
      << padLeft("unavail_s", 12) << padLeft("problem_ivls", 14)
      << padLeft("gap_cover", 11) << padLeft("avg_cost", 10)
      << padLeft("cost_vs_2dp", 13) << '\n';
  for (const SchemeSummary& s : result.summary) {
    out << padRight(std::string(routing::schemeName(s.scheme)), 22)
        << padLeft(formatFixed(s.unavailability * 1e6, 1) + "ppm", 12)
        << padLeft(formatFixed(s.unavailableSeconds, 1), 12)
        << padLeft(std::to_string(s.problematicIntervals), 14)
        << padLeft(formatPercent(s.gapCoverage, 2), 11)
        << padLeft(formatFixed(s.averageCost, 2), 10)
        << padLeft(s.costVsTwoDisjoint > 0
                       ? formatFixed(s.costVsTwoDisjoint, 3) + "x"
                       : "-",
                   13)
        << '\n';
  }
  return out.str();
}

std::string renderPerFlowTable(const ExperimentResult& result,
                               const ExperimentConfig& config,
                               const trace::Topology& topology) {
  std::ostringstream out;
  out << padRight("flow", 12);
  for (const routing::SchemeKind kind : config.schemes) {
    out << padLeft(std::string(routing::schemeName(kind)), 22);
  }
  out << '\n';
  const std::size_t schemeCount = config.schemes.size();
  for (std::size_t f = 0; f < config.flows.size(); ++f) {
    const routing::Flow flow = config.flows[f];
    out << padRight(topology.name(flow.source) + "->" +
                        topology.name(flow.destination),
                    12);
    for (std::size_t s = 0; s < schemeCount; ++s) {
      const FlowSchemeResult& r = result.at(f, s, schemeCount);
      out << padLeft(formatFixed(r.unavailability * 1e6, 1) + "ppm", 22);
    }
    out << '\n';
  }
  return out.str();
}

std::string renderCostTable(const ExperimentResult& result) {
  std::ostringstream out;
  out << padRight("scheme", 22) << padLeft("avg_cost", 10)
      << padLeft("vs_two_disjoint", 17) << '\n';
  for (const SchemeSummary& s : result.summary) {
    out << padRight(std::string(routing::schemeName(s.scheme)), 22)
        << padLeft(formatFixed(s.averageCost, 2), 10)
        << padLeft(s.costVsTwoDisjoint > 0
                       ? formatFixed((s.costVsTwoDisjoint - 1.0) * 100.0, 2) +
                             "%"
                       : "-",
                   17)
        << '\n';
  }
  return out.str();
}

std::string renderUnavailabilityCdf(const ExperimentResult& result,
                                    const ExperimentConfig& config) {
  std::ostringstream out;
  out << "scheme unavailability_ppm cumulative_fraction\n";
  const std::size_t schemeCount = config.schemes.size();
  for (std::size_t s = 0; s < schemeCount; ++s) {
    util::EmpiricalCdf cdf;
    for (std::size_t f = 0; f < config.flows.size(); ++f) {
      cdf.add(result.at(f, s, schemeCount).unavailability * 1e6);
    }
    const auto& samples = cdf.sortedSamples();
    for (std::size_t i = 0; i < samples.size(); ++i) {
      out << routing::schemeName(config.schemes[s]) << ' '
          << formatFixed(samples[i], 2) << ' '
          << formatFixed(static_cast<double>(i + 1) /
                             static_cast<double>(samples.size()),
                         4)
          << '\n';
    }
  }
  return out.str();
}

std::string renderClassification(const ProblemClassification& counts) {
  std::ostringstream out;
  const auto total = static_cast<double>(counts.total());
  const auto row = [&](const char* label, std::size_t count) {
    out << padRight(label, 26) << padLeft(std::to_string(count), 8)
        << padLeft(total > 0
                       ? formatPercent(static_cast<double>(count) / total, 1)
                       : "-",
                   9)
        << '\n';
  };
  out << padRight("problem location", 26) << padLeft("count", 8)
      << padLeft("share", 9) << '\n';
  row("source only", counts.sourceOnly);
  row("destination only", counts.destinationOnly);
  row("middle only", counts.middleOnly);
  row("source+destination", counts.sourceAndDestination);
  row("endpoint+middle", counts.endpointAndMiddle);
  row("unattributed", counts.unattributed);
  out << padRight("endpoint involved", 26) << padLeft("", 8)
      << padLeft(formatPercent(counts.endpointInvolvedFraction(), 1), 9)
      << '\n';
  return out.str();
}

}  // namespace dg::playback
