// Experiment runner: the full flows x schemes sweep over one trace, with
// gap-coverage aggregation (experiment E3 / the paper's headline table).
#pragma once

#include <vector>

#include "playback/playback.hpp"
#include "routing/scheme.hpp"
#include "trace/topology.hpp"

namespace dg::playback {

struct ExperimentConfig {
  std::vector<routing::Flow> flows;
  std::vector<routing::SchemeKind> schemes = routing::allSchemeKinds();
  routing::SchemeParams schemeParams;
  PlaybackParams playback;
  /// The "traditional" end of the gap (abstract: single-path approach).
  routing::SchemeKind gapBaseline = routing::SchemeKind::StaticSinglePath;
  /// The optimal-but-expensive end of the gap.
  routing::SchemeKind gapOptimal =
      routing::SchemeKind::TimeConstrainedFlooding;
  /// Worker threads; 0 = hardware concurrency.
  unsigned threads = 0;
};

struct SchemeSummary {
  routing::SchemeKind scheme{};
  /// Mean unavailability across flows (flows weighted equally).
  double unavailability = 0.0;
  /// Total expected unavailable seconds, summed across flows.
  double unavailableSeconds = 0.0;
  std::size_t problematicIntervals = 0;
  /// Mean transmissions per packet across flows.
  double averageCost = 0.0;
  /// Fraction of the baseline->optimal unavailability gap this scheme
  /// covers: (unavail(baseline) - unavail(scheme)) /
  ///         (unavail(baseline) - unavail(optimal)).
  double gapCoverage = 0.0;
  /// Cost relative to the static two-disjoint-paths scheme.
  double costVsTwoDisjoint = 0.0;
};

struct ExperimentResult {
  /// flows-major: perFlow[f * schemes.size() + s].
  std::vector<FlowSchemeResult> perFlow;
  std::vector<SchemeSummary> summary;  ///< in config.schemes order

  const FlowSchemeResult& at(std::size_t flowIndex,
                             std::size_t schemeIndex,
                             std::size_t schemeCount) const {
    return perFlow[flowIndex * schemeCount + schemeIndex];
  }
};

/// Runs every (flow, scheme) pair of the config over the trace;
/// deterministic regardless of thread count. When `telemetry` is given,
/// each worker job records into its own private Telemetry and the
/// per-job objects are folded into `telemetry` sequentially in job-index
/// order after the join -- so the merged metrics and trace log (and
/// therefore every export format) are byte-identical for any `threads`
/// setting.
ExperimentResult runExperiment(const graph::Graph& overlay,
                               const trace::Trace& trace,
                               const ExperimentConfig& config,
                               telemetry::Telemetry* telemetry = nullptr);

/// The default 16 transcontinental evaluation flows on the ltn12
/// topology: four east-coast sites paired with four western sites, both
/// directions.
std::vector<routing::Flow> transcontinentalFlows(
    const trace::Topology& topology);

}  // namespace dg::playback
