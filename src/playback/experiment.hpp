// Experiment runner: the full flows x schemes sweep over one trace, with
// gap-coverage aggregation (experiment E3 / the paper's headline table).
#pragma once

#include <string>
#include <vector>

#include "playback/memo_cache.hpp"
#include "playback/playback.hpp"
#include "routing/scheme.hpp"
#include "trace/topology.hpp"

namespace dg::playback {

/// Half-open interval range a flow is active over. lastInterval values
/// beyond the trace end are clamped to it.
struct FlowWindow {
  std::size_t firstInterval = 0;
  std::size_t lastInterval = static_cast<std::size_t>(-1);
};

struct ExperimentConfig {
  std::vector<routing::Flow> flows;
  /// Per-flow active windows for open-loop fleet workloads. Empty =
  /// every flow scores the whole trace (the historical behavior).
  /// Otherwise must parallel `flows` with a non-empty clamped window per
  /// flow. Windowed jobs roll routing-decision state forward over the
  /// pre-window history exactly like the packed runner's chunk warm-up,
  /// so the two runners agree bit for bit when their accumulation block
  /// lengths match.
  std::vector<FlowWindow> flowWindows;
  std::vector<routing::SchemeKind> schemes = routing::allSchemeKinds();
  routing::SchemeParams schemeParams;
  PlaybackParams playback;
  /// The "traditional" end of the gap (abstract: single-path approach).
  routing::SchemeKind gapBaseline = routing::SchemeKind::StaticSinglePath;
  /// The optimal-but-expensive end of the gap.
  routing::SchemeKind gapOptimal =
      routing::SchemeKind::TimeConstrainedFlooding;
  /// Worker threads; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Packed runner only: when non-empty, the persistent decision-memo
  /// sidecar at this path is loaded (and validated against the trace's
  /// content fingerprint) before the sweep and rewritten afterwards.
  /// Ignored when PlaybackParams::decisionMemo is off.
  std::string memoCachePath;
};

struct SchemeSummary {
  routing::SchemeKind scheme{};
  /// Mean unavailability across flows (flows weighted equally).
  double unavailability = 0.0;
  /// Total expected unavailable seconds, summed across flows.
  double unavailableSeconds = 0.0;
  std::size_t problematicIntervals = 0;
  /// Mean transmissions per packet across flows.
  double averageCost = 0.0;
  /// Fraction of the baseline->optimal unavailability gap this scheme
  /// covers: (unavail(baseline) - unavail(scheme)) /
  ///         (unavail(baseline) - unavail(optimal)).
  double gapCoverage = 0.0;
  /// Cost relative to the static two-disjoint-paths scheme.
  double costVsTwoDisjoint = 0.0;
};

struct ExperimentResult {
  /// flows-major: perFlow[f * schemes.size() + s].
  std::vector<FlowSchemeResult> perFlow;
  std::vector<SchemeSummary> summary;  ///< in config.schemes order

  /// Packed runner, when ExperimentConfig::memoCachePath was set: what
  /// happened to the sidecar on load (kMissing also when no path given).
  MemoCacheLoadResult memoCacheLoad = MemoCacheLoadResult::kMissing;
  /// Decision-memo traffic of this run (hit rates; packed runner only).
  routing::DecisionMemo::Stats memoStats;
  /// Per-stage wall-clock totals summed over all workers (populated when
  /// PlaybackParams::collectStageTimings is set; see StageTimings).
  struct StageBreakdown {
    std::uint64_t decodeNs = 0;
    std::uint64_t mcNs = 0;
    std::uint64_t memoNs = 0;
    std::uint64_t mergeNs = 0;
  };
  StageBreakdown stages;

  const FlowSchemeResult& at(std::size_t flowIndex,
                             std::size_t schemeIndex,
                             std::size_t schemeCount) const {
    return perFlow[flowIndex * schemeCount + schemeIndex];
  }
};

/// Runs every (flow, scheme) pair of the config over the trace;
/// deterministic regardless of thread count. When `telemetry` is given,
/// each worker job records into its own private Telemetry and the
/// per-job objects are folded into `telemetry` sequentially in job-index
/// order after the join -- so the merged metrics and trace log (and
/// therefore every export format) are byte-identical for any `threads`
/// setting.
ExperimentResult runExperiment(const graph::Graph& overlay,
                               const trace::Trace& trace,
                               const ExperimentConfig& config,
                               telemetry::Telemetry* telemetry = nullptr);

/// Chunk-parallel variant of runExperiment over a packed dgtrace file:
/// the work unit is (flow, scheme, chunk) rather than (flow, scheme), so
/// a sweep saturates cores even with a single flow/scheme. Each worker
/// thread opens its own PackedTraceReader and feeds its cursors from
/// private PackedConditionSources (decode state is never shared); decision
/// state is rolled forward per chunk via the schemes' steadyOnBaseline()
/// fast path. PlaybackParams::conditionCursor is forced on and
/// accumBlockIntervals is forced to the container's chunk length, so the
/// per-job fold of chunk partials (done in ascending chunk order)
/// reproduces the single-threaded blocked run bit for bit at any thread
/// count. Telemetry follows the runExperiment discipline: per-task
/// private instruments, merged sequentially in task order -- metric
/// exports are byte-identical for any `threads` (chunk boundaries reset
/// trace-event dedup, so *event* streams differ from the unchunked
/// runner's, deterministically).
///
/// When config.memoCachePath is non-empty, the decision-memo sidecar is
/// loaded (validated against the trace's content fingerprint; a bad file
/// just means a cold start) before the sweep and rewritten afterwards.
ExperimentResult runPackedExperiment(const graph::Graph& overlay,
                                     const std::string& packedPath,
                                     const ExperimentConfig& config,
                                     telemetry::Telemetry* telemetry = nullptr);

/// The default 16 transcontinental evaluation flows on the ltn12
/// topology: four east-coast sites paired with four western sites, both
/// directions.
std::vector<routing::Flow> transcontinentalFlows(
    const trace::Topology& topology);

}  // namespace dg::playback
