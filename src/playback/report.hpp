// Plain-text report rendering for the experiment binaries: fixed-width
// tables in the shape of the paper's evaluation artifacts.
#pragma once

#include <string>
#include <vector>

#include "playback/classification.hpp"
#include "playback/experiment.hpp"
#include "trace/topology.hpp"

namespace dg::playback {

/// The headline table (E3): one row per scheme with unavailability,
/// unavailable seconds, problematic intervals, gap coverage and cost.
std::string renderSummaryTable(const ExperimentResult& result,
                               const trace::Trace& trace,
                               std::size_t flowCount);

/// Per-flow unavailability matrix (rows: flows, columns: schemes).
std::string renderPerFlowTable(const ExperimentResult& result,
                               const ExperimentConfig& config,
                               const trace::Topology& topology);

/// Cost table (E7): per-scheme average cost, absolute and relative to the
/// static two-disjoint-path scheme.
std::string renderCostTable(const ExperimentResult& result);

/// CDF of per-flow unavailability per scheme (E5): one line per flow
/// quantile per scheme, columns "scheme unavailability cumulative_frac".
std::string renderUnavailabilityCdf(const ExperimentResult& result,
                                    const ExperimentConfig& config);

/// Problem-location classification (E4).
std::string renderClassification(const ProblemClassification& counts);

}  // namespace dg::playback
