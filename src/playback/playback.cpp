#include "playback/playback.hpp"

#include <stdexcept>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dg::playback {

namespace {

/// Deterministic per-(flow, scheme, interval) RNG stream so results do
/// not depend on evaluation order.
std::uint64_t mixSeed(std::uint64_t seed, routing::Flow flow,
                      routing::SchemeKind kind, std::size_t interval) {
  std::uint64_t x = seed;
  const auto mix = [&x](std::uint64_t v) {
    x ^= v + 0x9E3779B97F4A7C15ULL + (x << 6) + (x >> 2);
  };
  mix(flow.source);
  mix(flow.destination);
  mix(static_cast<std::uint64_t>(kind));
  mix(interval);
  return x;
}

}  // namespace

PlaybackEngine::PlaybackEngine(const graph::Graph& overlay,
                               const trace::Trace& trace,
                               PlaybackParams params)
    : overlay_(&overlay), trace_(&trace), params_(params) {
  if (trace.edgeCount() != overlay.edgeCount())
    throw std::invalid_argument(
        "PlaybackEngine: trace edge count does not match overlay");
  if (params_.viewStaleness < 0)
    throw std::invalid_argument("PlaybackEngine: negative staleness");
}

PlaybackEngine::IntervalEval PlaybackEngine::evaluateInterval(
    const graph::DisseminationGraph& dg, routing::Flow flow,
    routing::SchemeKind kind, std::size_t interval) const {
  const std::vector<double> lossRates = trace_->lossRatesAt(interval);
  const std::vector<util::SimTime> latencies =
      trace_->latenciesAt(interval);

  IntervalEval eval;
  if (nearLossless(dg, lossRates, params_.lossEpsilon)) {
    eval.miss = missProbabilityNearLossless(dg, lossRates, latencies,
                                            params_.delivery);
  } else {
    util::Rng rng(mixSeed(params_.seed, flow, kind, interval));
    eval.miss = 1.0 - onTimeProbabilityMC(dg, lossRates, latencies,
                                          params_.delivery,
                                          params_.mcSamples, rng);
    eval.monteCarlo = true;
  }
  eval.cost = static_cast<double>(dg.cost(latencies));
  eval.latency = dg.latencyToDestination(latencies);
  return eval;
}

FlowSchemeResult PlaybackEngine::run(
    routing::Flow flow, routing::SchemeKind kind,
    const routing::SchemeParams& schemeParams,
    telemetry::Telemetry* telemetry) const {
  return runRange(flow, kind, schemeParams, 0, trace_->intervalCount(),
                  telemetry);
}

FlowSchemeResult PlaybackEngine::runRange(
    routing::Flow flow, routing::SchemeKind kind,
    const routing::SchemeParams& schemeParams, std::size_t first,
    std::size_t last, telemetry::Telemetry* telemetry) const {
  if (first > last || last > trace_->intervalCount())
    throw std::out_of_range("PlaybackEngine::runRange: bad range");

  auto scheme = routing::makeScheme(kind, *overlay_, flow, schemeParams);
  const routing::NetworkView baselineView =
      routing::NetworkView::baseline(*trace_);
  scheme->initialize(baselineView);

  // Telemetry handles, resolved once per run (null when detached).
  telemetry::Counter* intervalsCounter = nullptr;
  telemetry::Counter* mcIntervalsCounter = nullptr;
  telemetry::Counter* mcSamplesCounter = nullptr;
  telemetry::Counter* switchCounter = nullptr;
  telemetry::HistogramMetric* missHistogram = nullptr;
  if (telemetry != nullptr) {
    const std::string flowLabel = std::to_string(flow.source) + "->" +
                                  std::to_string(flow.destination);
    const std::string schemeLabel{routing::schemeName(kind)};
    scheme->setTelemetry(telemetry, flowLabel);
    const telemetry::Labels labels{{"flow", flowLabel},
                                   {"scheme", schemeLabel}};
    telemetry::MetricsRegistry& metrics = telemetry->metrics;
    intervalsCounter =
        &metrics.counter("dg_playback_intervals_total", labels);
    mcIntervalsCounter =
        &metrics.counter("dg_playback_mc_intervals_total", labels);
    mcSamplesCounter =
        &metrics.counter("dg_playback_mc_samples_total", labels);
    switchCounter =
        &metrics.counter("dg_routing_graph_switches_total", labels);
    missHistogram = &metrics.histogram("dg_playback_miss_probability", 0.0,
                                       1.0, 20, labels);
  }
  std::vector<graph::EdgeId> lastSelectedEdges;
  bool haveSelected = false;

  FlowSchemeResult result;
  result.flow = flow;
  result.scheme = kind;

  util::WeightedMean missMean;
  util::OnlineStats costStats;
  util::OnlineStats latencyStats;
  const double intervalSeconds =
      util::toSeconds(trace_->intervalLength());

  // Cache: when the interval has no deviations and the scheme returns the
  // same graph as last time, the evaluation is unchanged.
  std::vector<graph::EdgeId> cachedEdges;
  IntervalEval cachedEval;
  bool cacheValid = false;

  const auto staleness = static_cast<std::size_t>(params_.viewStaleness);
  for (std::size_t t = first; t < last; ++t) {
    if (telemetry != nullptr) {
      telemetry->now =
          static_cast<util::SimTime>(t) * trace_->intervalLength();
    }
    // --- Decision: what does the scheme believe right now? -------------
    const graph::DisseminationGraph* dg = nullptr;
    if (t < first + staleness) {
      dg = &scheme->select(baselineView);
    } else {
      const std::size_t viewInterval = t - staleness;
      if (!trace_->hasDeviation(viewInterval)) {
        dg = &scheme->select(baselineView);
      } else {
        const routing::NetworkView view =
            routing::NetworkView::atInterval(*trace_, viewInterval);
        dg = &scheme->select(view);
      }
    }
    if (telemetry != nullptr) {
      if (haveSelected && dg->edges() != lastSelectedEdges) {
        switchCounter->inc();
        telemetry->trace.record(
            telemetry->now, telemetry::TraceEventKind::GraphSwitch, -1,
            flow.source, -1, static_cast<double>(dg->edges().size()),
            std::string(routing::schemeName(kind)));
      }
      lastSelectedEdges = dg->edges();
      haveSelected = true;
    }

    // --- Outcome under the interval's true conditions ------------------
    IntervalEval eval;
    const bool clean = !trace_->hasDeviation(t);
    if (clean && cacheValid && dg->edges() == cachedEdges) {
      eval = cachedEval;
    } else {
      eval = evaluateInterval(*dg, flow, kind, t);
      if (clean) {
        cachedEdges = dg->edges();
        cachedEval = eval;
        cacheValid = true;
      }
      if (eval.monteCarlo && mcIntervalsCounter != nullptr) {
        mcIntervalsCounter->inc();
        mcSamplesCounter->inc(static_cast<std::uint64_t>(params_.mcSamples));
      }
    }
    if (intervalsCounter != nullptr) {
      intervalsCounter->inc();
      missHistogram->observe(eval.miss);
    }

    missMean.add(eval.miss, 1.0);
    costStats.add(eval.cost);
    if (eval.latency != util::kNever) {
      latencyStats.add(static_cast<double>(eval.latency));
      if (params_.collectIntervalLatencies) {
        result.intervalLatenciesUs.push_back(
            static_cast<double>(eval.latency));
      }
    }
    result.unavailableSeconds += eval.miss * intervalSeconds;
    if (eval.miss > params_.problematicThreshold) {
      ++result.problematicIntervals;
      result.problems.push_back(ProblematicInterval{t, eval.miss});
    }
  }

  result.unavailability = missMean.mean();
  result.averageCost = costStats.mean();
  result.averageLatencyUs = latencyStats.mean();
  return result;
}

std::vector<double> PlaybackEngine::missTimeline(
    routing::Flow flow, routing::SchemeKind kind,
    const routing::SchemeParams& schemeParams, std::size_t first,
    std::size_t last) const {
  if (first > last || last > trace_->intervalCount())
    throw std::out_of_range("PlaybackEngine::missTimeline: bad range");

  auto scheme = routing::makeScheme(kind, *overlay_, flow, schemeParams);
  const routing::NetworkView baselineView =
      routing::NetworkView::baseline(*trace_);
  scheme->initialize(baselineView);

  std::vector<double> timeline;
  timeline.reserve(last - first);
  const auto staleness = static_cast<std::size_t>(params_.viewStaleness);
  for (std::size_t t = first; t < last; ++t) {
    const graph::DisseminationGraph* dg = nullptr;
    if (t < first + staleness || !trace_->hasDeviation(t - staleness)) {
      dg = &scheme->select(baselineView);
    } else {
      const routing::NetworkView view =
          routing::NetworkView::atInterval(*trace_, t - staleness);
      dg = &scheme->select(view);
    }
    timeline.push_back(evaluateInterval(*dg, flow, kind, t).miss);
  }
  return timeline;
}

}  // namespace dg::playback
