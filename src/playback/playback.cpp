#include "playback/playback.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/rng.hpp"
#include "util/wall_clock.hpp"

namespace dg::playback {

namespace {

/// Deterministic per-(flow, scheme, interval) RNG stream so results do
/// not depend on evaluation order.
std::uint64_t mixSeed(std::uint64_t seed, routing::Flow flow,
                      routing::SchemeKind kind, std::size_t interval) {
  std::uint64_t x = seed;
  const auto mix = [&x](std::uint64_t v) {
    x ^= v + 0x9E3779B97F4A7C15ULL + (x << 6) + (x >> 2);
  };
  mix(flow.source);
  mix(flow.destination);
  mix(static_cast<std::uint64_t>(kind));
  mix(interval);
  return x;
}

}  // namespace

// dgcheck: cold: runs once per chunk at merge time, not per interval
void RunPartial::merge(RunPartial&& later) {
  missMean.merge(later.missMean);
  costStats.merge(later.costStats);
  latencyStats.merge(later.latencyStats);
  unavailableSeconds += later.unavailableSeconds;
  problematicIntervals += later.problematicIntervals;
  if (problems.empty()) {
    problems = std::move(later.problems);
  } else {
    problems.insert(problems.end(), later.problems.begin(),
                    later.problems.end());
  }
  if (intervalLatenciesUs.empty()) {
    intervalLatenciesUs = std::move(later.intervalLatenciesUs);
  } else {
    intervalLatenciesUs.insert(intervalLatenciesUs.end(),
                               later.intervalLatenciesUs.begin(),
                               later.intervalLatenciesUs.end());
  }
}

PlaybackEngine::PlaybackEngine(const graph::Graph& overlay,
                               const trace::Trace& trace,
                               PlaybackParams params)
    : overlay_(&overlay),
      trace_(&trace),
      params_(params),
      conditionIndex_(trace) {
  if (trace.edgeCount() != overlay.edgeCount())
    throw std::invalid_argument(
        "PlaybackEngine: trace edge count does not match overlay");
  if (params_.viewStaleness < 0)
    throw std::invalid_argument("PlaybackEngine: negative staleness");
  for (std::size_t t = 0; t < trace.intervalCount(); ++t) {
    if (trace.hasDeviation(t)) deviatingIntervals_.push_back(t);
  }
}

std::size_t PlaybackEngine::nextDeviatingDecision(std::size_t fromInterval,
                                                  std::size_t staleness)
    const {
  // The decision at t sees interval t - staleness, so the first candidate
  // deviation is at view interval max(fromInterval, staleness) -
  // staleness.
  const std::size_t fromView =
      fromInterval > staleness ? fromInterval - staleness : 0;
  const auto it = std::lower_bound(deviatingIntervals_.begin(),
                                   deviatingIntervals_.end(), fromView);
  if (it == deviatingIntervals_.end()) return trace_->intervalCount();
  return std::max(fromInterval, *it + staleness);
}

std::optional<PlaybackEngine::IntervalEval> PlaybackEngine::findEval(
    const EvalKey& key) const {
  const std::scoped_lock lock(evalMutex_);
  const auto it = evalMemo_.find(key);
  if (it == evalMemo_.end()) return std::nullopt;
  return it->second;
}

void PlaybackEngine::storeEval(const EvalKey& key,
                               const IntervalEval& eval) const {
  const std::scoped_lock lock(evalMutex_);
  evalMemo_.emplace(key, eval);
}

FlowSchemeResult PlaybackEngine::run(
    routing::Flow flow, routing::SchemeKind kind,
    const routing::SchemeParams& schemeParams,
    telemetry::Telemetry* telemetry) const {
  return runRange(flow, kind, schemeParams, 0, trace_->intervalCount(),
                  telemetry);
}

FlowSchemeResult PlaybackEngine::runRange(
    routing::Flow flow, routing::SchemeKind kind,
    const routing::SchemeParams& schemeParams, std::size_t first,
    std::size_t last, telemetry::Telemetry* telemetry) const {
  if (first > last || last > trace_->intervalCount())
    throw std::out_of_range("PlaybackEngine::runRange: bad range");
  return runCore(flow, kind, schemeParams, first, last, telemetry, nullptr);
}

std::vector<double> PlaybackEngine::missTimeline(
    routing::Flow flow, routing::SchemeKind kind,
    const routing::SchemeParams& schemeParams, std::size_t first,
    std::size_t last) const {
  if (first > last || last > trace_->intervalCount())
    throw std::out_of_range("PlaybackEngine::missTimeline: bad range");
  std::vector<double> timeline;
  timeline.reserve(last - first);
  runCore(flow, kind, schemeParams, first, last, nullptr, &timeline);
  return timeline;
}

FlowSchemeResult PlaybackEngine::runCore(
    routing::Flow flow, routing::SchemeKind kind,
    const routing::SchemeParams& schemeParams, std::size_t first,
    std::size_t last, telemetry::Telemetry* telemetry,
    std::vector<double>* timelineOut) const {
  auto scheme = routing::makeScheme(kind, *overlay_, flow, schemeParams);
  if (params_.decisionMemo) {
    scheme->setDecisionMemo(
        &decisionMemo_, decisionMemo_.contextKey(kind, flow, schemeParams));
  }
  const routing::NetworkView baselineView =
      routing::NetworkView::baseline(*trace_);
  scheme->initialize(baselineView);

  // Replay cursors: the decision cursor tracks the (stale) interval the
  // scheme sees, the truth cursor tracks the interval being scored.
  trace::ConditionTimeline decisionCursor(*trace_);
  trace::ConditionTimeline truthCursor(*trace_);

  ScoreSpec spec;
  spec.scheme = scheme.get();
  spec.baselineView = &baselineView;
  spec.flow = flow;
  spec.kind = kind;
  spec.first = first;
  spec.last = last;
  spec.warmupUntil = first + static_cast<std::size_t>(params_.viewStaleness);
  spec.decisionCursor = &decisionCursor;
  spec.truthCursor = &truthCursor;
  spec.telemetry = telemetry;
  spec.timelineOut = timelineOut;
  // runRange reuses the evaluation of clean intervals while the selected
  // graph is unchanged (including Monte-Carlo ones -- identical inputs,
  // identical distribution); missTimeline evaluates every interval fresh
  // so each Monte-Carlo interval reflects its own RNG stream.
  spec.reuseCleanEvals = timelineOut == nullptr;
  return finalizePartial(flow, kind, scoreIntervals(spec));
}

// dgcheck: hot
RunPartial PlaybackEngine::runChunkPartial(
    routing::Flow flow, routing::SchemeKind kind,
    const routing::SchemeParams& schemeParams, std::size_t first,
    std::size_t last, trace::ConditionSource* decisionSource,
    trace::ConditionSource* truthSource,
    telemetry::Telemetry* telemetry) const {
  if (first > last || last > trace_->intervalCount())
    throw std::out_of_range("PlaybackEngine::runChunkPartial: bad range");
  if (!params_.conditionCursor)
    throw std::logic_error(
        "PlaybackEngine::runChunkPartial requires conditionCursor mode");

  auto scheme = routing::makeScheme(kind, *overlay_, flow, schemeParams);
  if (params_.decisionMemo) {
    scheme->setDecisionMemo(
        &decisionMemo_, decisionMemo_.contextKey(kind, flow, schemeParams));
  }
  const routing::NetworkView baselineView =
      routing::NetworkView::baseline(*trace_);
  scheme->initialize(baselineView);

  std::optional<trace::ConditionTimeline> decisionCursor;
  std::optional<trace::ConditionTimeline> truthCursor;
  if (decisionSource != nullptr) {
    decisionCursor.emplace(*decisionSource);
  } else {
    decisionCursor.emplace(*trace_);
  }
  if (truthSource != nullptr) {
    truthCursor.emplace(*truthSource);
  } else {
    truthCursor.emplace(*trace_);
  }

  // Warm-up replay: roll the scheme's decision state over [0, first)
  // exactly as a full run would -- telemetry is detached, so skipped
  // fixed-point selects are unobservable -- jumping over clean steady
  // spans straight to the next interval whose decision view deviates.
  const auto staleness = static_cast<std::size_t>(params_.viewStaleness);
  const graph::DisseminationGraph* dg = nullptr;
  std::size_t t = 0;
  while (t < first) {
    if (t < staleness || !trace_->hasDeviation(t - staleness)) {
      dg = &scheme->select(baselineView);
      if (scheme->steadyOnBaseline()) {
        t = nextDeviatingDecision(t + 1, staleness);
        continue;
      }
      ++t;
    } else {
      const std::size_t viewInterval = t - staleness;
      decisionCursor->seek(viewInterval);
      const routing::NetworkView view = routing::NetworkView::borrowing(
          *decisionCursor, conditionIndex_.contentId(viewInterval));
      dg = &scheme->select(view);
      ++t;
    }
  }

  ScoreSpec spec;
  spec.scheme = scheme.get();
  spec.baselineView = &baselineView;
  spec.flow = flow;
  spec.kind = kind;
  spec.first = first;
  spec.last = last;
  spec.warmupUntil = staleness;  // scheme history starts at interval 0
  spec.decisionCursor = &*decisionCursor;
  spec.truthCursor = &*truthCursor;
  spec.telemetry = telemetry;
  spec.timelineOut = nullptr;
  spec.reuseCleanEvals = true;
  if (telemetry != nullptr && dg != nullptr) {
    // GraphSwitch continuity: the previous chunk ended with this
    // selection in force.
    spec.lastSelectedEdges = dg->edges();
    spec.haveSelected = true;
  }
  return scoreIntervals(spec);
}

FlowSchemeResult PlaybackEngine::finalizePartial(routing::Flow flow,
                                                 routing::SchemeKind kind,
                                                 RunPartial&& total) const {
  FlowSchemeResult result;
  result.flow = flow;
  result.scheme = kind;
  result.unavailability = total.missMean.mean();
  result.unavailableSeconds = total.unavailableSeconds;
  result.problematicIntervals = total.problematicIntervals;
  result.averageCost = total.costStats.mean();
  result.averageLatencyUs = total.latencyStats.mean();
  result.problems = std::move(total.problems);
  result.intervalLatenciesUs = std::move(total.intervalLatenciesUs);
  return result;
}

RunPartial PlaybackEngine::scoreIntervals(ScoreSpec& spec) const {
  // dgcheck: setup begin
  const bool useMemo = params_.decisionMemo;
  const bool useCursor = params_.conditionCursor;
  const bool reuseCleanEvals = spec.reuseCleanEvals;
  routing::RoutingScheme& scheme = *spec.scheme;
  telemetry::Telemetry* telemetry = spec.telemetry;

  // Telemetry handles, resolved once per range (null when detached).
  telemetry::Counter* intervalsCounter = nullptr;
  telemetry::Counter* mcIntervalsCounter = nullptr;
  telemetry::Counter* mcSamplesCounter = nullptr;
  telemetry::Counter* switchCounter = nullptr;
  telemetry::HistogramMetric* missHistogram = nullptr;
  if (telemetry != nullptr) {
    const std::string flowLabel = std::to_string(spec.flow.source) + "->" +
                                  std::to_string(spec.flow.destination);
    const std::string schemeLabel{routing::schemeName(spec.kind)};
    scheme.setTelemetry(telemetry, flowLabel);
    const telemetry::Labels labels{{"flow", flowLabel},
                                   {"scheme", schemeLabel}};
    telemetry::MetricsRegistry& metrics = telemetry->metrics;
    intervalsCounter =
        &metrics.counter("dg_playback_intervals_total", labels);
    mcIntervalsCounter =
        &metrics.counter("dg_playback_mc_intervals_total", labels);
    mcSamplesCounter =
        &metrics.counter("dg_playback_mc_samples_total", labels);
    switchCounter =
        &metrics.counter("dg_routing_graph_switches_total", labels);
    missHistogram = &metrics.histogram("dg_playback_miss_probability", 0.0,
                                       1.0, 20, labels);
  }

  // Steady fast path: while the scheme is at its clean fixed point and
  // the decision view stays on baseline, select() calls are provably
  // no-ops and may be skipped -- but only when nobody can observe them:
  // telemetry counts classifications per call, and missTimeline
  // (reuseCleanEvals == false) must evaluate every interval fresh.
  const bool fastPathOk =
      useCursor && telemetry == nullptr && reuseCleanEvals;

  RunPartial total;
  RunPartial block;
  const std::size_t blockLen = params_.accumBlockIntervals;
  RunPartial* const acc = blockLen > 0 ? &block : &total;

  const double intervalSeconds = util::toSeconds(trace_->intervalLength());
  DeliveryWorkspace workspace;

  // Run-local reuse: when the interval is clean and the scheme returns
  // the same graph as last time, the evaluation is unchanged. `cachedDg`
  // short-circuits the edge-list comparison: it is reset on every actual
  // select()/fold, so pointer equality implies the selection was not
  // touched since the cache was filled.
  std::vector<graph::EdgeId> cachedEdges;
  IntervalEval cachedEval;
  bool cacheValid = false;
  const graph::DisseminationGraph* cachedDg = nullptr;

  // Run-local interned edge-list id of the current selection (graph
  // switches are rare, so interning is amortized away).
  std::vector<graph::EdgeId> internedEdges;
  std::uint32_t internedId = 0;
  bool haveInterned = false;

  const bool timed = params_.collectStageTimings;
  std::uint64_t decodeNs = 0;
  std::uint64_t mcNs = 0;
  std::uint64_t memoNs = 0;
  std::uint64_t mergeNs = 0;
  std::int64_t t0 = 0;

  const graph::DisseminationGraph* dg = nullptr;
  bool steady = false;

  const auto staleness = static_cast<std::size_t>(params_.viewStaleness);
  // dgcheck: setup end
  for (std::size_t t = spec.first; t < spec.last; ++t) {
    if (blockLen > 0 && t != spec.first && t % blockLen == 0) {
      // Fold the finished accumulation block and reset run-local reuse:
      // chunk-parallel partials start cold at these exact boundaries, and
      // bit-identical results require identical reuse decisions.
      if (timed) t0 = util::nowNanos();
      total.merge(std::move(block));
      block = RunPartial{};
      if (timed) mergeNs += static_cast<std::uint64_t>(util::nowNanos() - t0);
      cacheValid = false;
      cachedDg = nullptr;
    }
    if (telemetry != nullptr) {
      telemetry->now =
          static_cast<util::SimTime>(t) * trace_->intervalLength();
    }
    // --- Decision: what does the scheme believe right now? -------------
    const bool baselineDecision =
        t < spec.warmupUntil || !trace_->hasDeviation(t - staleness);
    if (baselineDecision) {
      if (!(steady && fastPathOk)) {
        if (timed) t0 = util::nowNanos();
        dg = &scheme.select(*spec.baselineView);
        steady = scheme.steadyOnBaseline();
        if (timed)
          memoNs += static_cast<std::uint64_t>(util::nowNanos() - t0);
        cachedDg = nullptr;
      }
    } else if (useCursor) {
      const std::size_t viewInterval = t - staleness;
      if (timed) t0 = util::nowNanos();
      spec.decisionCursor->seek(viewInterval);
      const routing::NetworkView view = routing::NetworkView::borrowing(
          *spec.decisionCursor, conditionIndex_.contentId(viewInterval));
      if (timed) {
        decodeNs += static_cast<std::uint64_t>(util::nowNanos() - t0);
        t0 = util::nowNanos();
      }
      dg = &scheme.select(view);
      if (timed) memoNs += static_cast<std::uint64_t>(util::nowNanos() - t0);
      steady = false;
      cachedDg = nullptr;
    } else {
      if (timed) t0 = util::nowNanos();
      const routing::NetworkView view =
          routing::NetworkView::atInterval(*trace_, t - staleness);
      if (timed) {
        decodeNs += static_cast<std::uint64_t>(util::nowNanos() - t0);
        t0 = util::nowNanos();
      }
      dg = &scheme.select(view);
      if (timed) memoNs += static_cast<std::uint64_t>(util::nowNanos() - t0);
      steady = false;
      cachedDg = nullptr;
    }
    if (telemetry != nullptr) {
      if (spec.haveSelected && dg->edges() != spec.lastSelectedEdges) {
        switchCounter->inc();
        telemetry->trace.record(
            telemetry->now, telemetry::TraceEventKind::GraphSwitch, -1,
            spec.flow.source, -1, static_cast<double>(dg->edges().size()),
            std::string(routing::schemeName(spec.kind)));
      }
      spec.lastSelectedEdges = dg->edges();
      spec.haveSelected = true;
    }

    // --- Outcome under the interval's true conditions ------------------
    IntervalEval eval;
    const bool clean = !trace_->hasDeviation(t);
    if (reuseCleanEvals && clean && cacheValid &&
        (dg == cachedDg || dg->edges() == cachedEdges)) {
      eval = cachedEval;
    } else {
      std::span<const double> lossRates;
      std::span<const util::SimTime> latencies;
      std::vector<double> lossBuffer;  // dgcheck: ok(R5): non-cursor fallback; conditionCursor runs never construct these
      std::vector<util::SimTime> latencyBuffer;  // dgcheck: ok(R5): non-cursor fallback; conditionCursor runs never construct these
      if (timed) t0 = util::nowNanos();
      if (useCursor) {
        spec.truthCursor->seek(t);
        lossRates = spec.truthCursor->lossRates();
        latencies = spec.truthCursor->latencies();
      } else {
        lossBuffer = trace_->lossRatesAt(t);
        latencyBuffer = trace_->latenciesAt(t);
        lossRates = lossBuffer;
        latencies = latencyBuffer;
      }
      if (timed)
        decodeNs += static_cast<std::uint64_t>(util::nowNanos() - t0);

      // Deterministic (near-lossless) evaluations are pure functions of
      // (flow, graph edges, interval content) and shared across jobs;
      // Monte-Carlo evaluations are always computed fresh from their own
      // per-(flow, scheme, interval) RNG stream.
      const bool deterministic =
          nearLossless(*dg, lossRates, params_.lossEpsilon);
      bool evaluated = false;
      EvalKey evalKey{};
      if (deterministic && useMemo) {
        if (timed) t0 = util::nowNanos();
        if (!haveInterned || dg->edges() != internedEdges) {
          internedId = decisionMemo_.internEdgeList(dg->edges());
          internedEdges = dg->edges();
          haveInterned = true;
        }
        evalKey = EvalKey{spec.flow.source, spec.flow.destination,
                          internedId, conditionIndex_.contentId(t)};
        if (const auto hit = findEval(evalKey)) {
          eval = *hit;
          evaluated = true;
        }
        if (timed)
          memoNs += static_cast<std::uint64_t>(util::nowNanos() - t0);
      }
      if (!evaluated) {
        // Legacy mode evaluates through the frozen reference
        // implementations so the benchmark's baseline arm reproduces
        // pre-optimization behavior (and the equivalence tests pit the
        // optimized evaluators against the originals).
        if (deterministic) {
          if (timed) t0 = util::nowNanos();
          eval.miss =
              useCursor ? missProbabilityNearLossless(*dg, lossRates,
                                                      latencies,
                                                      params_.delivery,
                                                      workspace)
                        : missProbabilityNearLosslessReference(
                              *dg, lossRates, latencies, params_.delivery);
          if (timed)
            memoNs += static_cast<std::uint64_t>(util::nowNanos() - t0);
        } else {
          if (timed) t0 = util::nowNanos();
          util::Rng rng(mixSeed(params_.seed, spec.flow, spec.kind, t));
          const double onTime =
              useCursor ? onTimeProbabilityMC(*dg, lossRates, latencies,
                                              params_.delivery,
                                              params_.mcSamples, rng,
                                              workspace)
                        : onTimeProbabilityMCReference(
                              *dg, lossRates, latencies, params_.delivery,
                              params_.mcSamples, rng);  // dgcheck: ok(R6): ternary branches are mutually exclusive; exactly one callee draws from this rng
          eval.miss = 1.0 - onTime;
          eval.monteCarlo = true;
          if (timed)
            mcNs += static_cast<std::uint64_t>(util::nowNanos() - t0);
        }
        eval.cost = static_cast<double>(dg->cost(latencies));
        eval.latency = dg->latencyToDestination(latencies);
        if (deterministic && useMemo) {
          if (timed) t0 = util::nowNanos();
          storeEval(evalKey, eval);
          if (timed)
            memoNs += static_cast<std::uint64_t>(util::nowNanos() - t0);
        }
      }
      if (reuseCleanEvals && clean) {
        cachedEdges = dg->edges();
        cachedEval = eval;
        cacheValid = true;
        cachedDg = dg;
      }
      if (eval.monteCarlo && mcIntervalsCounter != nullptr) {
        mcIntervalsCounter->inc();
        mcSamplesCounter->inc(static_cast<std::uint64_t>(params_.mcSamples));
      }
    }
    if (intervalsCounter != nullptr) {
      intervalsCounter->inc();
      missHistogram->observe(eval.miss);
    }
    if (spec.timelineOut != nullptr) spec.timelineOut->push_back(eval.miss);  // dgcheck: ok(R5): diagnostic miss-timeline output; absent in benchmark runs

    acc->missMean.add(eval.miss, 1.0);
    acc->costStats.add(eval.cost);
    if (eval.latency != util::kNever) {
      acc->latencyStats.add(static_cast<double>(eval.latency));
      if (params_.collectIntervalLatencies) {
        acc->intervalLatenciesUs.push_back(  // dgcheck: ok(R5): opt-in interval-latency capture; amortized push on the diagnostic path
            static_cast<double>(eval.latency));
      }
    }
    acc->unavailableSeconds += eval.miss * intervalSeconds;
    if (eval.miss > params_.problematicThreshold) {
      ++acc->problematicIntervals;
      acc->problems.push_back(ProblematicInterval{t, eval.miss});  // dgcheck: ok(R5): bounded by problematic intervals; diagnostic record with amortized growth
    }
  }
  if (blockLen > 0) {
    if (timed) t0 = util::nowNanos();
    total.merge(std::move(block));
    if (timed) mergeNs += static_cast<std::uint64_t>(util::nowNanos() - t0);
  }
  if (timed) {
    stageTimings_.decodeNs.fetch_add(decodeNs, std::memory_order_relaxed);
    stageTimings_.mcNs.fetch_add(mcNs, std::memory_order_relaxed);
    stageTimings_.memoNs.fetch_add(memoNs, std::memory_order_relaxed);
    stageTimings_.mergeNs.fetch_add(mergeNs, std::memory_order_relaxed);
  }
  return total;
}

}  // namespace dg::playback
