#include "playback/playback.hpp"

#include <stdexcept>
#include <string>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dg::playback {

namespace {

/// Deterministic per-(flow, scheme, interval) RNG stream so results do
/// not depend on evaluation order.
std::uint64_t mixSeed(std::uint64_t seed, routing::Flow flow,
                      routing::SchemeKind kind, std::size_t interval) {
  std::uint64_t x = seed;
  const auto mix = [&x](std::uint64_t v) {
    x ^= v + 0x9E3779B97F4A7C15ULL + (x << 6) + (x >> 2);
  };
  mix(flow.source);
  mix(flow.destination);
  mix(static_cast<std::uint64_t>(kind));
  mix(interval);
  return x;
}

}  // namespace

PlaybackEngine::PlaybackEngine(const graph::Graph& overlay,
                               const trace::Trace& trace,
                               PlaybackParams params)
    : overlay_(&overlay),
      trace_(&trace),
      params_(params),
      conditionIndex_(trace) {
  if (trace.edgeCount() != overlay.edgeCount())
    throw std::invalid_argument(
        "PlaybackEngine: trace edge count does not match overlay");
  if (params_.viewStaleness < 0)
    throw std::invalid_argument("PlaybackEngine: negative staleness");
}

std::optional<PlaybackEngine::IntervalEval> PlaybackEngine::findEval(
    const EvalKey& key) const {
  const std::scoped_lock lock(evalMutex_);
  const auto it = evalMemo_.find(key);
  if (it == evalMemo_.end()) return std::nullopt;
  return it->second;
}

void PlaybackEngine::storeEval(const EvalKey& key,
                               const IntervalEval& eval) const {
  const std::scoped_lock lock(evalMutex_);
  evalMemo_.emplace(key, eval);
}

FlowSchemeResult PlaybackEngine::run(
    routing::Flow flow, routing::SchemeKind kind,
    const routing::SchemeParams& schemeParams,
    telemetry::Telemetry* telemetry) const {
  return runRange(flow, kind, schemeParams, 0, trace_->intervalCount(),
                  telemetry);
}

FlowSchemeResult PlaybackEngine::runRange(
    routing::Flow flow, routing::SchemeKind kind,
    const routing::SchemeParams& schemeParams, std::size_t first,
    std::size_t last, telemetry::Telemetry* telemetry) const {
  if (first > last || last > trace_->intervalCount())
    throw std::out_of_range("PlaybackEngine::runRange: bad range");
  return runCore(flow, kind, schemeParams, first, last, telemetry, nullptr);
}

std::vector<double> PlaybackEngine::missTimeline(
    routing::Flow flow, routing::SchemeKind kind,
    const routing::SchemeParams& schemeParams, std::size_t first,
    std::size_t last) const {
  if (first > last || last > trace_->intervalCount())
    throw std::out_of_range("PlaybackEngine::missTimeline: bad range");
  std::vector<double> timeline;
  timeline.reserve(last - first);
  runCore(flow, kind, schemeParams, first, last, nullptr, &timeline);
  return timeline;
}

FlowSchemeResult PlaybackEngine::runCore(
    routing::Flow flow, routing::SchemeKind kind,
    const routing::SchemeParams& schemeParams, std::size_t first,
    std::size_t last, telemetry::Telemetry* telemetry,
    std::vector<double>* timelineOut) const {
  const bool useMemo = params_.decisionMemo;
  const bool useCursor = params_.conditionCursor;
  // runRange reuses the evaluation of clean intervals while the selected
  // graph is unchanged (including Monte-Carlo ones -- identical inputs,
  // identical distribution); missTimeline evaluates every interval fresh
  // so each Monte-Carlo interval reflects its own RNG stream.
  const bool reuseCleanEvals = timelineOut == nullptr;

  auto scheme = routing::makeScheme(kind, *overlay_, flow, schemeParams);
  if (useMemo) {
    scheme->setDecisionMemo(
        &decisionMemo_, decisionMemo_.contextKey(kind, flow, schemeParams));
  }
  const routing::NetworkView baselineView =
      routing::NetworkView::baseline(*trace_);
  scheme->initialize(baselineView);

  // Telemetry handles, resolved once per run (null when detached).
  telemetry::Counter* intervalsCounter = nullptr;
  telemetry::Counter* mcIntervalsCounter = nullptr;
  telemetry::Counter* mcSamplesCounter = nullptr;
  telemetry::Counter* switchCounter = nullptr;
  telemetry::HistogramMetric* missHistogram = nullptr;
  if (telemetry != nullptr) {
    const std::string flowLabel = std::to_string(flow.source) + "->" +
                                  std::to_string(flow.destination);
    const std::string schemeLabel{routing::schemeName(kind)};
    scheme->setTelemetry(telemetry, flowLabel);
    const telemetry::Labels labels{{"flow", flowLabel},
                                   {"scheme", schemeLabel}};
    telemetry::MetricsRegistry& metrics = telemetry->metrics;
    intervalsCounter =
        &metrics.counter("dg_playback_intervals_total", labels);
    mcIntervalsCounter =
        &metrics.counter("dg_playback_mc_intervals_total", labels);
    mcSamplesCounter =
        &metrics.counter("dg_playback_mc_samples_total", labels);
    switchCounter =
        &metrics.counter("dg_routing_graph_switches_total", labels);
    missHistogram = &metrics.histogram("dg_playback_miss_probability", 0.0,
                                       1.0, 20, labels);
  }
  std::vector<graph::EdgeId> lastSelectedEdges;
  bool haveSelected = false;

  FlowSchemeResult result;
  result.flow = flow;
  result.scheme = kind;

  util::WeightedMean missMean;
  util::OnlineStats costStats;
  util::OnlineStats latencyStats;
  const double intervalSeconds = util::toSeconds(trace_->intervalLength());

  // Replay cursors: the decision cursor tracks the (stale) interval the
  // scheme sees, the truth cursor tracks the interval being scored.
  trace::ConditionTimeline decisionCursor(*trace_);
  trace::ConditionTimeline truthCursor(*trace_);
  DeliveryWorkspace workspace;

  // Run-local reuse: when the interval is clean and the scheme returns
  // the same graph as last time, the evaluation is unchanged.
  std::vector<graph::EdgeId> cachedEdges;
  IntervalEval cachedEval;
  bool cacheValid = false;

  // Run-local interned edge-list id of the current selection (graph
  // switches are rare, so interning is amortized away).
  std::vector<graph::EdgeId> internedEdges;
  std::uint32_t internedId = 0;
  bool haveInterned = false;

  const auto staleness = static_cast<std::size_t>(params_.viewStaleness);
  for (std::size_t t = first; t < last; ++t) {
    if (telemetry != nullptr) {
      telemetry->now =
          static_cast<util::SimTime>(t) * trace_->intervalLength();
    }
    // --- Decision: what does the scheme believe right now? -------------
    const graph::DisseminationGraph* dg = nullptr;
    const bool warmup = t < first + staleness;
    if (warmup || !trace_->hasDeviation(t - staleness)) {
      dg = &scheme->select(baselineView);
    } else if (useCursor) {
      const std::size_t viewInterval = t - staleness;
      decisionCursor.seek(viewInterval);
      const routing::NetworkView view = routing::NetworkView::borrowing(
          decisionCursor, conditionIndex_.contentId(viewInterval));
      dg = &scheme->select(view);
    } else {
      const routing::NetworkView view =
          routing::NetworkView::atInterval(*trace_, t - staleness);
      dg = &scheme->select(view);
    }
    if (telemetry != nullptr) {
      if (haveSelected && dg->edges() != lastSelectedEdges) {
        switchCounter->inc();
        telemetry->trace.record(
            telemetry->now, telemetry::TraceEventKind::GraphSwitch, -1,
            flow.source, -1, static_cast<double>(dg->edges().size()),
            std::string(routing::schemeName(kind)));
      }
      lastSelectedEdges = dg->edges();
      haveSelected = true;
    }

    // --- Outcome under the interval's true conditions ------------------
    std::span<const double> lossRates;
    std::span<const util::SimTime> latencies;
    std::vector<double> lossBuffer;
    std::vector<util::SimTime> latencyBuffer;
    if (useCursor) {
      truthCursor.seek(t);
      lossRates = truthCursor.lossRates();
      latencies = truthCursor.latencies();
    } else {
      lossBuffer = trace_->lossRatesAt(t);
      latencyBuffer = trace_->latenciesAt(t);
      lossRates = lossBuffer;
      latencies = latencyBuffer;
    }

    IntervalEval eval;
    const bool clean = !trace_->hasDeviation(t);
    if (reuseCleanEvals && clean && cacheValid &&
        dg->edges() == cachedEdges) {
      eval = cachedEval;
    } else {
      // Deterministic (near-lossless) evaluations are pure functions of
      // (flow, graph edges, interval content) and shared across jobs;
      // Monte-Carlo evaluations are always computed fresh from their own
      // per-(flow, scheme, interval) RNG stream.
      const bool deterministic =
          nearLossless(*dg, lossRates, params_.lossEpsilon);
      bool evaluated = false;
      EvalKey evalKey{};
      if (deterministic && useMemo) {
        if (!haveInterned || dg->edges() != internedEdges) {
          internedId = decisionMemo_.internEdgeList(dg->edges());
          internedEdges = dg->edges();
          haveInterned = true;
        }
        evalKey = EvalKey{flow.source, flow.destination, internedId,
                          conditionIndex_.contentId(t)};
        if (const auto hit = findEval(evalKey)) {
          eval = *hit;
          evaluated = true;
        }
      }
      if (!evaluated) {
        // Legacy mode evaluates through the frozen reference
        // implementations so the benchmark's baseline arm reproduces
        // pre-optimization behavior (and the equivalence tests pit the
        // optimized evaluators against the originals).
        if (deterministic) {
          eval.miss =
              useCursor ? missProbabilityNearLossless(*dg, lossRates,
                                                      latencies,
                                                      params_.delivery,
                                                      workspace)
                        : missProbabilityNearLosslessReference(
                              *dg, lossRates, latencies, params_.delivery);
        } else {
          util::Rng rng(mixSeed(params_.seed, flow, kind, t));
          const double onTime =
              useCursor ? onTimeProbabilityMC(*dg, lossRates, latencies,
                                              params_.delivery,
                                              params_.mcSamples, rng,
                                              workspace)
                        : onTimeProbabilityMCReference(
                              *dg, lossRates, latencies, params_.delivery,
                              params_.mcSamples, rng);
          eval.miss = 1.0 - onTime;
          eval.monteCarlo = true;
        }
        eval.cost = static_cast<double>(dg->cost(latencies));
        eval.latency = dg->latencyToDestination(latencies);
        if (deterministic && useMemo) storeEval(evalKey, eval);
      }
      if (reuseCleanEvals && clean) {
        cachedEdges = dg->edges();
        cachedEval = eval;
        cacheValid = true;
      }
      if (eval.monteCarlo && mcIntervalsCounter != nullptr) {
        mcIntervalsCounter->inc();
        mcSamplesCounter->inc(static_cast<std::uint64_t>(params_.mcSamples));
      }
    }
    if (intervalsCounter != nullptr) {
      intervalsCounter->inc();
      missHistogram->observe(eval.miss);
    }
    if (timelineOut != nullptr) timelineOut->push_back(eval.miss);

    missMean.add(eval.miss, 1.0);
    costStats.add(eval.cost);
    if (eval.latency != util::kNever) {
      latencyStats.add(static_cast<double>(eval.latency));
      if (params_.collectIntervalLatencies) {
        result.intervalLatenciesUs.push_back(
            static_cast<double>(eval.latency));
      }
    }
    result.unavailableSeconds += eval.miss * intervalSeconds;
    if (eval.miss > params_.problematicThreshold) {
      ++result.problematicIntervals;
      result.problems.push_back(ProblematicInterval{t, eval.miss});
    }
  }

  result.unavailability = missMean.mean();
  result.averageCost = costStats.mean();
  result.averageLatencyUs = latencyStats.mean();
  return result;
}

}  // namespace dg::playback
