#include "net/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace dg::net {

void Simulator::EventQueue::push(Event event) {
  events_.push_back(std::move(event));
  std::size_t i = events_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(events_[i], events_[parent])) break;
    std::swap(events_[i], events_[parent]);
    i = parent;
  }
}

Simulator::Event Simulator::EventQueue::pop() {
  Event top = std::move(events_.front());
  if (events_.size() > 1) events_.front() = std::move(events_.back());
  events_.pop_back();
  const std::size_t n = events_.size();
  std::size_t i = 0;
  while (true) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    const std::size_t right = left + 1;
    std::size_t best = left;
    if (right < n && earlier(events_[right], events_[left])) best = right;
    if (!earlier(events_[best], events_[i])) break;
    std::swap(events_[i], events_[best]);
    i = best;
  }
  return top;
}

void Simulator::setTelemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    eventsProcessed_ = nullptr;
    queueDepthHigh_ = nullptr;
    return;
  }
  eventsProcessed_ =
      &telemetry_->metrics.counter("dg_sim_events_processed_total");
  queueDepthHigh_ = &telemetry_->metrics.gauge("dg_sim_queue_depth_high");
  telemetry_->now = now_;
}

void Simulator::scheduleAt(util::SimTime at, Callback callback) {
  if (at < now_)
    throw std::invalid_argument("Simulator: cannot schedule in the past");
  queue_.push(Event{at, nextSequence_++, std::move(callback)});
}

void Simulator::scheduleAfter(util::SimTime delay, Callback callback) {
  if (delay < 0)
    throw std::invalid_argument("Simulator: negative delay");
  scheduleAt(now_ + delay, std::move(callback));
}

void Simulator::runUntil(util::SimTime until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    // The event is moved out before running so its callback may schedule
    // new events (including reallocating the queue's storage).
    Event event = queue_.pop();
    now_ = event.time;
    ++processed_;
    noteProcessed();
    event.callback();
  }
  if (now_ < until) now_ = until;
  if (telemetry_ != nullptr) telemetry_->now = now_;
}

void Simulator::runAll() {
  while (!queue_.empty()) {
    Event event = queue_.pop();
    now_ = event.time;
    ++processed_;
    noteProcessed();
    event.callback();
  }
}

}  // namespace dg::net
