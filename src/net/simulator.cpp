#include "net/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace dg::net {

void Simulator::setTelemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    eventsProcessed_ = nullptr;
    queueDepthHigh_ = nullptr;
    return;
  }
  eventsProcessed_ =
      &telemetry_->metrics.counter("dg_sim_events_processed_total");
  queueDepthHigh_ = &telemetry_->metrics.gauge("dg_sim_queue_depth_high");
  telemetry_->now = now_;
}

void Simulator::scheduleAt(util::SimTime at, Callback callback) {
  if (at < now_)
    throw std::invalid_argument("Simulator: cannot schedule in the past");
  queue_.push(Event{at, nextSequence_++, std::move(callback)});
}

void Simulator::scheduleAfter(util::SimTime delay, Callback callback) {
  if (delay < 0)
    throw std::invalid_argument("Simulator: negative delay");
  scheduleAt(now_ + delay, std::move(callback));
}

void Simulator::runUntil(util::SimTime until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    // Move the callback out before popping so it may schedule new events.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++processed_;
    noteProcessed();
    event.callback();
  }
  if (now_ < until) now_ = until;
  if (telemetry_ != nullptr) telemetry_->now = now_;
}

void Simulator::runAll() {
  while (!queue_.empty()) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++processed_;
    noteProcessed();
    event.callback();
  }
}

}  // namespace dg::net
