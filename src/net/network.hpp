// The simulated wide-area network under the overlay.
//
// Each directed overlay link delivers packets after the latency, and
// drops them with the loss probability, that the condition trace
// prescribes for the current interval. This is the stand-in for the real
// Internet paths between the data centers (see DESIGN.md): the overlay
// daemons above it cannot tell the difference -- they only see packets
// arriving, or not.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "net/packet.hpp"
#include "net/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace dg::net {

/// Optional capacity model for the simulated links. By default links are
/// infinitely fast (only the trace's latency/loss apply), which matches
/// the playback engine's assumptions. With a finite rate, packets
/// serialize: each transmission occupies the link for 1/rate seconds,
/// excess queues (drop-tail) up to `queuePackets`, and queueing delay
/// adds to the trace latency -- so a scheme that floods too widely can
/// hurt itself, which is the operational meaning of the paper's cost
/// metric.
struct LinkCapacity {
  /// Packets per second a link can carry; 0 = unlimited.
  double packetsPerSecond = 0.0;
  /// Maximum packets queued behind the link before drop-tail.
  std::size_t queuePackets = 64;

  bool limited() const { return packetsPerSecond > 0.0; }
  util::SimTime serviceTime() const {
    return limited() ? static_cast<util::SimTime>(1e6 / packetsPerSecond)
                     : 0;
  }
};

class SimulatedNetwork {
 public:
  /// Receives (edge the packet arrived on, the packet).
  using DeliveryHandler = std::function<void(graph::EdgeId, const Packet&)>;
  /// Observes transmission attempts and outcomes for link accounting:
  /// (edge, packet, delivered, latency) -- called at *send* time for
  /// attempts (delivered unknown, latency 0) via onTransmit and at
  /// arrival via the delivery handler. Loss observers see drops.
  using TransmitObserver =
      std::function<void(graph::EdgeId, const Packet&, bool delivered,
                         util::SimTime latency)>;

  SimulatedNetwork(Simulator& simulator, const graph::Graph& overlay,
                   const trace::Trace& trace, std::uint64_t seed);

  /// Sends `packet` on the directed edge. The loss draw and latency come
  /// from the trace conditions at the current simulation time. On
  /// delivery the destination node's handler runs; on drop nothing
  /// arrives (the observer still sees the outcome).
  void transmit(graph::EdgeId edge, Packet packet);

  /// Registers the handler for packets arriving at `node`.
  void setDeliveryHandler(graph::NodeId node, DeliveryHandler handler);

  /// Optional observer of every transmission outcome (for monitors and
  /// statistics); called at the moment the outcome is decided.
  void setTransmitObserver(TransmitObserver observer);

  /// Attaches telemetry (nullable): per-link drop counters
  /// (`dg_net_link_drops_total{edge}`), queue-drop counters, a global
  /// transmission counter, and PacketDrop/QueueDrop trace events for
  /// data-bearing packets. Pass nullptr to detach.
  void setTelemetry(telemetry::Telemetry* telemetry);

  /// Applies a capacity model to every link (default: unlimited).
  void setLinkCapacity(LinkCapacity capacity);
  const LinkCapacity& linkCapacity() const { return capacity_; }

  /// Overlays an impairment on one directed edge: while set, the
  /// effective conditions of every transmission are
  /// combineConditions(trace conditions, override). Used by the chaos
  /// injector to impose faults on a live run without editing the trace;
  /// composing this way keeps live runs equal to the same schedule
  /// compiled into a trace (combineConditions is associative and
  /// commutative).
  void setConditionOverride(graph::EdgeId edge,
                            trace::LinkConditions conditions);
  void clearConditionOverride(graph::EdgeId edge);
  const std::optional<trace::LinkConditions>& conditionOverride(
      graph::EdgeId edge) const {
    return overrides_[edge];
  }

  /// The conditions a transmission on `edge` would see right now (trace
  /// conditions combined with any active override).
  trace::LinkConditions effectiveConditions(graph::EdgeId edge) const;

  std::uint64_t queueDropCount() const { return queueDrops_; }

  const graph::Graph& overlay() const { return *overlay_; }
  const trace::Trace& trace() const { return *trace_; }
  Simulator& simulator() { return *simulator_; }

  std::uint64_t transmissionCount() const { return transmissions_; }
  std::uint64_t dropCount() const { return drops_; }

 private:
  Simulator* simulator_;
  const graph::Graph* overlay_;
  const trace::Trace* trace_;
  std::vector<util::Rng> edgeRng_;
  std::vector<std::optional<trace::LinkConditions>> overrides_;
  std::vector<DeliveryHandler> handlers_;
  TransmitObserver observer_;
  LinkCapacity capacity_;
  /// Per-edge time the link becomes free (capacity model only).
  std::vector<util::SimTime> linkFreeAt_;
  std::uint64_t transmissions_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t queueDrops_ = 0;

  void recordDrop(graph::EdgeId edge, const Packet& packet,
                  telemetry::TraceEventKind kind);

  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Counter* transmitCounter_ = nullptr;
  std::vector<telemetry::Counter*> dropCounters_;       // per edge
  std::vector<telemetry::Counter*> queueDropCounters_;  // per edge
};

}  // namespace dg::net
