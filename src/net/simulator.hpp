// Discrete-event simulation core.
//
// A single-threaded event loop with deterministic ordering: events fire
// in (time, insertion sequence) order, so two events scheduled for the
// same instant run in the order they were scheduled. Everything in the
// live-transport half of the library (links, nodes, monitors, flows) is
// driven by this loop.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/sim_time.hpp"

namespace dg::net {

class Simulator {
 public:
  using Callback = std::function<void()>;

  util::SimTime now() const { return now_; }

  /// Schedules `callback` to run at absolute time `at` (>= now).
  void scheduleAt(util::SimTime at, Callback callback);

  /// Schedules `callback` after `delay` (>= 0) from now.
  void scheduleAfter(util::SimTime delay, Callback callback);

  /// Runs events until the queue empties or the next event is after
  /// `until`; the clock finishes at min(until, last event time).
  void runUntil(util::SimTime until);

  /// Runs everything (use with care: periodic generators never stop).
  void runAll();

  std::size_t pendingEvents() const { return queue_.size(); }
  std::uint64_t processedEvents() const { return processed_; }

 private:
  struct Event {
    util::SimTime time;
    std::uint64_t sequence;
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  util::SimTime now_ = 0;
  std::uint64_t nextSequence_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace dg::net
