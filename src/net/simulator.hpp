// Discrete-event simulation core.
//
// A single-threaded event loop with deterministic ordering: events fire
// in (time, insertion sequence) order, so two events scheduled for the
// same instant run in the order they were scheduled. Everything in the
// live-transport half of the library (links, nodes, monitors, flows) is
// driven by this loop.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/sim_time.hpp"

namespace dg::net {

class Simulator {
 public:
  using Callback = std::function<void()>;

  util::SimTime now() const { return now_; }

  /// Attaches telemetry (nullable): the loop keeps `telemetry->now`
  /// current, counts processed events and tracks the event-queue
  /// high-water mark. Pass nullptr to detach.
  void setTelemetry(telemetry::Telemetry* telemetry);

  /// Schedules `callback` to run at absolute time `at`.
  ///
  /// Contract (tested in net/simulator_test.cpp):
  ///  - `at < now()` throws std::invalid_argument; the simulated past is
  ///    immutable, there is no silent clamping to now.
  ///  - `at == now()` is allowed, including from inside a running
  ///    callback: the new event runs in the same runUntil() pass, after
  ///    every previously scheduled event for that instant (FIFO within a
  ///    timestamp, by insertion sequence).
  void scheduleAt(util::SimTime at, Callback callback);

  /// Schedules `callback` after `delay` from now. `delay < 0` throws
  /// std::invalid_argument; `delay == 0` follows the `at == now()` rule
  /// above.
  void scheduleAfter(util::SimTime delay, Callback callback);

  /// Runs events until the queue empties or the next event is after
  /// `until`; the clock finishes at min(until, last event time).
  ///
  /// Contract (tested in net/simulator_test.cpp):
  ///  - An event at exactly `until` DOES fire (inclusive bound), and so
  ///    do same-time events it schedules.
  ///  - `until < now()` runs nothing and leaves the clock untouched (the
  ///    clock never moves backwards); `until == now()` runs exactly the
  ///    events due now.
  ///  - Back-to-back calls compose: runUntil(a); runUntil(b) with a <= b
  ///    is equivalent to runUntil(b).
  void runUntil(util::SimTime until);

  /// Runs everything (use with care: periodic generators never stop).
  void runAll();

  std::size_t pendingEvents() const { return queue_.size(); }
  std::uint64_t processedEvents() const { return processed_; }

 private:
  struct Event {
    util::SimTime time;
    std::uint64_t sequence;
    Callback callback;
  };

  /// Binary min-heap over (time, sequence). Unlike std::priority_queue,
  /// pop() moves the event *out* (the callback must be movable so it can
  /// schedule new events while running), which a std::priority_queue only
  /// allows through a const_cast of top(). Sequence numbers are unique,
  /// so the order is total and pops are fully deterministic.
  class EventQueue {
   public:
    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }
    /// Earliest event. Precondition: !empty().
    const Event& top() const { return events_.front(); }
    void push(Event event);
    /// Removes and returns the earliest event. Precondition: !empty().
    Event pop();

   private:
    static bool earlier(const Event& a, const Event& b) {
      if (a.time != b.time) return a.time < b.time;
      return a.sequence < b.sequence;
    }
    std::vector<Event> events_;
  };

  // Inline: runs once per simulated event, so it must stay a null check
  // plus three word-sized writes on the hot path.
  void noteProcessed() {
    if (telemetry_ == nullptr) return;
    telemetry_->now = now_;
    eventsProcessed_->inc();
    queueDepthHigh_->high(static_cast<double>(queue_.size()));
  }

  util::SimTime now_ = 0;
  std::uint64_t nextSequence_ = 0;
  std::uint64_t processed_ = 0;
  EventQueue queue_;

  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Counter* eventsProcessed_ = nullptr;
  telemetry::Gauge* queueDepthHigh_ = nullptr;
};

}  // namespace dg::net
