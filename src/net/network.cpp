#include "net/network.hpp"

#include <stdexcept>

namespace dg::net {

SimulatedNetwork::SimulatedNetwork(Simulator& simulator,
                                   const graph::Graph& overlay,
                                   const trace::Trace& trace,
                                   std::uint64_t seed)
    : simulator_(&simulator),
      overlay_(&overlay),
      trace_(&trace),
      overrides_(overlay.edgeCount()),
      handlers_(overlay.nodeCount()) {
  if (trace.edgeCount() != overlay.edgeCount())
    throw std::invalid_argument(
        "SimulatedNetwork: trace edge count does not match overlay");
  util::Rng master(seed);
  edgeRng_.reserve(overlay.edgeCount());
  for (graph::EdgeId e = 0; e < overlay.edgeCount(); ++e) {
    edgeRng_.push_back(master.fork());
  }
}

void SimulatedNetwork::setTelemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  dropCounters_.clear();
  queueDropCounters_.clear();
  transmitCounter_ = nullptr;
  if (telemetry_ == nullptr) return;
  transmitCounter_ =
      &telemetry_->metrics.counter("dg_net_transmissions_total");
  dropCounters_.reserve(overlay_->edgeCount());
  queueDropCounters_.reserve(overlay_->edgeCount());
  for (graph::EdgeId e = 0; e < overlay_->edgeCount(); ++e) {
    const telemetry::Labels labels{{"edge", std::to_string(e)}};
    dropCounters_.push_back(
        &telemetry_->metrics.counter("dg_net_link_drops_total", labels));
    queueDropCounters_.push_back(&telemetry_->metrics.counter(
        "dg_net_link_queue_drops_total", labels));
  }
}

void SimulatedNetwork::recordDrop(graph::EdgeId edge, const Packet& packet,
                                  telemetry::TraceEventKind kind) {
  if (telemetry_ == nullptr) return;
  (kind == telemetry::TraceEventKind::QueueDrop ? queueDropCounters_
                                                : dropCounters_)[edge]
      ->inc();
  // Only data-bearing drops are worth a trace-log slot; probe and
  // link-state losses are routine and would crowd out the ring.
  if (packet.type != Packet::Type::Data &&
      packet.type != Packet::Type::Retransmission) {
    return;
  }
  telemetry_->trace.record(simulator_->now(), kind, packet.flow,
                           overlay_->edge(edge).to, edge,
                           static_cast<double>(packet.sequence));
}

void SimulatedNetwork::setConditionOverride(graph::EdgeId edge,
                                            trace::LinkConditions conditions) {
  overrides_[edge] = conditions;
}

void SimulatedNetwork::clearConditionOverride(graph::EdgeId edge) {
  overrides_[edge].reset();
}

trace::LinkConditions SimulatedNetwork::effectiveConditions(
    graph::EdgeId edge) const {
  const std::size_t interval = trace_->intervalAt(simulator_->now());
  trace::LinkConditions conditions = trace_->at(edge, interval);
  if (overrides_[edge])
    conditions = trace::combineConditions(conditions, *overrides_[edge]);
  return conditions;
}

void SimulatedNetwork::transmit(graph::EdgeId edge, Packet packet) {
  const trace::LinkConditions conditions = effectiveConditions(edge);
  ++transmissions_;
  if (transmitCounter_ != nullptr) transmitCounter_->inc();
  packet.hopSendTime = simulator_->now();

  // Capacity model: serialize transmissions; drop-tail when the queue
  // behind the link exceeds its bound.
  util::SimTime queueDelay = 0;
  if (capacity_.limited()) {
    const util::SimTime service = capacity_.serviceTime();
    const util::SimTime now = simulator_->now();
    const util::SimTime departure =
        std::max(now, linkFreeAt_[edge]) + service;
    // Packets waiting ahead of this one (excluding the one in service).
    const auto queued = static_cast<std::size_t>(
        service > 0 ? (departure - now - service) / service : 0);
    if (queued > capacity_.queuePackets) {
      ++drops_;
      ++queueDrops_;
      recordDrop(edge, packet, telemetry::TraceEventKind::QueueDrop);
      if (observer_) observer_(edge, packet, false, 0);
      return;
    }
    linkFreeAt_[edge] = departure;
    queueDelay = departure - now;
  }

  const bool lost = edgeRng_[edge].bernoulli(conditions.lossRate);
  if (lost) {
    ++drops_;
    recordDrop(edge, packet, telemetry::TraceEventKind::PacketDrop);
    if (observer_) observer_(edge, packet, false, 0);
    return;
  }
  const util::SimTime latency = conditions.latency + queueDelay;
  const graph::NodeId to = overlay_->edge(edge).to;
  simulator_->scheduleAfter(latency, [this, edge, to, latency,
                                      packet = std::move(packet)]() {
    if (observer_) observer_(edge, packet, true, latency);
    if (handlers_[to]) handlers_[to](edge, packet);
  });
}

void SimulatedNetwork::setDeliveryHandler(graph::NodeId node,
                                          DeliveryHandler handler) {
  handlers_[node] = std::move(handler);
}

void SimulatedNetwork::setTransmitObserver(TransmitObserver observer) {
  observer_ = std::move(observer);
}

void SimulatedNetwork::setLinkCapacity(LinkCapacity capacity) {
  capacity_ = capacity;
  linkFreeAt_.assign(overlay_->edgeCount(), 0);
}

}  // namespace dg::net
