#include "net/packet.hpp"

#include <stdexcept>

#include "graph/dissemination_graph.hpp"

namespace dg::net {

std::uint64_t graphMaskOf(const graph::DisseminationGraph& dg) {
  if (dg.overlay().edgeCount() > 64) {
    throw std::length_error(
        "graphMaskOf: stamped dissemination graphs support at most 64 "
        "directed overlay edges");
  }
  std::uint64_t mask = 0;
  for (const graph::EdgeId e : dg.edges()) {
    mask |= std::uint64_t{1} << e;
  }
  return mask;
}

}  // namespace dg::net
