// Overlay packet representation for the event-driven simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "trace/conditions.hpp"
#include "util/sim_time.hpp"

namespace dg::graph {
class DisseminationGraph;
}

namespace dg::net {

using FlowId = std::uint32_t;
using SequenceNumber = std::uint64_t;

/// One link's measured conditions inside a link-state update.
struct LinkStateEntry {
  graph::EdgeId edge = graph::kInvalidEdge;
  trace::LinkConditions conditions;
};

struct Packet {
  enum class Type : std::uint8_t {
    Data,            ///< application payload, flooded on the flow's graph
    Retransmission,  ///< per-hop recovery copy of a Data packet
    Nack,            ///< per-hop recovery request (list of missing seqs)
    Probe,           ///< link measurement packet
    LinkState,       ///< flooded link-state update (distributed mode)
  };

  Type type = Type::Data;
  FlowId flow = 0;
  SequenceNumber sequence = 0;
  /// Time the packet entered the overlay at the flow source (Data /
  /// Retransmission): delivery is on time iff arrival - originTime is
  /// within the deadline.
  util::SimTime originTime = 0;
  /// Transmission timestamp of this hop (set by Link; used by the link
  /// monitor's latency estimation).
  util::SimTime hopSendTime = 0;

  /// Dissemination graph, stamped by the source as an edge bitmask
  /// (bit e = directed overlay edge e is a member). Intermediate nodes
  /// forward Data/Retransmission packets according to this mask without
  /// needing any per-flow routing state -- how a real deployment ships
  /// per-flow graphs in-band. 0 = not stamped (the node's FlowContext
  /// graph applies instead). Overlays are limited to 64 directed edges
  /// in stamped mode.
  std::uint64_t graphMask = 0;

  /// Missing sequences requested (Type::Nack only).
  std::vector<SequenceNumber> nackSequences;

  /// Link-state payload (Type::LinkState only): the originating node and
  /// its measurement epoch, plus the measured conditions of the links
  /// *into* the origin.
  graph::NodeId linkStateOrigin = graph::kInvalidNode;
  std::uint32_t linkStateEpoch = 0;
  std::vector<LinkStateEntry> linkState;
};

/// Builds the stamp mask for a dissemination graph (throws
/// std::length_error if the overlay has more than 64 directed edges).
std::uint64_t graphMaskOf(const graph::DisseminationGraph& dg);

}  // namespace dg::net
