#include "mcast/report.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace dg::mcast {

namespace {
using util::formatFixed;
using util::padLeft;
using util::padRight;
}  // namespace

std::string renderGroupSummaryTable(const GroupExperimentResult& result,
                                    const trace::Trace& trace,
                                    std::size_t groupCount) {
  std::ostringstream out;
  const double traceDays = util::toSeconds(trace.duration()) / 86'400.0;
  out << "Group scheme performance over " << formatFixed(traceDays, 1)
      << " days, " << groupCount << " groups\n";
  out << padRight("scheme", 22) << padLeft("unavail_all", 13)
      << padLeft("unavail_k", 13) << padLeft("unavail_s", 12)
      << padLeft("problem_ivls", 14) << padLeft("worst_rcvr", 12)
      << padLeft("avg_cost", 10) << '\n';
  for (const GroupSchemeSummary& s : result.summary) {
    out << padRight(std::string(groupSchemeName(s.scheme)), 22)
        << padLeft(formatFixed(s.unavailabilityAll * 1e6, 1) + "ppm", 13)
        << padLeft(formatFixed(s.unavailabilityK * 1e6, 1) + "ppm", 13)
        << padLeft(formatFixed(s.unavailableAllSeconds, 1), 12)
        << padLeft(std::to_string(s.problematicIntervals), 14)
        << padLeft(formatFixed(s.worstReceiverUnavailability * 1e6, 1) +
                       "ppm",
                   12)
        << padLeft(formatFixed(s.averageCost, 2), 10) << '\n';
  }
  return out.str();
}

std::string renderPerGroupTable(const GroupExperimentResult& result,
                                const GroupExperimentConfig& config,
                                const trace::Topology& topology) {
  std::ostringstream out;
  out << padRight("group", 28);
  for (const GroupSchemeKind kind : config.schemes)
    out << padLeft(std::string(groupSchemeName(kind)), 22);
  out << '\n';
  const std::size_t schemeCount = config.schemes.size();
  for (std::size_t g = 0; g < config.groups.size(); ++g) {
    out << padRight(groupName(config.groups[g], topology), 28);
    for (std::size_t s = 0; s < schemeCount; ++s) {
      const GroupSchemeResult& r = result.at(g, s, schemeCount);
      out << padLeft(formatFixed(r.unavailabilityAll * 1e6, 1) + "ppm", 22);
    }
    out << '\n';
  }
  return out.str();
}

std::string renderReceiverTable(const GroupSchemeResult& result,
                                const trace::Topology& topology) {
  std::ostringstream out;
  out << groupName(result.group, topology) << " under "
      << groupSchemeName(result.scheme) << '\n';
  out << padRight("receiver", 14) << padLeft("deadline_ms", 13)
      << padLeft("unavail", 12) << padLeft("unavail_s", 12)
      << padLeft("problem_ivls", 14) << padLeft("avg_latency_ms", 16)
      << '\n';
  for (const GroupReceiverResult& r : result.receivers) {
    out << padRight(topology.name(r.receiver), 14)
        << padLeft(formatFixed(static_cast<double>(r.deadline) / 1e3, 1), 13)
        << padLeft(formatFixed(r.unavailability * 1e6, 1) + "ppm", 12)
        << padLeft(formatFixed(r.unavailableSeconds, 1), 12)
        << padLeft(std::to_string(r.problematicIntervals), 14)
        << padLeft(formatFixed(r.averageLatencyUs / 1e3, 2), 16) << '\n';
  }
  return out.str();
}

}  // namespace dg::mcast
