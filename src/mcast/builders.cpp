#include "mcast/builders.hpp"

#include <cstddef>
#include <vector>

#include "graph/k_shortest.hpp"
#include "util/sim_time.hpp"

namespace dg::mcast {

namespace {

/// Candidate paths considered per receiver when growing the tree union.
/// Beyond ~8 the marginal-edge savings flatten out while Yen's algorithm
/// cost keeps growing.
constexpr int kTreeCandidates = 8;

/// Edges a candidate path would add on top of the union built so far.
std::size_t marginalNewEdges(const graph::DisseminationGraph& out,
                             const graph::Path& path) {
  std::size_t fresh = 0;
  for (const graph::EdgeId e : path) {
    if (!out.contains(e)) ++fresh;
  }
  return fresh;
}

}  // namespace

graph::DisseminationGraph buildReceiverUnion(
    const graph::Graph& overlay, const Group& group,
    const routing::NetworkView& baselineView, routing::SchemeKind kind,
    std::span<const routing::SchemeParams> receiverParams) {
  graph::DisseminationGraph out(overlay, group.source,
                                group.receivers.front());
  for (std::size_t i = 0; i < group.receivers.size(); ++i) {
    const auto sub = routing::makeScheme(kind, overlay,
                                         receiverFlow(group, i),
                                         receiverParams[i]);
    sub->initialize(baselineView);
    out.unite(sub->select(baselineView));
  }
  return out;
}

graph::DisseminationGraph buildTreeUnion(
    const graph::Graph& overlay, const Group& group,
    const routing::NetworkView& baselineView,
    std::span<const routing::SchemeParams> receiverParams) {
  // Receiver 0 takes its unicast static-single selection verbatim, which
  // anchors single-receiver groups to the unicast scheme bit for bit.
  graph::DisseminationGraph out = buildReceiverUnion(
      overlay, Group{group.source, {group.receivers.front()}, {}},
      baselineView, routing::SchemeKind::StaticSinglePath,
      receiverParams.subspan(0, 1));

  const std::vector<util::SimTime> latencies(baselineView.latencies().begin(),
                                             baselineView.latencies().end());
  for (std::size_t i = 1; i < group.receivers.size(); ++i) {
    const auto& params = receiverParams[i];
    const auto weights = baselineView.routingWeights(params.view);
    const auto candidates =
        graph::kShortestPaths(overlay, group.source, group.receivers[i],
                              weights, kTreeCandidates);
    const graph::Path* best = nullptr;
    std::size_t bestFresh = 0;
    for (const graph::Path& path : candidates) {
      const util::SimTime latency = pathLatency(overlay, path, latencies);
      if (latency == util::kNever || latency > params.deadline) continue;
      const std::size_t fresh = marginalNewEdges(out, path);
      if (best == nullptr || fresh < bestFresh) {
        best = &path;
        bestFresh = fresh;
      }
    }
    if (best != nullptr) {
      out.addPath(*best);
    } else if (!candidates.empty()) {
      // No candidate meets this receiver's deadline: fall back to the
      // shortest candidate so the receiver is at least reachable; the
      // scorer will charge the lateness.
      out.addPath(candidates.front());
    }
  }
  return out;
}

}  // namespace dg::mcast
