// Dissemination-graph dump: exports the graph any scheme (unicast or
// group) has in force at a given interval, as Graphviz DOT or JSON, for
// the `dgnet graph dump` debug command. The selection is reproduced by
// replaying decisions over [0, interval] exactly as the playback engines
// do (same baseline view, same decision staleness), so the dumped graph
// is the one the engine would score that interval with.
#pragma once

#include <cstddef>
#include <string>

#include "graph/graph.hpp"
#include "mcast/group.hpp"
#include "mcast/scheme.hpp"
#include "routing/scheme.hpp"
#include "trace/topology.hpp"
#include "trace/trace.hpp"

namespace dg::mcast {

enum class DumpFormat { kDot, kJson };

/// Parses "dot" / "json"; throws std::invalid_argument listing the valid
/// names otherwise.
DumpFormat parseDumpFormat(std::string_view name);

struct GraphDumpRequest {
  std::size_t interval = 0;  ///< the scored interval whose graph to dump
  int viewStaleness = 1;     ///< decision staleness, intervals
  DumpFormat format = DumpFormat::kDot;
};

/// Dumps the graph a unicast routing scheme has selected at
/// request.interval.
std::string dumpUnicastGraph(const graph::Graph& overlay,
                             const trace::Trace& trace,
                             const trace::Topology& topology,
                             routing::Flow flow, routing::SchemeKind kind,
                             const routing::SchemeParams& schemeParams,
                             const GraphDumpRequest& request);

/// Dumps the graph a group scheme has selected at request.interval; every
/// receiver is highlighted.
std::string dumpGroupGraph(const graph::Graph& overlay,
                           const trace::Trace& trace,
                           const trace::Topology& topology, const Group& group,
                           GroupSchemeKind kind,
                           const routing::SchemeParams& schemeParams,
                           const GraphDumpRequest& request);

}  // namespace dg::mcast
