// Multicast graph builders: construct one dissemination graph covering a
// whole receiver set from the healthy-baseline view.
#pragma once

#include <span>

#include "graph/dissemination_graph.hpp"
#include "graph/graph.hpp"
#include "mcast/group.hpp"
#include "routing/network_view.hpp"
#include "routing/scheme.hpp"

namespace dg::mcast {

/// Shared redundant mesh (or flooding cover): instantiates the unicast
/// scheme `kind` once per receiver with that receiver's params, selects
/// each against the baseline view, and unites the selections. The
/// returned graph's nominal flow is source -> receivers.front().
graph::DisseminationGraph buildReceiverUnion(
    const graph::Graph& overlay, const Group& group,
    const routing::NetworkView& baselineView, routing::SchemeKind kind,
    std::span<const routing::SchemeParams> receiverParams);

/// Steiner-ish tree union: receiver 0 takes its shortest latency path;
/// each later receiver picks, among its k-shortest deadline-feasible
/// candidate paths, the one adding the fewest edges not already in the
/// union (ties break toward the shorter path, which k-shortest orders
/// first). Falls back to the receiver's plain shortest path when no
/// candidate meets its deadline -- coverage beats timeliness for the
/// graph structure; scoring will still charge the lateness.
graph::DisseminationGraph buildTreeUnion(
    const graph::Graph& overlay, const Group& group,
    const routing::NetworkView& baselineView,
    std::span<const routing::SchemeParams> receiverParams);

}  // namespace dg::mcast
