// Group routing schemes: one dissemination graph per receiver set.
//
// GroupScheme parallels routing::RoutingScheme but selects a single
// graph covering every receiver. Each group scheme kind is the lift of
// one unicast kind (unicastEquivalent below); dynamic variants hold one
// unicast sub-scheme per receiver and serve the union of their
// selections, so a single-receiver group reproduces the unicast scheme's
// decisions bit for bit. Static variants freeze the union at baseline.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/dissemination_graph.hpp"
#include "graph/graph.hpp"
#include "mcast/group.hpp"
#include "routing/decision_memo.hpp"
#include "routing/network_view.hpp"
#include "routing/scheme.hpp"
#include "telemetry/telemetry.hpp"

namespace dg::mcast {

enum class GroupSchemeKind {
  kStaticTrees,        ///< baseline union of per-receiver single paths
  kDynamicTrees,       ///< per-receiver dynamic-single union
  kStaticMesh,         ///< baseline union of per-receiver two-disjoint
  kDynamicMesh,        ///< per-receiver dynamic-two-disjoint union
  kTargetedReceivers,  ///< per-receiver targeted-redundancy union
  kGroupFlooding,      ///< deadline-pruned flooding toward the receiver set
};

std::string_view groupSchemeName(GroupSchemeKind kind);
/// Parses a scheme name; the error message lists every valid name.
GroupSchemeKind parseGroupSchemeKind(std::string_view name);
std::vector<GroupSchemeKind> allGroupSchemeKinds();

/// The unicast scheme whose per-receiver decisions this group kind lifts.
/// A single-receiver group under `kind` is bit-identical to a unicast
/// flow under `unicastEquivalent(kind)` -- pinned by test.
routing::SchemeKind unicastEquivalent(GroupSchemeKind kind);

class GroupScheme {
 public:
  GroupScheme(const graph::Graph& overlay, Group group,
              routing::SchemeParams params);
  virtual ~GroupScheme() = default;
  GroupScheme(const GroupScheme&) = delete;
  GroupScheme& operator=(const GroupScheme&) = delete;

  virtual std::string_view name() const = 0;
  /// Called once with the healthy-baseline view before any select().
  virtual void initialize(const routing::NetworkView& baselineView) = 0;
  /// Returns the group graph for the view's interval. The reference
  /// stays valid until the next select() on this scheme.
  virtual const graph::DisseminationGraph& select(
      const routing::NetworkView& view) = 0;
  /// True when selecting against the healthy baseline is a fixed point,
  /// letting the playback engine skip re-selection on clean intervals.
  virtual bool steadyOnBaseline() const { return false; }

  virtual void setTelemetry(telemetry::Telemetry* telemetry,
                            std::string groupLabel);
  /// Attaches the shared memo to each per-receiver sub-scheme under its
  /// unicast-equivalent context key; no-op for static schemes.
  virtual void attachDecisionMemo(routing::DecisionMemo* /*memo*/) {}

  const Group& group() const { return group_; }

 protected:
  /// params_ with the deadline swapped for receiver i's own.
  routing::SchemeParams receiverParams(std::size_t i) const;

  const graph::Graph& overlay_;
  Group group_;
  routing::SchemeParams params_;
  telemetry::Telemetry* telemetry_ = nullptr;
  std::string groupLabel_;
};

std::unique_ptr<GroupScheme> makeGroupScheme(GroupSchemeKind kind,
                                             const graph::Graph& overlay,
                                             const Group& group,
                                             routing::SchemeParams params);

}  // namespace dg::mcast
