// Group experiment runner: the groups x group-schemes sweep over one
// trace, mirroring the unicast experiment runner's determinism contract
// (byte-identical telemetry exports and bit-identical results at any
// thread count).
#pragma once

#include <string>
#include <vector>

#include "mcast/group.hpp"
#include "mcast/playback.hpp"
#include "mcast/scheme.hpp"
#include "routing/scheme.hpp"

namespace dg::mcast {

/// Half-open interval range a group is active over; lastInterval values
/// beyond the trace end are clamped to it.
struct GroupWindow {
  std::size_t firstInterval = 0;
  std::size_t lastInterval = static_cast<std::size_t>(-1);
};

struct GroupExperimentConfig {
  std::vector<Group> groups;
  /// Per-group active windows; empty = every group scores the whole
  /// trace, otherwise parallel to `groups` with non-empty windows.
  std::vector<GroupWindow> groupWindows;
  std::vector<GroupSchemeKind> schemes = allGroupSchemeKinds();
  routing::SchemeParams schemeParams;
  GroupPlaybackParams playback;
  /// Worker threads; 0 = hardware concurrency.
  unsigned threads = 0;
};

struct GroupSchemeSummary {
  GroupSchemeKind scheme{};
  /// Mean delivered-to-all unavailability across groups (groups weighted
  /// equally).
  double unavailabilityAll = 0.0;
  /// Mean delivered-to-k unavailability across groups.
  double unavailabilityK = 0.0;
  /// Total expected not-fully-served seconds, summed across groups.
  double unavailableAllSeconds = 0.0;
  std::size_t problematicIntervals = 0;
  /// Mean transmissions per packet across groups.
  double averageCost = 0.0;
  /// Worst per-receiver unavailability seen under this scheme.
  double worstReceiverUnavailability = 0.0;
};

struct GroupExperimentResult {
  /// groups-major: perGroup[g * schemes.size() + s].
  std::vector<GroupSchemeResult> perGroup;
  std::vector<GroupSchemeSummary> summary;  ///< in config.schemes order

  const GroupSchemeResult& at(std::size_t groupIndex,
                              std::size_t schemeIndex,
                              std::size_t schemeCount) const {
    return perGroup[groupIndex * schemeCount + schemeIndex];
  }
};

/// Runs every (group, scheme) pair over the trace; deterministic
/// regardless of thread count (private per-job telemetry, sequential
/// job-order merge -- same discipline as playback::runExperiment).
GroupExperimentResult runGroupExperiment(
    const graph::Graph& overlay, const trace::Trace& trace,
    const GroupExperimentConfig& config,
    telemetry::Telemetry* telemetry = nullptr);

/// Chunk-parallel variant over a packed dgtrace file: the work unit is
/// (group, scheme, chunk); per-worker PackedTraceReader + private
/// condition sources, chunk-aligned accumulation blocks, ascending-chunk
/// fold -- bit-identical at any thread count, telemetry exports
/// byte-identical (same contract as playback::runPackedExperiment).
GroupExperimentResult runPackedGroupExperiment(
    const graph::Graph& overlay, const std::string& packedPath,
    const GroupExperimentConfig& config,
    telemetry::Telemetry* telemetry = nullptr);

}  // namespace dg::mcast
