#include "mcast/graph_dump.hpp"

#include <span>
#include <stdexcept>
#include <string_view>

#include "graph/dissemination_graph.hpp"
#include "routing/network_view.hpp"
#include "trace/condition_timeline.hpp"

namespace dg::mcast {

namespace {

std::string jsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Replays decisions over [0, interval] exactly as the playback engines'
/// warm-up loop does (minus the steady-span jump, which only skips
/// fixed-point selects), returning the selection in force at `interval`.
template <typename Scheme>
const graph::DisseminationGraph& replaySelect(
    Scheme& scheme, const trace::Trace& trace,
    const routing::NetworkView& baselineView,
    const trace::ConditionIndex& index, trace::ConditionTimeline& cursor,
    std::size_t interval, std::size_t staleness) {
  const graph::DisseminationGraph* dg = nullptr;
  for (std::size_t t = 0; t <= interval; ++t) {
    if (t < staleness || !trace.hasDeviation(t - staleness)) {
      dg = &scheme.select(baselineView);
    } else {
      const std::size_t viewInterval = t - staleness;
      cursor.seek(viewInterval);
      const routing::NetworkView view = routing::NetworkView::borrowing(
          cursor, index.contentId(viewInterval));
      dg = &scheme.select(view);
    }
  }
  return *dg;
}

std::string renderDot(const graph::DisseminationGraph& dg,
                      const trace::Topology& topology, graph::NodeId source,
                      std::span<const graph::NodeId> receivers) {
  const graph::Graph& overlay = dg.overlay();
  std::string out = "digraph dissemination {\n  rankdir=LR;\n";
  out += "  \"" + topology.name(source) + "\" [shape=doublecircle];\n";
  for (const graph::NodeId receiver : receivers)
    out += "  \"" + topology.name(receiver) + "\" [shape=doubleoctagon];\n";
  for (const graph::EdgeId e : dg.edges()) {
    const graph::Edge& edge = overlay.edge(e);
    out += "  \"" + topology.name(edge.from) + "\" -> \"" +
           topology.name(edge.to) +
           "\" [label=\"" + std::to_string(edge.latency) + "us\"];\n";
  }
  out += "}\n";
  return out;
}

std::string renderJson(const graph::DisseminationGraph& dg,
                       const trace::Topology& topology, graph::NodeId source,
                       std::span<const graph::NodeId> receivers,
                       std::string_view schemeName, std::size_t interval) {
  const graph::Graph& overlay = dg.overlay();
  std::string out = "{\n  \"source\": \"";
  out += jsonEscape(topology.name(source));
  out += "\",\n  \"receivers\": [";
  for (std::size_t r = 0; r < receivers.size(); ++r) {
    if (r != 0) out += ", ";
    out += '"';
    out += jsonEscape(topology.name(receivers[r]));
    out += '"';
  }
  out += "],\n  \"interval\": " + std::to_string(interval);
  out += ",\n  \"scheme\": \"";
  out += jsonEscape(schemeName);
  out += "\",\n  \"edges\": [";
  for (std::size_t i = 0; i < dg.edges().size(); ++i) {
    const graph::EdgeId e = dg.edges()[i];
    const graph::Edge& edge = overlay.edge(e);
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"id\": " + std::to_string(e) + ", \"from\": \"" +
           jsonEscape(topology.name(edge.from)) + "\", \"to\": \"" +
           jsonEscape(topology.name(edge.to)) +
           "\", \"latency_us\": " + std::to_string(edge.latency) + "}";
  }
  out += dg.edges().empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void validateRequest(const trace::Trace& trace,
                     const GraphDumpRequest& request) {
  if (request.interval >= trace.intervalCount())
    throw std::invalid_argument("graph dump: interval " +
                                std::to_string(request.interval) +
                                " out of range (trace has " +
                                std::to_string(trace.intervalCount()) +
                                " intervals)");
  if (request.viewStaleness < 0)
    throw std::invalid_argument("graph dump: negative staleness");
}

}  // namespace

DumpFormat parseDumpFormat(std::string_view name) {
  if (name == "dot") return DumpFormat::kDot;
  if (name == "json") return DumpFormat::kJson;
  throw std::invalid_argument("unknown dump format: " + std::string(name) +
                              " (valid: dot, json)");
}

std::string dumpUnicastGraph(const graph::Graph& overlay,
                             const trace::Trace& trace,
                             const trace::Topology& topology,
                             routing::Flow flow, routing::SchemeKind kind,
                             const routing::SchemeParams& schemeParams,
                             const GraphDumpRequest& request) {
  validateRequest(trace, request);
  auto scheme = routing::makeScheme(kind, overlay, flow, schemeParams);
  const routing::NetworkView baselineView =
      routing::NetworkView::baseline(trace);
  scheme->initialize(baselineView);
  const trace::ConditionIndex index(trace);
  trace::ConditionTimeline cursor(trace);
  const graph::DisseminationGraph& dg = replaySelect(
      *scheme, trace, baselineView, index, cursor, request.interval,
      static_cast<std::size_t>(request.viewStaleness));
  const graph::NodeId receivers[] = {flow.destination};
  return request.format == DumpFormat::kDot
             ? renderDot(dg, topology, flow.source, receivers)
             : renderJson(dg, topology, flow.source, receivers,
                          routing::schemeName(kind), request.interval);
}

std::string dumpGroupGraph(const graph::Graph& overlay,
                           const trace::Trace& trace,
                           const trace::Topology& topology, const Group& group,
                           GroupSchemeKind kind,
                           const routing::SchemeParams& schemeParams,
                           const GraphDumpRequest& request) {
  validateRequest(trace, request);
  auto scheme = makeGroupScheme(kind, overlay, group, schemeParams);
  const routing::NetworkView baselineView =
      routing::NetworkView::baseline(trace);
  scheme->initialize(baselineView);
  const trace::ConditionIndex index(trace);
  trace::ConditionTimeline cursor(trace);
  const graph::DisseminationGraph& dg = replaySelect(
      *scheme, trace, baselineView, index, cursor, request.interval,
      static_cast<std::size_t>(request.viewStaleness));
  return request.format == DumpFormat::kDot
             ? renderDot(dg, topology, group.source, group.receivers)
             : renderJson(dg, topology, group.source, group.receivers,
                          groupSchemeName(kind), request.interval);
}

}  // namespace dg::mcast
