#include "mcast/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "store/reader.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace dg::mcast {

namespace {

/// Per-scheme aggregation shared by both runners.
void summarizeSchemes(GroupExperimentResult& result,
                      const GroupExperimentConfig& config) {
  const std::size_t schemeCount = config.schemes.size();
  std::vector<GroupSchemeSummary> summaries(schemeCount);
  for (std::size_t s = 0; s < schemeCount; ++s) {
    GroupSchemeSummary& summary = summaries[s];
    summary.scheme = config.schemes[s];
    util::OnlineStats unavailAll;
    util::OnlineStats unavailK;
    util::OnlineStats cost;
    for (std::size_t g = 0; g < config.groups.size(); ++g) {
      const GroupSchemeResult& r = result.at(g, s, schemeCount);
      unavailAll.add(r.unavailabilityAll);
      unavailK.add(r.unavailabilityK);
      cost.add(r.averageCost);
      summary.unavailableAllSeconds += r.unavailableAllSeconds;
      summary.problematicIntervals += r.problematicIntervals;
      for (const GroupReceiverResult& receiver : r.receivers) {
        summary.worstReceiverUnavailability = std::max(
            summary.worstReceiverUnavailability, receiver.unavailability);
      }
    }
    summary.unavailabilityAll = unavailAll.mean();
    summary.unavailabilityK = unavailK.mean();
    summary.averageCost = cost.mean();
  }
  result.summary = std::move(summaries);
}

std::vector<std::pair<std::size_t, std::size_t>> resolveWindows(
    const GroupExperimentConfig& config, std::size_t intervalCount) {
  std::vector<std::pair<std::size_t, std::size_t>> windows(
      config.groups.size(), {std::size_t{0}, intervalCount});
  if (config.groupWindows.empty()) return windows;
  if (config.groupWindows.size() != config.groups.size())
    throw std::invalid_argument(
        "groupWindows must be empty or parallel to groups");
  for (std::size_t g = 0; g < config.groups.size(); ++g) {
    const std::size_t first =
        std::min(config.groupWindows[g].firstInterval, intervalCount);
    const std::size_t last =
        std::min(config.groupWindows[g].lastInterval, intervalCount);
    if (first >= last)
      throw std::invalid_argument("groupWindows: empty window for group " +
                                  std::to_string(g));
    windows[g] = {first, last};
  }
  return windows;
}

/// Experiment-level counters recorded after the sequential telemetry
/// merge; mirrors the unicast runners' discipline.
void recordExperimentMetrics(telemetry::Telemetry& telemetry,
                             std::size_t jobs,
                             const GroupExperimentResult& result) {
  telemetry.metrics.counter("dg_mcast_jobs_total").inc(jobs);
  telemetry::SummaryMetric& perJobUnavailable =
      telemetry.metrics.summary("dg_mcast_job_unavailable_seconds");
  for (const GroupSchemeResult& r : result.perGroup)
    perJobUnavailable.observe(r.unavailableAllSeconds);
}

}  // namespace

// dgcheck: worker
GroupExperimentResult runGroupExperiment(const graph::Graph& overlay,
                                         const trace::Trace& trace,
                                         const GroupExperimentConfig& config,
                                         telemetry::Telemetry* telemetry) {
  if (config.groups.empty() || config.schemes.empty())
    throw std::invalid_argument("runGroupExperiment: empty groups or schemes");

  const bool windowed = !config.groupWindows.empty();
  GroupPlaybackParams playback = config.playback;
  if (windowed) playback.base.conditionCursor = true;
  const GroupPlaybackEngine engine(overlay, trace, playback);
  const std::vector<std::pair<std::size_t, std::size_t>> windows =
      resolveWindows(config, trace.intervalCount());
  const std::size_t schemeCount = config.schemes.size();
  const std::size_t jobs = config.groups.size() * schemeCount;

  GroupExperimentResult result;
  result.perGroup.resize(jobs);

  unsigned threadCount = config.threads != 0
                             ? config.threads
                             : std::thread::hardware_concurrency();
  threadCount = std::max(1u, std::min<unsigned>(threadCount,
                                                static_cast<unsigned>(jobs)));

  std::vector<std::unique_ptr<telemetry::Telemetry>> jobTelemetry;
  if (telemetry != nullptr) {
    jobTelemetry.resize(jobs);
    for (auto& t : jobTelemetry)
      t = std::make_unique<telemetry::Telemetry>(telemetry->trace.capacity());
  }

  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t job = next.fetch_add(1);
      if (job >= jobs) return;
      const std::size_t groupIndex = job / schemeCount;
      const std::size_t schemeIndex = job % schemeCount;
      telemetry::Telemetry* jobSink =
          telemetry != nullptr ? jobTelemetry[job].get() : nullptr;
      if (windowed) {
        const auto [first, last] = windows[groupIndex];
        GroupRunPartial partial = engine.runChunkPartial(
            config.groups[groupIndex], config.schemes[schemeIndex],
            config.schemeParams, first, last, nullptr, nullptr, jobSink);
        result.perGroup[job] = engine.finalizePartial(
            config.groups[groupIndex], config.schemes[schemeIndex],
            std::move(partial));
      } else {
        result.perGroup[job] =
            engine.run(config.groups[groupIndex], config.schemes[schemeIndex],
                       config.schemeParams, jobSink);
      }
    }
  };
  if (threadCount == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(threadCount);
    for (unsigned i = 0; i < threadCount; ++i) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }

  if (telemetry != nullptr) {
    for (const auto& jobResult : jobTelemetry) telemetry->merge(*jobResult);
    recordExperimentMetrics(*telemetry, jobs, result);
  }

  summarizeSchemes(result, config);
  DG_LOG(Info) << "group experiment complete: " << jobs << " runs";
  return result;
}

// dgcheck: worker
GroupExperimentResult runPackedGroupExperiment(
    const graph::Graph& overlay, const std::string& packedPath,
    const GroupExperimentConfig& config, telemetry::Telemetry* telemetry) {
  if (config.groups.empty() || config.schemes.empty())
    throw std::invalid_argument(
        "runPackedGroupExperiment: empty groups or schemes");

  store::PackedTraceReader reader = store::PackedTraceReader::open(packedPath);
  if (reader.info().intervalCount == 0 || reader.info().chunkCount == 0)
    throw std::invalid_argument("runPackedGroupExperiment: empty trace");
  const trace::Trace trace = reader.readAll();

  // The chunk is the accumulation block, exactly as in the unicast packed
  // runner: the per-job ascending-chunk fold below then reproduces a
  // single-threaded blocked run bit for bit.
  GroupPlaybackParams playback = config.playback;
  playback.base.conditionCursor = true;
  playback.base.accumBlockIntervals = reader.info().chunkIntervals;
  const GroupPlaybackEngine engine(overlay, trace, playback);

  GroupExperimentResult result;
  const std::size_t schemeCount = config.schemes.size();
  const std::size_t jobs = config.groups.size() * schemeCount;
  const std::vector<std::pair<std::size_t, std::size_t>> windows =
      resolveWindows(config,
                     static_cast<std::size_t>(reader.info().intervalCount));
  const std::size_t chunkCount =
      static_cast<std::size_t>(reader.info().chunkCount);
  const std::size_t chunkIntervals = reader.info().chunkIntervals;
  const std::size_t intervalCount =
      static_cast<std::size_t>(reader.info().intervalCount);
  const std::size_t tasks = jobs * chunkCount;

  result.perGroup.resize(jobs);
  std::vector<GroupRunPartial> partials(tasks);

  unsigned threadCount = config.threads != 0
                             ? config.threads
                             : std::thread::hardware_concurrency();
  threadCount = std::max(
      1u, std::min<unsigned>(threadCount, static_cast<unsigned>(tasks)));

  std::vector<std::unique_ptr<telemetry::Telemetry>> taskTelemetry;
  if (telemetry != nullptr) {
    taskTelemetry.resize(tasks);
    for (auto& t : taskTelemetry)
      t = std::make_unique<telemetry::Telemetry>(telemetry->trace.capacity());
  }

  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    // Worker-private reader and cursor feeds; two sources because the
    // decision cursor lags the truth cursor near chunk boundaries.
    store::PackedTraceReader workerReader =
        store::PackedTraceReader::open(packedPath);
    store::PackedConditionSource decisionSource(workerReader);
    store::PackedConditionSource truthSource(workerReader);
    for (;;) {
      const std::size_t task = next.fetch_add(1);
      if (task >= tasks) return;
      const std::size_t job = task / chunkCount;
      const std::size_t chunk = task % chunkCount;
      const auto [windowFirst, windowLast] = windows[job / schemeCount];
      const std::size_t first =
          std::max(chunk * chunkIntervals, windowFirst);
      const std::size_t last = std::min(
          {chunk * chunkIntervals + chunkIntervals, intervalCount,
           windowLast});
      if (first >= last) continue;
      partials[task] = engine.runChunkPartial(
          config.groups[job / schemeCount], config.schemes[job % schemeCount],
          config.schemeParams, first, last, &decisionSource, &truthSource,
          telemetry != nullptr ? taskTelemetry[task].get() : nullptr);
    }
  };
  if (threadCount == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(threadCount);
    for (unsigned i = 0; i < threadCount; ++i) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }

  // Deterministic fold: each job's chunk partials in ascending chunk
  // order.
  for (std::size_t job = 0; job < jobs; ++job) {
    GroupRunPartial total;
    for (std::size_t chunk = 0; chunk < chunkCount; ++chunk)
      total.merge(std::move(partials[job * chunkCount + chunk]));
    result.perGroup[job] = engine.finalizePartial(
        config.groups[job / schemeCount], config.schemes[job % schemeCount],
        std::move(total));
  }

  if (telemetry != nullptr) {
    for (const auto& taskResult : taskTelemetry)
      telemetry->merge(*taskResult);
    recordExperimentMetrics(*telemetry, jobs, result);
  }

  summarizeSchemes(result, config);
  DG_LOG(Info) << "packed group experiment complete: " << jobs << " runs, "
               << chunkCount << " chunks, " << threadCount << " threads";
  return result;
}

}  // namespace dg::mcast
