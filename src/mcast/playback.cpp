#include "mcast/playback.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "playback/delivery_model.hpp"
#include "routing/network_view.hpp"
#include "util/rng.hpp"

namespace dg::mcast {

namespace {

/// Deterministic per-(group, scheme, interval) RNG stream. Same mixing
/// function as the unicast engine's, folding in every receiver (in group
/// order) and the scheme's unicast equivalent -- so a single-receiver
/// group derives the *identical* stream as the unicast run it must match
/// bit for bit.
std::uint64_t groupMixSeed(std::uint64_t seed, const Group& group,
                           GroupSchemeKind kind, std::size_t interval) {
  std::uint64_t x = seed;
  const auto mix = [&x](std::uint64_t v) {
    x ^= v + 0x9E3779B97F4A7C15ULL + (x << 6) + (x >> 2);
  };
  mix(group.source);
  for (const graph::NodeId r : group.receivers) mix(r);
  mix(static_cast<std::uint64_t>(unicastEquivalent(kind)));
  mix(interval);
  return x;
}

}  // namespace

void GroupRunPartial::resize(std::size_t receiverCount) {
  if (receiverMiss.size() == receiverCount) return;
  receiverMiss.resize(receiverCount);
  receiverLatency.resize(receiverCount);
  receiverUnavailableSeconds.resize(receiverCount, 0.0);
  receiverProblematic.resize(receiverCount, 0);
}

// dgcheck: cold: runs once per chunk at merge time, not per interval
void GroupRunPartial::merge(GroupRunPartial&& later) {
  if (receiverMiss.empty()) {
    receiverMiss = std::move(later.receiverMiss);
    receiverLatency = std::move(later.receiverLatency);
    receiverUnavailableSeconds = std::move(later.receiverUnavailableSeconds);
    receiverProblematic = std::move(later.receiverProblematic);
  } else if (!later.receiverMiss.empty()) {
    for (std::size_t r = 0; r < receiverMiss.size(); ++r) {
      receiverMiss[r].merge(later.receiverMiss[r]);
      receiverLatency[r].merge(later.receiverLatency[r]);
      receiverUnavailableSeconds[r] += later.receiverUnavailableSeconds[r];
      receiverProblematic[r] += later.receiverProblematic[r];
    }
  }
  missAllMean.merge(later.missAllMean);
  missKMean.merge(later.missKMean);
  costStats.merge(later.costStats);
  unavailableAllSeconds += later.unavailableAllSeconds;
  problematicIntervals += later.problematicIntervals;
  if (problems.empty()) {
    problems = std::move(later.problems);
  } else {
    problems.insert(problems.end(), later.problems.begin(),
                    later.problems.end());
  }
}

GroupPlaybackEngine::GroupPlaybackEngine(const graph::Graph& overlay,
                                         const trace::Trace& trace,
                                         GroupPlaybackParams params)
    : overlay_(&overlay),
      trace_(&trace),
      params_(params),
      conditionIndex_(trace) {
  if (trace.edgeCount() != overlay.edgeCount())
    throw std::invalid_argument(
        "GroupPlaybackEngine: trace edge count does not match overlay");
  if (params_.base.viewStaleness < 0)
    throw std::invalid_argument("GroupPlaybackEngine: negative staleness");
  for (std::size_t t = 0; t < trace.intervalCount(); ++t) {
    if (trace.hasDeviation(t)) deviatingIntervals_.push_back(t);
  }
}

std::size_t GroupPlaybackEngine::nextDeviatingDecision(
    std::size_t fromInterval, std::size_t staleness) const {
  const std::size_t fromView =
      fromInterval > staleness ? fromInterval - staleness : 0;
  const auto it = std::lower_bound(deviatingIntervals_.begin(),
                                   deviatingIntervals_.end(), fromView);
  if (it == deviatingIntervals_.end()) return trace_->intervalCount();
  return std::max(fromInterval, *it + staleness);
}

GroupSchemeResult GroupPlaybackEngine::run(
    const Group& group, GroupSchemeKind kind,
    const routing::SchemeParams& schemeParams,
    telemetry::Telemetry* telemetry) const {
  return runRange(group, kind, schemeParams, 0, trace_->intervalCount(),
                  telemetry);
}

GroupSchemeResult GroupPlaybackEngine::runRange(
    const Group& group, GroupSchemeKind kind,
    const routing::SchemeParams& schemeParams, std::size_t first,
    std::size_t last, telemetry::Telemetry* telemetry) const {
  if (first > last || last > trace_->intervalCount())
    throw std::out_of_range("GroupPlaybackEngine::runRange: bad range");
  return runCore(group, kind, schemeParams, first, last, telemetry);
}

GroupSchemeResult GroupPlaybackEngine::runCore(
    const Group& group, GroupSchemeKind kind,
    const routing::SchemeParams& schemeParams, std::size_t first,
    std::size_t last, telemetry::Telemetry* telemetry) const {
  auto scheme = makeGroupScheme(kind, *overlay_, group, schemeParams);
  if (params_.base.decisionMemo) scheme->attachDecisionMemo(&decisionMemo_);
  const routing::NetworkView baselineView =
      routing::NetworkView::baseline(*trace_);
  scheme->initialize(baselineView);

  trace::ConditionTimeline decisionCursor(*trace_);
  trace::ConditionTimeline truthCursor(*trace_);

  ScoreSpec spec;
  spec.scheme = scheme.get();
  spec.baselineView = &baselineView;
  spec.group = &group;
  spec.kind = kind;
  spec.first = first;
  spec.last = last;
  spec.warmupUntil =
      first + static_cast<std::size_t>(params_.base.viewStaleness);
  spec.decisionCursor = &decisionCursor;
  spec.truthCursor = &truthCursor;
  spec.telemetry = telemetry;
  spec.reuseCleanEvals = true;
  return finalizePartial(group, kind, scoreIntervals(spec));
}

// dgcheck: hot
GroupRunPartial GroupPlaybackEngine::runChunkPartial(
    const Group& group, GroupSchemeKind kind,
    const routing::SchemeParams& schemeParams, std::size_t first,
    std::size_t last, trace::ConditionSource* decisionSource,
    trace::ConditionSource* truthSource,
    telemetry::Telemetry* telemetry) const {
  if (first > last || last > trace_->intervalCount())
    throw std::out_of_range("GroupPlaybackEngine::runChunkPartial: bad range");
  if (!params_.base.conditionCursor)
    throw std::logic_error(
        "GroupPlaybackEngine::runChunkPartial requires conditionCursor mode");

  auto scheme = makeGroupScheme(kind, *overlay_, group, schemeParams);
  if (params_.base.decisionMemo) scheme->attachDecisionMemo(&decisionMemo_);
  const routing::NetworkView baselineView =
      routing::NetworkView::baseline(*trace_);
  scheme->initialize(baselineView);

  std::optional<trace::ConditionTimeline> decisionCursor;
  std::optional<trace::ConditionTimeline> truthCursor;
  if (decisionSource != nullptr) {
    decisionCursor.emplace(*decisionSource);
  } else {
    decisionCursor.emplace(*trace_);
  }
  if (truthSource != nullptr) {
    truthCursor.emplace(*truthSource);
  } else {
    truthCursor.emplace(*trace_);
  }

  // Warm-up replay over [0, first), jumping clean steady spans exactly as
  // the unicast engine does (telemetry is detached here, so skipped
  // fixed-point selects are unobservable).
  const auto staleness = static_cast<std::size_t>(params_.base.viewStaleness);
  const graph::DisseminationGraph* dg = nullptr;
  std::size_t t = 0;
  while (t < first) {
    if (t < staleness || !trace_->hasDeviation(t - staleness)) {
      dg = &scheme->select(baselineView);
      if (scheme->steadyOnBaseline()) {
        t = nextDeviatingDecision(t + 1, staleness);
        continue;
      }
      ++t;
    } else {
      const std::size_t viewInterval = t - staleness;
      decisionCursor->seek(viewInterval);
      const routing::NetworkView view = routing::NetworkView::borrowing(
          *decisionCursor, conditionIndex_.contentId(viewInterval));
      dg = &scheme->select(view);
      ++t;
    }
  }

  ScoreSpec spec;
  spec.scheme = scheme.get();
  spec.baselineView = &baselineView;
  spec.group = &group;
  spec.kind = kind;
  spec.first = first;
  spec.last = last;
  spec.warmupUntil = staleness;  // scheme history starts at interval 0
  spec.decisionCursor = &*decisionCursor;
  spec.truthCursor = &*truthCursor;
  spec.telemetry = telemetry;
  spec.reuseCleanEvals = true;
  if (telemetry != nullptr && dg != nullptr) {
    spec.lastSelectedEdges = dg->edges();
    spec.haveSelected = true;
  }
  return scoreIntervals(spec);
}

GroupSchemeResult GroupPlaybackEngine::finalizePartial(
    const Group& group, GroupSchemeKind kind, GroupRunPartial&& total) const {
  total.resize(group.receivers.size());
  GroupSchemeResult result;
  result.group = group;
  result.scheme = kind;
  result.unavailabilityAll = total.missAllMean.mean();
  result.unavailabilityK = total.missKMean.mean();
  result.unavailableAllSeconds = total.unavailableAllSeconds;
  result.problematicIntervals = total.problematicIntervals;
  result.averageCost = total.costStats.mean();
  result.receivers.resize(group.receivers.size());
  for (std::size_t r = 0; r < group.receivers.size(); ++r) {
    GroupReceiverResult& out = result.receivers[r];
    out.receiver = group.receivers[r];
    out.deadline = receiverDeadline(group, r, params_.base.delivery.deadline);
    out.unavailability = total.receiverMiss[r].mean();
    out.unavailableSeconds = total.receiverUnavailableSeconds[r];
    out.problematicIntervals = total.receiverProblematic[r];
    out.averageLatencyUs = total.receiverLatency[r].mean();
  }
  result.problems = std::move(total.problems);
  return result;
}

GroupRunPartial GroupPlaybackEngine::scoreIntervals(ScoreSpec& spec) const {
  // dgcheck: setup begin
  const bool useCursor = params_.base.conditionCursor;
  const bool reuseCleanEvals = spec.reuseCleanEvals;
  GroupScheme& scheme = *spec.scheme;
  telemetry::Telemetry* telemetry = spec.telemetry;
  const Group& group = *spec.group;
  const std::size_t receiverCount = group.receivers.size();

  // Per-receiver deadlines resolved once per range.
  std::vector<util::SimTime> deadlines(receiverCount);
  for (std::size_t r = 0; r < receiverCount; ++r) {
    deadlines[r] =
        receiverDeadline(group, r, params_.base.delivery.deadline);
  }
  // Delivered-to-k bar: 0 means "all receivers".
  const std::size_t kBar =
      params_.deliveredK == 0 || params_.deliveredK >= receiverCount
          ? receiverCount
          : params_.deliveredK;

  telemetry::Counter* intervalsCounter = nullptr;
  telemetry::Counter* mcIntervalsCounter = nullptr;
  telemetry::Counter* mcSamplesCounter = nullptr;
  telemetry::Counter* switchCounter = nullptr;
  telemetry::HistogramMetric* missHistogram = nullptr;
  if (telemetry != nullptr) {
    const std::string label = groupLabel(group);
    const std::string schemeLabel{groupSchemeName(spec.kind)};
    scheme.setTelemetry(telemetry, label);
    const telemetry::Labels labels{{"group", label},
                                   {"scheme", schemeLabel}};
    telemetry::MetricsRegistry& metrics = telemetry->metrics;
    intervalsCounter = &metrics.counter("dg_mcast_intervals_total", labels);
    mcIntervalsCounter =
        &metrics.counter("dg_mcast_mc_intervals_total", labels);
    mcSamplesCounter = &metrics.counter("dg_mcast_mc_samples_total", labels);
    switchCounter = &metrics.counter("dg_mcast_graph_switches_total", labels);
    missHistogram = &metrics.histogram("dg_mcast_miss_all_probability", 0.0,
                                       1.0, 20, labels);
  }

  // Steady fast path, same observability rule as the unicast engine:
  // skipped fixed-point selects must be unobservable.
  const bool fastPathOk =
      useCursor && telemetry == nullptr && reuseCleanEvals;

  GroupRunPartial total;
  GroupRunPartial block;
  const std::size_t blockLen = params_.base.accumBlockIntervals;
  GroupRunPartial* const acc = blockLen > 0 ? &block : &total;
  acc->resize(receiverCount);

  const double intervalSeconds = util::toSeconds(trace_->intervalLength());
  playback::DeliveryWorkspace workspace;

  // Hot-loop buffers, hoisted so per-interval work never allocates once
  // capacities settle: the interval evaluation (and its clean-reuse
  // copy), the Monte-Carlo tallies, and the delivered-to-k DP row.
  GroupIntervalEval eval;
  GroupIntervalEval cachedEval;
  eval.miss.resize(receiverCount);
  eval.arrival.resize(receiverCount);
  std::vector<int> onTimeCounts(receiverCount);
  std::vector<int> deliveredHistogram(receiverCount + 1);
  std::vector<double> dp(receiverCount + 1);

  // Run-local clean-interval reuse, identical contract to the unicast
  // engine's (same reset points, same pointer/edge-list check).
  std::vector<graph::EdgeId> cachedEdges;
  bool cacheValid = false;
  const graph::DisseminationGraph* cachedDg = nullptr;

  const graph::DisseminationGraph* dg = nullptr;
  bool steady = false;

  const auto staleness = static_cast<std::size_t>(params_.base.viewStaleness);
  // dgcheck: setup end
  for (std::size_t t = spec.first; t < spec.last; ++t) {
    if (blockLen > 0 && t != spec.first && t % blockLen == 0) {
      total.merge(std::move(block));
      block = GroupRunPartial{};
      block.resize(receiverCount);
      cacheValid = false;
      cachedDg = nullptr;
    }
    if (telemetry != nullptr) {
      telemetry->now =
          static_cast<util::SimTime>(t) * trace_->intervalLength();
    }
    // --- Decision: what does the scheme believe right now? -------------
    const bool baselineDecision =
        t < spec.warmupUntil || !trace_->hasDeviation(t - staleness);
    if (baselineDecision) {
      if (!(steady && fastPathOk)) {
        dg = &scheme.select(*spec.baselineView);
        steady = scheme.steadyOnBaseline();
        cachedDg = nullptr;
      }
    } else if (useCursor) {
      const std::size_t viewInterval = t - staleness;
      spec.decisionCursor->seek(viewInterval);
      const routing::NetworkView view = routing::NetworkView::borrowing(
          *spec.decisionCursor, conditionIndex_.contentId(viewInterval));
      dg = &scheme.select(view);
      steady = false;
      cachedDg = nullptr;
    } else {
      const routing::NetworkView view =
          routing::NetworkView::atInterval(*trace_, t - staleness);
      dg = &scheme.select(view);
      steady = false;
      cachedDg = nullptr;
    }
    if (telemetry != nullptr) {
      if (spec.haveSelected && dg->edges() != spec.lastSelectedEdges) {
        switchCounter->inc();
        telemetry->trace.record(
            telemetry->now, telemetry::TraceEventKind::GraphSwitch, -1,
            group.source, -1, static_cast<double>(dg->edges().size()),
            std::string(groupSchemeName(spec.kind)));
      }
      spec.lastSelectedEdges = dg->edges();
      spec.haveSelected = true;
    }

    // --- Outcome under the interval's true conditions ------------------
    const bool clean = !trace_->hasDeviation(t);
    if (reuseCleanEvals && clean && cacheValid &&
        (dg == cachedDg || dg->edges() == cachedEdges)) {
      eval = cachedEval;
    } else {
      std::span<const double> lossRates;
      std::span<const util::SimTime> latencies;
      std::vector<double> lossBuffer;  // dgcheck: ok(R5): non-cursor fallback; conditionCursor runs never construct these
      std::vector<util::SimTime> latencyBuffer;  // dgcheck: ok(R5): non-cursor fallback; conditionCursor runs never construct these
      if (useCursor) {
        spec.truthCursor->seek(t);
        lossRates = spec.truthCursor->lossRates();
        latencies = spec.truthCursor->latencies();
      } else {
        lossBuffer = trace_->lossRatesAt(t);
        latencyBuffer = trace_->latenciesAt(t);
        lossRates = lossBuffer;
        latencies = latencyBuffer;
      }

      const bool deterministic =
          playback::nearLossless(*dg, lossRates, params_.base.lossEpsilon);
      if (deterministic) {
        playback::missGroupNearLossless(*dg, group.receivers, deadlines,
                                        lossRates, latencies,
                                        params_.base.delivery, workspace,
                                        eval.miss, eval.arrival);
        eval.monteCarlo = false;
        // Group accounting under per-receiver independence (residual
        // misses live on near-disjoint earliest paths; shared hops make
        // this an upper bound on the delivered-to-all probability gap):
        // P(some receiver misses) via incremental inclusion-exclusion.
        double missAll = eval.miss[0];
        for (std::size_t r = 1; r < receiverCount; ++r) {
          missAll = missAll + eval.miss[r] - missAll * eval.miss[r];
        }
        eval.missAll = missAll;
        if (kBar == receiverCount) {
          eval.missK = missAll;
        } else {
          // Poisson-binomial tail: dp[c] = P(exactly c receivers on
          // time) after the receivers folded so far.
          std::fill(dp.begin(), dp.end(), 0.0);
          dp[0] = 1.0;
          for (std::size_t r = 0; r < receiverCount; ++r) {
            const double q = 1.0 - eval.miss[r];
            for (std::size_t c = r + 1; c >= 1; --c) {
              dp[c] = dp[c] * eval.miss[r] + dp[c - 1] * q;
            }
            dp[0] *= eval.miss[r];
          }
          double atLeastK = 0.0;
          for (std::size_t c = kBar; c <= receiverCount; ++c)
            atLeastK += dp[c];
          eval.missK = 1.0 - atLeastK;
        }
      } else {
        util::Rng rng(
            groupMixSeed(params_.base.seed, group, spec.kind, t));
        playback::onTimeCountsMCGroup(*dg, group.receivers, deadlines,
                                      lossRates, latencies,
                                      params_.base.delivery,
                                      params_.base.mcSamples, rng, workspace,
                                      onTimeCounts, deliveredHistogram);
        const auto samples = static_cast<double>(params_.base.mcSamples);
        for (std::size_t r = 0; r < receiverCount; ++r) {
          eval.miss[r] =
              1.0 - static_cast<double>(onTimeCounts[r]) / samples;
        }
        int deliveredAtLeastK = 0;
        for (std::size_t c = kBar; c <= receiverCount; ++c)
          deliveredAtLeastK += deliveredHistogram[c];
        eval.missAll =
            1.0 -
            static_cast<double>(deliveredHistogram[receiverCount]) / samples;
        eval.missK =
            1.0 - static_cast<double>(deliveredAtLeastK) / samples;
        playback::groupCleanArrivals(*dg, latencies, group.receivers,
                                     workspace, eval.arrival);
        eval.monteCarlo = true;
      }
      eval.cost = static_cast<double>(dg->cost(latencies));

      if (reuseCleanEvals && clean) {
        cachedEdges = dg->edges();
        cachedEval = eval;
        cacheValid = true;
        cachedDg = dg;
      }
      if (eval.monteCarlo && mcIntervalsCounter != nullptr) {
        mcIntervalsCounter->inc();
        mcSamplesCounter->inc(
            static_cast<std::uint64_t>(params_.base.mcSamples));
      }
    }
    if (intervalsCounter != nullptr) {
      intervalsCounter->inc();
      missHistogram->observe(eval.missAll);
    }

    for (std::size_t r = 0; r < receiverCount; ++r) {
      acc->receiverMiss[r].add(eval.miss[r], 1.0);
      if (eval.arrival[r] != util::kNever) {
        acc->receiverLatency[r].add(static_cast<double>(eval.arrival[r]));
      }
      acc->receiverUnavailableSeconds[r] += eval.miss[r] * intervalSeconds;
      if (eval.miss[r] > params_.base.problematicThreshold) {
        ++acc->receiverProblematic[r];
      }
    }
    acc->missAllMean.add(eval.missAll, 1.0);
    acc->missKMean.add(eval.missK, 1.0);
    acc->costStats.add(eval.cost);
    acc->unavailableAllSeconds += eval.missAll * intervalSeconds;
    if (eval.missAll > params_.base.problematicThreshold) {
      ++acc->problematicIntervals;
      acc->problems.push_back(  // dgcheck: ok(R5): bounded by problematic intervals; diagnostic record with amortized growth
          playback::ProblematicInterval{t, eval.missAll});
    }
  }
  if (blockLen > 0) total.merge(std::move(block));
  return total;
}

}  // namespace dg::mcast
