#include "mcast/scheme.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "mcast/builders.hpp"

namespace dg::mcast {

std::string_view groupSchemeName(GroupSchemeKind kind) {
  switch (kind) {
    case GroupSchemeKind::kStaticTrees: return "static-trees";
    case GroupSchemeKind::kDynamicTrees: return "dynamic-trees";
    case GroupSchemeKind::kStaticMesh: return "static-mesh";
    case GroupSchemeKind::kDynamicMesh: return "dynamic-mesh";
    case GroupSchemeKind::kTargetedReceivers: return "targeted-receivers";
    case GroupSchemeKind::kGroupFlooding: return "group-flooding";
  }
  return "unknown";
}

GroupSchemeKind parseGroupSchemeKind(std::string_view name) {
  for (const GroupSchemeKind kind : allGroupSchemeKinds()) {
    if (groupSchemeName(kind) == name) return kind;
  }
  std::string valid;
  for (const GroupSchemeKind kind : allGroupSchemeKinds()) {
    if (!valid.empty()) valid += ", ";
    valid += groupSchemeName(kind);
  }
  throw std::invalid_argument("unknown group scheme: " + std::string(name) +
                              " (valid: " + valid + ")");
}

std::vector<GroupSchemeKind> allGroupSchemeKinds() {
  return {GroupSchemeKind::kStaticTrees,       GroupSchemeKind::kDynamicTrees,
          GroupSchemeKind::kStaticMesh,        GroupSchemeKind::kDynamicMesh,
          GroupSchemeKind::kTargetedReceivers, GroupSchemeKind::kGroupFlooding};
}

routing::SchemeKind unicastEquivalent(GroupSchemeKind kind) {
  switch (kind) {
    case GroupSchemeKind::kStaticTrees:
      return routing::SchemeKind::StaticSinglePath;
    case GroupSchemeKind::kDynamicTrees:
      return routing::SchemeKind::DynamicSinglePath;
    case GroupSchemeKind::kStaticMesh:
      return routing::SchemeKind::StaticTwoDisjoint;
    case GroupSchemeKind::kDynamicMesh:
      return routing::SchemeKind::DynamicTwoDisjoint;
    case GroupSchemeKind::kTargetedReceivers:
      return routing::SchemeKind::TargetedRedundancy;
    case GroupSchemeKind::kGroupFlooding:
      return routing::SchemeKind::TimeConstrainedFlooding;
  }
  return routing::SchemeKind::StaticSinglePath;
}

GroupScheme::GroupScheme(const graph::Graph& overlay, Group group,
                         routing::SchemeParams params)
    : overlay_(overlay), group_(std::move(group)), params_(params) {
  validateGroup(group_, overlay_.nodeCount());
}

void GroupScheme::setTelemetry(telemetry::Telemetry* telemetry,
                               std::string groupLabel) {
  telemetry_ = telemetry;
  groupLabel_ = std::move(groupLabel);
}

routing::SchemeParams GroupScheme::receiverParams(std::size_t i) const {
  routing::SchemeParams params = params_;
  params.deadline = receiverDeadline(group_, i, params_.deadline);
  return params;
}

namespace {

/// Dynamic group schemes: one unicast sub-scheme per receiver, serving
/// the union of their current selections. The union is rebuilt only when
/// some sub-selection actually changed, so steady spans keep returning
/// the same DisseminationGraph object (which the playback engine's
/// clean-eval reuse keys on).
class SubUnionScheme : public GroupScheme {
 public:
  SubUnionScheme(GroupSchemeKind kind, const graph::Graph& overlay,
                 Group group, routing::SchemeParams params)
      : GroupScheme(overlay, std::move(group), params),
        kind_(kind),
        union_(overlay, group_.source, group_.receivers.front()) {
    for (std::size_t i = 0; i < group_.receivers.size(); ++i) {
      subs_.push_back(routing::makeScheme(unicastEquivalent(kind_), overlay_,
                                          receiverFlow(group_, i),
                                          receiverParams(i)));
    }
    subEdges_.resize(subs_.size());
  }

  std::string_view name() const override { return groupSchemeName(kind_); }

  // dgcheck: cold: runs once per (group, scheme, chunk) task before interval playback
  void initialize(const routing::NetworkView& baselineView) override {
    // The extra select() after initialize() is a fixed-point no-op for
    // every unicast scheme (the cached schemes hit the fingerprint fast
    // path; targeted re-derives the identical classification), so the
    // per-interval selections match a unicast engine run exactly.
    for (std::size_t i = 0; i < subs_.size(); ++i) {
      subs_[i]->initialize(baselineView);
      subEdges_[i] = subs_[i]->select(baselineView).edges();
    }
    rebuildUnion();
  }

  // dgcheck: cold: decision path; steady-state selects are fixed-point no-ops on every sub-scheme
  const graph::DisseminationGraph& select(
      const routing::NetworkView& view) override {
    bool changed = false;
    for (std::size_t i = 0; i < subs_.size(); ++i) {
      const graph::DisseminationGraph& sub = subs_[i]->select(view);
      if (sub.edges() != subEdges_[i]) {
        subEdges_[i] = sub.edges();
        changed = true;
      }
    }
    if (changed) rebuildUnion();
    return union_;
  }

  bool steadyOnBaseline() const override {
    return std::all_of(subs_.begin(), subs_.end(),
                       [](const auto& sub) { return sub->steadyOnBaseline(); });
  }

  void setTelemetry(telemetry::Telemetry* telemetry,
                    std::string groupLabel) override {
    GroupScheme::setTelemetry(telemetry, std::move(groupLabel));
    for (std::size_t i = 0; i < subs_.size(); ++i) {
      subs_[i]->setTelemetry(telemetry,
                             std::to_string(group_.source) + "->" +
                                 std::to_string(group_.receivers[i]));
    }
  }

  void attachDecisionMemo(routing::DecisionMemo* memo) override {
    for (std::size_t i = 0; i < subs_.size(); ++i) {
      subs_[i]->setDecisionMemo(
          memo, memo->contextKey(unicastEquivalent(kind_),
                                 receiverFlow(group_, i), receiverParams(i)));
    }
  }

 private:
  void rebuildUnion() {
    graph::DisseminationGraph next(overlay_, group_.source,
                                   group_.receivers.front());
    for (const auto& edges : subEdges_) {
      for (const graph::EdgeId e : edges) next.addEdge(e);
    }
    union_ = std::move(next);
  }

  GroupSchemeKind kind_;
  std::vector<std::unique_ptr<routing::RoutingScheme>> subs_;
  std::vector<std::vector<graph::EdgeId>> subEdges_;
  graph::DisseminationGraph union_;
};

/// Static group schemes: the union is frozen from the healthy baseline at
/// initialize() and never revisited, mirroring the unicast static
/// schemes.
class StaticUnionScheme : public GroupScheme {
 public:
  StaticUnionScheme(GroupSchemeKind kind, const graph::Graph& overlay,
                    Group group, routing::SchemeParams params)
      : GroupScheme(overlay, std::move(group), params),
        kind_(kind),
        union_(overlay, group_.source, group_.receivers.front()) {}

  std::string_view name() const override { return groupSchemeName(kind_); }

  // dgcheck: cold: runs once per (group, scheme, chunk) task before interval playback
  void initialize(const routing::NetworkView& baselineView) override {
    std::vector<routing::SchemeParams> perReceiver;
    for (std::size_t i = 0; i < group_.receivers.size(); ++i) {
      perReceiver.push_back(receiverParams(i));
    }
    switch (kind_) {
      case GroupSchemeKind::kStaticTrees:
        union_ = buildTreeUnion(overlay_, group_, baselineView, perReceiver);
        break;
      case GroupSchemeKind::kGroupFlooding:
        union_ = buildReceiverUnion(
            overlay_, group_, baselineView,
            routing::SchemeKind::TimeConstrainedFlooding, perReceiver);
        break;
      default:
        union_ = buildReceiverUnion(overlay_, group_, baselineView,
                                    routing::SchemeKind::StaticTwoDisjoint,
                                    perReceiver);
        break;
    }
  }

  // dgcheck: cold: static scheme; select never re-plans after initialize
  const graph::DisseminationGraph& select(
      const routing::NetworkView&) override {
    return union_;
  }

  // Like the unicast static schemes, select() never mutates state, so the
  // baseline is trivially a fixed point.
  bool steadyOnBaseline() const override { return true; }

 private:
  GroupSchemeKind kind_;
  graph::DisseminationGraph union_;
};

}  // namespace

// dgcheck: cold: once-per-(group, scheme, chunk) factory, runs before interval playback starts
std::unique_ptr<GroupScheme> makeGroupScheme(GroupSchemeKind kind,
                                             const graph::Graph& overlay,
                                             const Group& group,
                                             routing::SchemeParams params) {
  switch (kind) {
    case GroupSchemeKind::kStaticTrees:
    case GroupSchemeKind::kStaticMesh:
    case GroupSchemeKind::kGroupFlooding:
      return std::make_unique<StaticUnionScheme>(kind, overlay, group, params);
    case GroupSchemeKind::kDynamicTrees:
    case GroupSchemeKind::kDynamicMesh:
    case GroupSchemeKind::kTargetedReceivers:
      return std::make_unique<SubUnionScheme>(kind, overlay, group, params);
  }
  throw std::invalid_argument("unknown group scheme kind");
}

}  // namespace dg::mcast
