#include "mcast/group.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strings.hpp"

namespace dg::mcast {

namespace {

[[noreturn]] void badGroup(const std::string& what) {
  throw std::invalid_argument("mcast: " + what);
}

}  // namespace

void validateGroup(const Group& group, std::size_t nodeCount) {
  if (group.receivers.empty()) badGroup("group has no receivers");
  if (static_cast<std::size_t>(group.source) >= nodeCount)
    badGroup("group source is not an overlay node");
  std::vector<graph::NodeId> seen;
  for (const graph::NodeId r : group.receivers) {
    if (static_cast<std::size_t>(r) >= nodeCount)
      badGroup("group receiver is not an overlay node");
    if (r == group.source) badGroup("group receiver equals the source");
    if (std::find(seen.begin(), seen.end(), r) != seen.end())
      badGroup("duplicate group receiver");
    seen.push_back(r);
  }
  if (!group.deadlines.empty()) {
    if (group.deadlines.size() != group.receivers.size())
      badGroup("deadline list must be empty or parallel to receivers");
    for (const util::SimTime d : group.deadlines) {
      if (d <= 0) badGroup("non-positive receiver deadline");
    }
  }
}

routing::Flow receiverFlow(const Group& group, std::size_t i) {
  return routing::Flow{group.source, group.receivers[i]};
}

util::SimTime receiverDeadline(const Group& group, std::size_t i,
                               util::SimTime fallback) {
  return group.deadlines.empty() ? fallback : group.deadlines[i];
}

std::string groupLabel(const Group& group) {
  std::string label = std::to_string(group.source) + "->";
  for (std::size_t i = 0; i < group.receivers.size(); ++i) {
    if (i != 0) label += '+';
    label += std::to_string(group.receivers[i]);
  }
  return label;
}

std::string groupName(const Group& group, const trace::Topology& topology) {
  std::string label = topology.name(group.source) + "->";
  for (std::size_t i = 0; i < group.receivers.size(); ++i) {
    if (i != 0) label += '+';
    label += topology.name(group.receivers[i]);
  }
  return label;
}

Group parseGroupSpec(std::string_view spec,
                     const trace::Topology& topology) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= spec.size())
    badGroup("group spec must look like SRC:R1+R2 (got '" +
             std::string(spec) + "')");
  const std::string sourceName{util::trim(spec.substr(0, colon))};
  const auto source = topology.byName(sourceName);
  if (!source) badGroup("unknown site '" + sourceName + "'");

  Group group;
  group.source = *source;
  std::string_view rest = spec.substr(colon + 1);
  while (!rest.empty()) {
    const std::size_t plus = rest.find('+');
    const std::string receiverName{util::trim(
        rest.substr(0, plus == std::string_view::npos ? rest.size() : plus))};
    rest = plus == std::string_view::npos ? std::string_view{}
                                          : rest.substr(plus + 1);
    if (receiverName.empty()) badGroup("empty receiver name in group spec");
    const auto receiver = topology.byName(receiverName);
    if (!receiver) badGroup("unknown site '" + receiverName + "'");
    group.receivers.push_back(*receiver);
  }
  validateGroup(group, topology.siteCount());
  return group;
}

std::vector<Group> parseGroupList(std::string_view specs,
                                  const trace::Topology& topology) {
  std::vector<Group> groups;
  std::size_t pos = 0;
  while (pos <= specs.size()) {
    const std::size_t comma = specs.find(',', pos);
    const std::string_view one = util::trim(specs.substr(
        pos, comma == std::string_view::npos ? comma : comma - pos));
    pos = comma == std::string_view::npos ? specs.size() + 1 : comma + 1;
    if (one.empty()) continue;
    groups.push_back(parseGroupSpec(one, topology));
  }
  if (groups.empty()) badGroup("no groups in group list");
  return groups;
}

}  // namespace dg::mcast
