// Receiver-set (multicast) flows.
//
// A Group generalizes routing::Flow from one destination to a receiver
// set: one source floods a packet on a single dissemination graph, and
// delivery is scored against every receiver's own deadline. The flooding
// semantics of graph::DisseminationGraph already support multiple sinks
// -- what the mcast layer adds is per-receiver reachability, per-receiver
// deadlines, and group-level (delivered-to-all / delivered-to-k) cost and
// timeliness accounting.
//
// Receiver order is significant and preserved everywhere: it feeds the
// deterministic per-(group, scheme, interval) RNG stream derivation and
// fixes which receiver anchors the union graph, so two Groups with the
// same receivers in different orders are different workloads (with
// statistically equivalent results).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "routing/scheme.hpp"
#include "trace/topology.hpp"
#include "util/sim_time.hpp"

namespace dg::mcast {

struct Group {
  graph::NodeId source = graph::kInvalidNode;
  /// Non-empty, duplicate-free, never containing the source.
  std::vector<graph::NodeId> receivers;
  /// Per-receiver delivery deadlines, parallel to `receivers`; empty
  /// means every receiver uses the engine-level default deadline.
  std::vector<util::SimTime> deadlines;

  bool operator==(const Group&) const = default;
};

/// Validates group shape against an overlay of `nodeCount` nodes; throws
/// std::invalid_argument with a "mcast:" prefix on the first violation
/// (empty receiver set, out-of-range node, receiver == source, duplicate
/// receiver, deadline list length mismatch, non-positive deadline).
void validateGroup(const Group& group, std::size_t nodeCount);

/// The unicast flow of one receiver: source -> receivers[i].
routing::Flow receiverFlow(const Group& group, std::size_t i);

/// Receiver i's deadline, or `fallback` when the group carries none.
util::SimTime receiverDeadline(const Group& group, std::size_t i,
                               util::SimTime fallback);

/// Numeric telemetry label, "SRC->R1+R2+R3" (node ids), mirroring the
/// playback engine's "src->dst" flow label.
std::string groupLabel(const Group& group);

/// Site-name rendering for reports, "NYC->SJC+LAX".
std::string groupName(const Group& group, const trace::Topology& topology);

/// Parses one group spec "SRC:R1+R2+R3" (site names against `topology`).
/// Throws std::invalid_argument on unknown sites or malformed syntax.
Group parseGroupSpec(std::string_view spec, const trace::Topology& topology);

/// Parses a comma-separated list of group specs.
std::vector<Group> parseGroupList(std::string_view specs,
                                  const trace::Topology& topology);

}  // namespace dg::mcast
