// Group playback: replays a condition trace for one receiver set under
// one group scheme. Structure and replay semantics mirror
// playback::PlaybackEngine interval for interval -- same decision
// staleness, same warm-up replay, same steady fast path, same blocked
// accumulation contract -- with the evaluation generalized to N receiver
// deadlines per send: per-receiver miss/latency plus group-level
// delivered-to-all and delivered-to-k accounting.
//
// A single-receiver group is bit-identical to the unicast engine run of
// the scheme's unicastEquivalent() for every scheme pair (pinned by
// test): the per-(group, scheme, interval) RNG stream derivation reduces
// to the unicast one, and the group evaluators reduce to the unicast
// evaluators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mcast/group.hpp"
#include "mcast/scheme.hpp"
#include "playback/playback.hpp"
#include "routing/decision_memo.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/condition_timeline.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace dg::mcast {

struct GroupPlaybackParams {
  playback::PlaybackParams base;
  /// Delivered-to-k accounting: an interval's group miss (the "K" line)
  /// is the probability that fewer than k receivers get the packet on
  /// time. 0 (default) means k = receiver count, i.e. delivered-to-all.
  std::size_t deliveredK = 0;
};

/// Per-receiver slice of a group run (FlowStats-style).
struct GroupReceiverResult {
  graph::NodeId receiver = graph::kInvalidNode;
  util::SimTime deadline = 0;
  double unavailability = 0.0;
  double unavailableSeconds = 0.0;
  std::size_t problematicIntervals = 0;
  double averageLatencyUs = 0.0;
};

struct GroupSchemeResult {
  Group group;
  GroupSchemeKind scheme{};

  /// Packet-weighted mean P(some receiver misses) -- delivered-to-all.
  double unavailabilityAll = 0.0;
  /// Packet-weighted mean P(fewer than k receivers on time).
  double unavailabilityK = 0.0;
  /// Expected seconds in which not every receiver is served.
  double unavailableAllSeconds = 0.0;
  /// Intervals whose delivered-to-all miss exceeds the threshold.
  std::size_t problematicIntervals = 0;
  /// Mean transmissions per packet on the group graph.
  double averageCost = 0.0;

  std::vector<GroupReceiverResult> receivers;
  std::vector<playback::ProblematicInterval> problems;
};

/// Partial accumulation of one contiguous interval range of a (group,
/// scheme) run; same merge contract as playback::RunPartial (adjacent
/// ranges folded in ascending order reproduce the single-threaded
/// blocked accumulation bit for bit).
struct GroupRunPartial {
  std::vector<util::WeightedMean> receiverMiss;
  std::vector<util::OnlineStats> receiverLatency;
  std::vector<double> receiverUnavailableSeconds;
  std::vector<std::size_t> receiverProblematic;
  util::WeightedMean missAllMean;
  util::WeightedMean missKMean;
  util::OnlineStats costStats;
  double unavailableAllSeconds = 0.0;
  std::size_t problematicIntervals = 0;
  std::vector<playback::ProblematicInterval> problems;

  /// Sizes the per-receiver accumulators (idempotent).
  void resize(std::size_t receiverCount);
  /// Folds a partial covering the range immediately *after* this one.
  void merge(GroupRunPartial&& later);
};

class GroupPlaybackEngine {
 public:
  GroupPlaybackEngine(const graph::Graph& overlay, const trace::Trace& trace,
                      GroupPlaybackParams params);

  /// Replays the whole trace for one group under one scheme. `telemetry`
  /// (nullable) collects per-interval counters and histograms labeled
  /// {group="src->r1+r2", scheme=...} plus GraphSwitch trace events.
  GroupSchemeResult run(const Group& group, GroupSchemeKind kind,
                        const routing::SchemeParams& schemeParams,
                        telemetry::Telemetry* telemetry = nullptr) const;

  /// Replays an interval range [first, last).
  GroupSchemeResult runRange(const Group& group, GroupSchemeKind kind,
                             const routing::SchemeParams& schemeParams,
                             std::size_t first, std::size_t last,
                             telemetry::Telemetry* telemetry = nullptr) const;

  /// Chunk-parallel building block, mirroring
  /// PlaybackEngine::runChunkPartial (warm-up replay over [0, first) with
  /// steady-span jumps, worker-private condition sources, GraphSwitch
  /// continuity). Requires conditionCursor mode.
  GroupRunPartial runChunkPartial(
      const Group& group, GroupSchemeKind kind,
      const routing::SchemeParams& schemeParams, std::size_t first,
      std::size_t last, trace::ConditionSource* decisionSource,
      trace::ConditionSource* truthSource,
      telemetry::Telemetry* telemetry = nullptr) const;

  /// Converts a fully merged partial into the result record.
  GroupSchemeResult finalizePartial(const Group& group, GroupSchemeKind kind,
                                    GroupRunPartial&& total) const;

  const trace::Trace& trace() const { return *trace_; }
  const GroupPlaybackParams& params() const { return params_; }
  const trace::ConditionIndex& conditionIndex() const {
    return conditionIndex_;
  }
  const routing::DecisionMemo& decisionMemo() const { return decisionMemo_; }

 private:
  /// One interval's group evaluation. Hoisted outside the scoring loop
  /// (the vectors keep their capacity across intervals).
  struct GroupIntervalEval {
    std::vector<double> miss;            ///< per receiver
    std::vector<util::SimTime> arrival;  ///< per receiver, kNever = none
    double missAll = 0.0;
    double missK = 0.0;
    double cost = 0.0;
    bool monteCarlo = false;
  };

  struct ScoreSpec {
    GroupScheme* scheme = nullptr;
    const routing::NetworkView* baselineView = nullptr;
    const Group* group = nullptr;
    GroupSchemeKind kind{};
    std::size_t first = 0;
    std::size_t last = 0;
    std::size_t warmupUntil = 0;
    trace::ConditionTimeline* decisionCursor = nullptr;
    trace::ConditionTimeline* truthCursor = nullptr;
    telemetry::Telemetry* telemetry = nullptr;
    bool reuseCleanEvals = true;
    std::vector<graph::EdgeId> lastSelectedEdges;
    bool haveSelected = false;
  };

  GroupSchemeResult runCore(const Group& group, GroupSchemeKind kind,
                            const routing::SchemeParams& schemeParams,
                            std::size_t first, std::size_t last,
                            telemetry::Telemetry* telemetry) const;

  GroupRunPartial scoreIntervals(ScoreSpec& spec) const;

  std::size_t nextDeviatingDecision(std::size_t fromInterval,
                                    std::size_t staleness) const;

  const graph::Graph* overlay_;
  const trace::Trace* trace_;
  GroupPlaybackParams params_;
  trace::ConditionIndex conditionIndex_;
  std::vector<std::size_t> deviatingIntervals_;

  /// Cross-job decision memo shared by the per-receiver sub-schemes
  /// (keyed by their unicast-equivalent contexts). Group runs do not
  /// carry the unicast engine's deterministic-eval memo: group
  /// evaluations are pure functions either way, and the per-receiver
  /// result vectors make the exact-key bookkeeping a poor trade.
  mutable routing::DecisionMemo decisionMemo_;
};

}  // namespace dg::mcast
