// Plain-text report rendering for group (receiver-set) experiments:
// fixed-width tables matching the unicast report idiom, extended with
// delivered-to-all vs delivered-to-k and worst-receiver columns.
#pragma once

#include <string>

#include "mcast/experiment.hpp"
#include "trace/topology.hpp"

namespace dg::mcast {

/// Headline table: one row per group scheme with delivered-to-all and
/// delivered-to-k unavailability, unavailable seconds, problematic
/// intervals, worst per-receiver unavailability and cost.
std::string renderGroupSummaryTable(const GroupExperimentResult& result,
                                    const trace::Trace& trace,
                                    std::size_t groupCount);

/// Per-group matrix (rows: groups, columns: schemes), delivered-to-all
/// unavailability in ppm.
std::string renderPerGroupTable(const GroupExperimentResult& result,
                                const GroupExperimentConfig& config,
                                const trace::Topology& topology);

/// Per-receiver breakdown of one group x scheme cell: receiver, deadline,
/// unavailability, unavailable seconds, problematic intervals, mean
/// latency.
std::string renderReceiverTable(const GroupSchemeResult& result,
                                const trace::Topology& topology);

}  // namespace dg::mcast
