// Telemetry context threaded through the stack.
//
// One Telemetry object bundles the metrics registry, the trace-event log
// and a sim-time clock. Every instrumented layer takes a nullable
// `telemetry::Telemetry*` (null = fully un-instrumented, zero overhead);
// the layer that drives time -- the discrete-event simulator's loop, or
// the playback engine's interval loop -- keeps `now` current so that
// layers without their own clock access (routing schemes, the monitor)
// can stamp trace events with the correct simulation time.
//
// Concurrency follows the experiment runner's model: one Telemetry per
// worker job, merged afterwards in job order, which makes exports
// byte-identical regardless of thread count.
#pragma once

#include "telemetry/metrics.hpp"
#include "telemetry/trace_log.hpp"
#include "util/sim_time.hpp"

namespace dg::telemetry {

struct Telemetry {
  Telemetry() = default;
  explicit Telemetry(std::size_t traceCapacity) : trace(traceCapacity) {}

  MetricsRegistry metrics;
  TraceLog trace;
  /// Current simulation time, maintained by the driving layer. Used as
  /// the timestamp source by recorders that have no clock of their own.
  util::SimTime now = 0;

  void merge(const Telemetry& other) {
    metrics.merge(other.metrics);
    trace.merge(other.trace);
    if (other.now > now) now = other.now;
  }
};

}  // namespace dg::telemetry
