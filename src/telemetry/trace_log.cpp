#include "telemetry/trace_log.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dg::telemetry {

std::string_view traceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::PacketDrop: return "packet-drop";
    case TraceEventKind::QueueDrop: return "queue-drop";
    case TraceEventKind::NackSent: return "nack-sent";
    case TraceEventKind::Retransmission: return "retransmission";
    case TraceEventKind::RecoveredDelivery: return "recovered-delivery";
    case TraceEventKind::LinkStateFlood: return "link-state-flood";
    case TraceEventKind::LinkStateAccepted: return "link-state-accepted";
    case TraceEventKind::IntervalRolled: return "interval-rolled";
    case TraceEventKind::ProblemClassified: return "problem-classified";
    case TraceEventKind::GraphSwitch: return "graph-switch";
    case TraceEventKind::ChaosFaultStart: return "chaos-fault-start";
    case TraceEventKind::ChaosFaultEnd: return "chaos-fault-end";
    case TraceEventKind::InvariantViolation: return "invariant-violation";
    case TraceEventKind::PeerDiscovered: return "peer-discovered";
    case TraceEventKind::PeerDisappeared: return "peer-disappeared";
  }
  return "unknown";
}

TraceLog::TraceLog(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0)
    throw std::invalid_argument("TraceLog: zero capacity");
  events_.reserve(std::min<std::size_t>(capacity, 1024));
}

// dgcheck: cold: event log writes are bounded by decision changes, not interval count
void TraceLog::record(TraceEvent event) {
  ++recorded_;
  if (events_.size() < capacity_) {
    events_.push_back(std::move(event));
    return;
  }
  // Ring full: overwrite the oldest slot.
  events_[head_] = std::move(event);
  head_ = (head_ + 1) % capacity_;
}

// dgcheck: cold: event log writes are bounded by decision changes, not interval count
void TraceLog::record(util::SimTime time, TraceEventKind kind,
                      std::int64_t flow, std::int64_t node,
                      std::int64_t edge, double value, std::string detail) {
  record(TraceEvent{time, kind, flow, node, edge, value, std::move(detail)});
}

std::vector<TraceEvent> TraceLog::events() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(head_ + i) % events_.size()]);
  }
  return out;
}

std::vector<TraceEvent> TraceLog::eventsOfKind(TraceEventKind kind) const {
  std::vector<TraceEvent> out;
  for (TraceEvent& event : events()) {
    if (event.kind == kind) out.push_back(std::move(event));
  }
  return out;
}

void TraceLog::merge(const TraceLog& other) {
  const std::uint64_t previouslyLost = dropped() + other.dropped();
  std::vector<TraceEvent> merged = events();
  std::vector<TraceEvent> theirs = other.events();
  merged.insert(merged.end(), std::make_move_iterator(theirs.begin()),
                std::make_move_iterator(theirs.end()));
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.time < b.time;
                   });
  // Replay into a fresh ring so capacity semantics (keep newest) hold.
  events_.clear();
  head_ = 0;
  recorded_ = 0;
  for (TraceEvent& event : merged) record(std::move(event));
  recorded_ += previouslyLost;
}

}  // namespace dg::telemetry
