// Cross-layer metrics registry.
//
// A MetricsRegistry is a flat namespace of named instruments -- counters,
// gauges, histograms (util::Histogram) and summaries (util::OnlineStats)
// -- each optionally qualified by a sorted label set such as
// {flow="0->9", scheme="targeted"}. The registry is designed for the
// discrete-event hot path: instrument handles are resolved once (a map
// lookup) and then held as plain references whose update is a single
// add/compare, so an instrumented layer with a null registry pointer or a
// cached handle costs nothing measurable.
//
// Registries are single-threaded by design (like the rest of the
// library); concurrency is handled the same way the experiment runner
// handles it -- one registry per worker job, merged afterwards in job
// order. merge() is deterministic given a fixed merge order, which makes
// exports byte-identical regardless of worker-thread count.
//
// Naming convention (see DESIGN.md "Telemetry & observability"):
//   dg_<layer>_<what>[_total]   e.g. dg_net_link_drops_total
// with label keys drawn from {flow, node, edge, scheme, class}.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/stats.hpp"

namespace dg::telemetry {

/// A metric's label set: (key, value) pairs, kept sorted by key.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Returns `labels` sorted by key (the registry's canonical order).
Labels normalizedLabels(Labels labels);

/// Canonical sample key as rendered by the Prometheus exporter, e.g.
/// `dg_net_link_drops_total{edge="3"}`. Exposed so tests can address
/// samples the same way external scrapers do.
std::string sampleKey(std::string_view name, const Labels& labels);

/// Shortest round-trippable decimal rendering of a double
/// (std::to_chars): locale-independent and deterministic, so exports are
/// byte-comparable and parse back to the exact value.
std::string formatDouble(double value);

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-set instantaneous value. Gauges merge by taking the maximum,
/// which is the only order-independent choice that keeps "high-water
/// mark" semantics (the registry's main gauge use) meaningful.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  /// Raises the gauge to `v` if larger (high-water-mark update).
  void high(double v) {
    if (v > value_) value_ = v;
  }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket distribution (util::Histogram) plus an exact sum.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t buckets)
      : histogram_(lo, hi, buckets) {}

  void observe(double x) {
    histogram_.add(x);
    sum_ += x;
  }

  void mergeFrom(const HistogramMetric& other) {
    histogram_.merge(other.histogram_);
    sum_ += other.sum_;
  }

  const util::Histogram& histogram() const { return histogram_; }
  double sum() const { return sum_; }
  std::uint64_t count() const { return histogram_.total(); }

 private:
  util::Histogram histogram_;
  double sum_ = 0.0;
};

/// Streaming count/sum/min/max/mean (util::OnlineStats).
class SummaryMetric {
 public:
  void observe(double x) { stats_.add(x); }
  void mergeFrom(const SummaryMetric& other) { stats_.merge(other.stats_); }
  const util::OnlineStats& stats() const { return stats_; }

 private:
  util::OnlineStats stats_;
};

class MetricsRegistry {
 public:
  /// A metric's identity: name plus normalized labels. Ordered, so every
  /// export iterates in one deterministic order.
  struct Key {
    std::string name;
    Labels labels;
    bool operator<(const Key& other) const {
      if (name != other.name) return name < other.name;
      return labels < other.labels;
    }
  };

  // Find-or-create. Returned references stay valid for the registry's
  // lifetime (instruments are heap-allocated and never removed), so hot
  // paths resolve a handle once and update through it.
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  /// Histograms with the same key must agree on geometry (throws
  /// std::invalid_argument otherwise; merging would be meaningless).
  HistogramMetric& histogram(std::string_view name, double lo, double hi,
                             std::size_t buckets, Labels labels = {});
  SummaryMetric& summary(std::string_view name, Labels labels = {});

  /// Folds `other` into this registry: counters, histogram buckets and
  /// summaries add; gauges keep the maximum. Deterministic for any fixed
  /// sequence of merges (the experiment runner merges per-job registries
  /// in job order, making results independent of worker-thread count).
  void merge(const MetricsRegistry& other);

  // Lookup without creation (0 / nullptr when absent) -- for tests and
  // report code that asserts on instrumented values.
  std::uint64_t counterValue(std::string_view name,
                             const Labels& labels = {}) const;
  const Counter* findCounter(std::string_view name,
                             const Labels& labels = {}) const;
  const Gauge* findGauge(std::string_view name,
                         const Labels& labels = {}) const;
  const HistogramMetric* findHistogram(std::string_view name,
                                       const Labels& labels = {}) const;
  const SummaryMetric* findSummary(std::string_view name,
                                   const Labels& labels = {}) const;

  /// Every exported sample as (sampleKey, value), in export order: the
  /// exact flattening the Prometheus exporter renders, which is what the
  /// round-trip tests compare against.
  std::vector<std::pair<std::string, double>> samples() const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty() &&
           summaries_.empty();
  }

  // Sorted instrument maps, for the exporters.
  const std::map<Key, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<Key, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<Key, std::unique_ptr<HistogramMetric>>& histograms() const {
    return histograms_;
  }
  const std::map<Key, std::unique_ptr<SummaryMetric>>& summaries() const {
    return summaries_;
  }

 private:
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<HistogramMetric>> histograms_;
  std::map<Key, std::unique_ptr<SummaryMetric>> summaries_;
};

}  // namespace dg::telemetry
