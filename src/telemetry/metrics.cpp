#include "telemetry/metrics.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <stdexcept>

namespace dg::telemetry {

std::string formatDouble(double value) {
  std::array<char, 64> buffer;
  const auto [end, ec] =
      std::to_chars(buffer.data(), buffer.data() + buffer.size(), value);
  if (ec != std::errc()) return "0";
  return std::string(buffer.data(), end);
}

Labels normalizedLabels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string sampleKey(std::string_view name, const Labels& labels) {
  std::string key(name);
  if (labels.empty()) return key;
  key += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) key += ',';
    first = false;
    key += k;
    key += "=\"";
    key += v;
    key += '"';
  }
  key += '}';
  return key;
}

namespace {

template <typename T, typename Factory>
T& findOrCreate(std::map<MetricsRegistry::Key, std::unique_ptr<T>>& metrics,
                std::string_view name, Labels labels, Factory factory) {
  MetricsRegistry::Key key{std::string(name),
                           normalizedLabels(std::move(labels))};
  auto it = metrics.find(key);
  if (it == metrics.end()) {
    it = metrics.emplace(std::move(key), factory()).first;
  }
  return *it->second;
}

template <typename T>
const T* findExisting(
    const std::map<MetricsRegistry::Key, std::unique_ptr<T>>& metrics,
    std::string_view name, const Labels& labels) {
  const MetricsRegistry::Key key{std::string(name),
                                 normalizedLabels(labels)};
  const auto it = metrics.find(key);
  return it == metrics.end() ? nullptr : it->second.get();
}

}  // namespace

// dgcheck: cold: metric registration; resolved once per series at range start, steady-state updates go through the returned handle
Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  return findOrCreate(counters_, name, std::move(labels),
                      [] { return std::make_unique<Counter>(); });
}

// dgcheck: cold: metric registration; resolved once per series at range start, steady-state updates go through the returned handle
Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  return findOrCreate(gauges_, name, std::move(labels),
                      [] { return std::make_unique<Gauge>(); });
}

// dgcheck: cold: metric registration; resolved once per series at range start, steady-state updates go through the returned handle
HistogramMetric& MetricsRegistry::histogram(std::string_view name, double lo,
                                            double hi, std::size_t buckets,
                                            Labels labels) {
  HistogramMetric& metric =
      findOrCreate(histograms_, name, std::move(labels), [&] {
        return std::make_unique<HistogramMetric>(lo, hi, buckets);
      });
  if (metric.histogram().bucketCount() != buckets ||
      metric.histogram().bucketLow(0) != lo ||
      metric.histogram().bucketLow(buckets) != hi) {
    throw std::invalid_argument("MetricsRegistry: histogram '" +
                                std::string(name) +
                                "' re-registered with different geometry");
  }
  return metric;
}

SummaryMetric& MetricsRegistry::summary(std::string_view name,
                                        Labels labels) {
  return findOrCreate(summaries_, name, std::move(labels),
                      [] { return std::make_unique<SummaryMetric>(); });
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [key, metric] : other.counters_) {
    counter(key.name, key.labels).inc(metric->value());
  }
  for (const auto& [key, metric] : other.gauges_) {
    gauge(key.name, key.labels).high(metric->value());
  }
  for (const auto& [key, metric] : other.histograms_) {
    const util::Histogram& source = metric->histogram();
    HistogramMetric& target = findOrCreate(histograms_, key.name,
                                           key.labels, [&] {
                                             return std::make_unique<
                                                 HistogramMetric>(
                                                 source.bucketLow(0),
                                                 source.bucketLow(
                                                     source.bucketCount()),
                                                 source.bucketCount());
                                           });
    target.mergeFrom(*metric);
  }
  for (const auto& [key, metric] : other.summaries_) {
    summary(key.name, key.labels).mergeFrom(*metric);
  }
}

std::uint64_t MetricsRegistry::counterValue(std::string_view name,
                                            const Labels& labels) const {
  const Counter* metric = findCounter(name, labels);
  return metric ? metric->value() : 0;
}

const Counter* MetricsRegistry::findCounter(std::string_view name,
                                            const Labels& labels) const {
  return findExisting(counters_, name, labels);
}

const Gauge* MetricsRegistry::findGauge(std::string_view name,
                                        const Labels& labels) const {
  return findExisting(gauges_, name, labels);
}

const HistogramMetric* MetricsRegistry::findHistogram(
    std::string_view name, const Labels& labels) const {
  return findExisting(histograms_, name, labels);
}

const SummaryMetric* MetricsRegistry::findSummary(std::string_view name,
                                                  const Labels& labels) const {
  return findExisting(summaries_, name, labels);
}

std::vector<std::pair<std::string, double>> MetricsRegistry::samples() const {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [key, metric] : counters_) {
    out.emplace_back(sampleKey(key.name, key.labels),
                     static_cast<double>(metric->value()));
  }
  for (const auto& [key, metric] : gauges_) {
    out.emplace_back(sampleKey(key.name, key.labels), metric->value());
  }
  for (const auto& [key, metric] : histograms_) {
    const util::Histogram& h = metric->histogram();
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.bucketCount(); ++b) {
      cumulative += h.bucketValue(b);
      // Buckets are cumulative (Prometheus convention); out-of-range
      // samples are clamped into the edge buckets, so the last bucket is
      // effectively +Inf-bounded.
      Labels labels = normalizedLabels([&] {
        Labels l = key.labels;
        l.emplace_back("le", b + 1 < h.bucketCount()
                                 ? formatDouble(h.bucketLow(b + 1))
                                 : std::string("+Inf"));
        return l;
      }());
      out.emplace_back(sampleKey(key.name + "_bucket", labels),
                       static_cast<double>(cumulative));
    }
    out.emplace_back(sampleKey(key.name + "_sum", key.labels),
                     metric->sum());
    out.emplace_back(sampleKey(key.name + "_count", key.labels),
                     static_cast<double>(metric->count()));
  }
  for (const auto& [key, metric] : summaries_) {
    const util::OnlineStats& s = metric->stats();
    out.emplace_back(sampleKey(key.name + "_count", key.labels),
                     static_cast<double>(s.count()));
    out.emplace_back(sampleKey(key.name + "_sum", key.labels), s.sum());
    out.emplace_back(sampleKey(key.name + "_min", key.labels), s.min());
    out.emplace_back(sampleKey(key.name + "_max", key.labels), s.max());
  }
  return out;
}

}  // namespace dg::telemetry
