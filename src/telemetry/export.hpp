// Telemetry exporters: Prometheus exposition text, JSON and CSV for the
// metrics registry, JSON for the trace-event log, plus a minimal
// Prometheus text parser used by round-trip tests and tooling.
//
// All renderings are deterministic: metrics iterate in registry key
// order, doubles use shortest round-trip formatting (std::to_chars), and
// nothing wall-clock-dependent is ever emitted -- identical runs produce
// byte-identical files.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "telemetry/metrics.hpp"
#include "telemetry/trace_log.hpp"

namespace dg::telemetry {

/// Prometheus exposition format: `# TYPE` headers plus one sample per
/// line. Histograms render cumulative `_bucket{le=...}` series with
/// `_sum`/`_count`; summaries render `_count`/`_sum`/`_min`/`_max`.
std::string toPrometheus(const MetricsRegistry& registry);

/// JSON object with "counters" / "gauges" / "histograms" / "summaries"
/// arrays, each entry carrying name, labels and values.
std::string toJson(const MetricsRegistry& registry);

/// CSV with header `type,name,labels,sample,value`; labels rendered as
/// `k=v;k=v`.
std::string toCsv(const MetricsRegistry& registry);

/// JSON array of trace events (time in sim-time microseconds), oldest
/// first, wrapped with recorded/dropped totals.
std::string toJson(const TraceLog& log);

/// Parses Prometheus exposition text back into a sampleKey -> value map
/// (comments and blank lines ignored; histogram buckets appear as their
/// `_bucket{...,le="..."}` samples, cumulative exactly as exported).
/// Throws std::runtime_error on malformed lines.
std::map<std::string, double> parsePrometheus(std::string_view text);

}  // namespace dg::telemetry
