#include "telemetry/export.hpp"

#include <charconv>
#include <cstdint>
#include <stdexcept>

namespace dg::telemetry {

namespace {

/// Escapes `"` and `\` (and newlines) for JSON string literals and
/// Prometheus label values; metric/label text never needs more.
std::string escaped(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string labelsJson(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += '"' + escaped(k) + "\":\"" + escaped(v) + '"';
  }
  out += '}';
  return out;
}

std::string labelsCsv(const Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ';';
    out += k + '=' + v;
  }
  return out;
}

void typeHeader(std::string& out, const std::string& name,
                std::string_view type, std::string& lastTyped) {
  if (name == lastTyped) return;
  lastTyped = name;
  out += "# TYPE " + name + ' ' + std::string(type) + '\n';
}

}  // namespace

std::string toPrometheus(const MetricsRegistry& registry) {
  std::string out;
  std::string lastTyped;
  for (const auto& [key, metric] : registry.counters()) {
    typeHeader(out, key.name, "counter", lastTyped);
    out += sampleKey(key.name, key.labels) + ' ' +
           std::to_string(metric->value()) + '\n';
  }
  for (const auto& [key, metric] : registry.gauges()) {
    typeHeader(out, key.name, "gauge", lastTyped);
    out += sampleKey(key.name, key.labels) + ' ' +
           formatDouble(metric->value()) + '\n';
  }
  for (const auto& [key, metric] : registry.histograms()) {
    typeHeader(out, key.name, "histogram", lastTyped);
    const util::Histogram& h = metric->histogram();
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.bucketCount(); ++b) {
      cumulative += h.bucketValue(b);
      Labels labels = normalizedLabels([&] {
        Labels l = key.labels;
        l.emplace_back("le", b + 1 < h.bucketCount()
                                 ? formatDouble(h.bucketLow(b + 1))
                                 : std::string("+Inf"));
        return l;
      }());
      out += sampleKey(key.name + "_bucket", labels) + ' ' +
             std::to_string(cumulative) + '\n';
    }
    out += sampleKey(key.name + "_sum", key.labels) + ' ' +
           formatDouble(metric->sum()) + '\n';
    out += sampleKey(key.name + "_count", key.labels) + ' ' +
           std::to_string(metric->count()) + '\n';
  }
  for (const auto& [key, metric] : registry.summaries()) {
    typeHeader(out, key.name, "summary", lastTyped);
    const util::OnlineStats& s = metric->stats();
    out += sampleKey(key.name + "_count", key.labels) + ' ' +
           std::to_string(s.count()) + '\n';
    out += sampleKey(key.name + "_sum", key.labels) + ' ' +
           formatDouble(s.sum()) + '\n';
    out += sampleKey(key.name + "_min", key.labels) + ' ' +
           formatDouble(s.min()) + '\n';
    out += sampleKey(key.name + "_max", key.labels) + ' ' +
           formatDouble(s.max()) + '\n';
  }
  return out;
}

std::string toJson(const MetricsRegistry& registry) {
  std::string out = "{\n  \"counters\": [";
  bool first = true;
  for (const auto& [key, metric] : registry.counters()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\":\"" + escaped(key.name) +
           "\",\"labels\":" + labelsJson(key.labels) +
           ",\"value\":" + std::to_string(metric->value()) + '}';
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"gauges\": [";
  first = true;
  for (const auto& [key, metric] : registry.gauges()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\":\"" + escaped(key.name) +
           "\",\"labels\":" + labelsJson(key.labels) +
           ",\"value\":" + formatDouble(metric->value()) + '}';
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"histograms\": [";
  first = true;
  for (const auto& [key, metric] : registry.histograms()) {
    out += first ? "\n" : ",\n";
    first = false;
    const util::Histogram& h = metric->histogram();
    out += "    {\"name\":\"" + escaped(key.name) +
           "\",\"labels\":" + labelsJson(key.labels) +
           ",\"lo\":" + formatDouble(h.bucketLow(0)) +
           ",\"hi\":" + formatDouble(h.bucketLow(h.bucketCount())) +
           ",\"buckets\":[";
    for (std::size_t b = 0; b < h.bucketCount(); ++b) {
      if (b > 0) out += ',';
      out += std::to_string(h.bucketValue(b));
    }
    out += "],\"sum\":" + formatDouble(metric->sum()) +
           ",\"count\":" + std::to_string(metric->count()) + '}';
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"summaries\": [";
  first = true;
  for (const auto& [key, metric] : registry.summaries()) {
    out += first ? "\n" : ",\n";
    first = false;
    const util::OnlineStats& s = metric->stats();
    out += "    {\"name\":\"" + escaped(key.name) +
           "\",\"labels\":" + labelsJson(key.labels) +
           ",\"count\":" + std::to_string(s.count()) +
           ",\"sum\":" + formatDouble(s.sum()) +
           ",\"min\":" + formatDouble(s.min()) +
           ",\"max\":" + formatDouble(s.max()) +
           ",\"mean\":" + formatDouble(s.mean()) + '}';
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string toCsv(const MetricsRegistry& registry) {
  std::string out = "type,name,labels,sample,value\n";
  for (const auto& [key, metric] : registry.counters()) {
    out += "counter," + key.name + ',' + labelsCsv(key.labels) + ",value," +
           std::to_string(metric->value()) + '\n';
  }
  for (const auto& [key, metric] : registry.gauges()) {
    out += "gauge," + key.name + ',' + labelsCsv(key.labels) + ",value," +
           formatDouble(metric->value()) + '\n';
  }
  for (const auto& [key, metric] : registry.histograms()) {
    const util::Histogram& h = metric->histogram();
    for (std::size_t b = 0; b < h.bucketCount(); ++b) {
      out += "histogram," + key.name + ',' + labelsCsv(key.labels) +
             ",le=" +
             (b + 1 < h.bucketCount() ? formatDouble(h.bucketLow(b + 1))
                                      : std::string("+Inf")) +
             ',' + std::to_string(h.bucketValue(b)) + '\n';
    }
    out += "histogram," + key.name + ',' + labelsCsv(key.labels) + ",sum," +
           formatDouble(metric->sum()) + '\n';
    out += "histogram," + key.name + ',' + labelsCsv(key.labels) +
           ",count," + std::to_string(metric->count()) + '\n';
  }
  for (const auto& [key, metric] : registry.summaries()) {
    const util::OnlineStats& s = metric->stats();
    out += "summary," + key.name + ',' + labelsCsv(key.labels) + ",count," +
           std::to_string(s.count()) + '\n';
    out += "summary," + key.name + ',' + labelsCsv(key.labels) + ",sum," +
           formatDouble(s.sum()) + '\n';
    out += "summary," + key.name + ',' + labelsCsv(key.labels) + ",min," +
           formatDouble(s.min()) + '\n';
    out += "summary," + key.name + ',' + labelsCsv(key.labels) + ",max," +
           formatDouble(s.max()) + '\n';
  }
  return out;
}

std::string toJson(const TraceLog& log) {
  std::string out = "{\n  \"recorded\": " + std::to_string(log.recorded()) +
                    ",\n  \"dropped\": " + std::to_string(log.dropped()) +
                    ",\n  \"time_base\": \"" + escaped(log.timeBase()) +
                    "\",\n  \"events\": [";
  bool first = true;
  for (const TraceEvent& event : log.events()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"time_us\":" + std::to_string(event.time) +
           ",\"kind\":\"" + std::string(traceEventKindName(event.kind)) +
           "\",\"flow\":" + std::to_string(event.flow) +
           ",\"node\":" + std::to_string(event.node) +
           ",\"edge\":" + std::to_string(event.edge) +
           ",\"value\":" + formatDouble(event.value) + ",\"detail\":\"" +
           escaped(event.detail) + "\"}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::map<std::string, double> parsePrometheus(std::string_view text) {
  std::map<std::string, double> samples;
  std::size_t lineStart = 0;
  int lineNumber = 0;
  while (lineStart <= text.size()) {
    std::size_t lineEnd = text.find('\n', lineStart);
    if (lineEnd == std::string_view::npos) lineEnd = text.size();
    const std::string_view line =
        text.substr(lineStart, lineEnd - lineStart);
    lineStart = lineEnd + 1;
    ++lineNumber;
    if (line.empty() || line.front() == '#') continue;
    // Split on the last space: label values may not contain spaces in our
    // exports, but keys may contain `{...}` so search from the end.
    const std::size_t space = line.rfind(' ');
    if (space == std::string_view::npos || space + 1 >= line.size()) {
      throw std::runtime_error("parsePrometheus: malformed line " +
                               std::to_string(lineNumber));
    }
    const std::string_view value = line.substr(space + 1);
    double parsed = 0.0;
    const auto [end, ec] =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (ec != std::errc() || end != value.data() + value.size()) {
      throw std::runtime_error("parsePrometheus: bad value on line " +
                               std::to_string(lineNumber));
    }
    samples[std::string(line.substr(0, space))] = parsed;
  }
  return samples;
}

}  // namespace dg::telemetry
