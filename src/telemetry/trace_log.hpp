// Sim-time structured event log.
//
// A bounded ring buffer of TraceEvents -- packet drops, NACK recoveries,
// link-state floods, problem-detector classifications, dissemination-
// graph switches -- each stamped with the *simulation* time it occurred
// at (never wall clock, so identical runs produce identical logs). The
// one exception is the live overlay daemon, whose events genuinely
// happen in wall time: it tags its log with timeBase "wall" so exports
// declare which timeline the stamps live on (default "sim"). When
// the buffer is full the oldest events are overwritten; recorded() and
// dropped() expose how much history was lost, so tests and reports can
// tell a quiet run from a truncated one.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/sim_time.hpp"

namespace dg::telemetry {

enum class TraceEventKind : std::uint8_t {
  PacketDrop,         ///< a link dropped a packet (loss draw)
  QueueDrop,          ///< a link's capacity queue overflowed (drop-tail)
  NackSent,           ///< a node requested missing sequences (value = #seqs)
  Retransmission,     ///< a node answered a NACK from its send buffer
  RecoveredDelivery,  ///< a retransmitted copy reached the destination first
  LinkStateFlood,     ///< a node flooded its link-state update (value = epoch)
  LinkStateAccepted,  ///< a node merged a newer remote link-state update
  IntervalRolled,     ///< the monitor closed a measurement interval
  ProblemClassified,  ///< the detector's classification changed (detail =
                      ///< "source" / "destination" / "middle" / ... / "none")
  GraphSwitch,        ///< a flow's dissemination graph changed
  ChaosFaultStart,    ///< a chaos fault began impairing (detail = kind)
  ChaosFaultEnd,      ///< a chaos fault stopped impairing (detail = kind)
  InvariantViolation, ///< a chaos invariant check failed (detail = which)
  PeerDiscovered,     ///< live membership: a peer became alive (value = peer)
  PeerDisappeared,    ///< live membership: a peer left/timed out (value = peer)
};

/// Canonical lowercase-kebab name ("packet-drop", "graph-switch", ...).
std::string_view traceEventKindName(TraceEventKind kind);

struct TraceEvent {
  util::SimTime time = 0;  ///< simulation time, microseconds
  TraceEventKind kind = TraceEventKind::PacketDrop;
  // Entity ids; -1 = not applicable.
  std::int64_t flow = -1;
  std::int64_t node = -1;
  std::int64_t edge = -1;
  /// Kind-specific magnitude (e.g. NACKed sequence count, epoch).
  double value = 0.0;
  /// Short kind-specific annotation (e.g. classification, scheme name).
  std::string detail;
};

class TraceLog {
 public:
  explicit TraceLog(std::size_t capacity = 65536);

  void record(TraceEvent event);
  void record(util::SimTime time, TraceEventKind kind, std::int64_t flow,
              std::int64_t node, std::int64_t edge, double value = 0.0,
              std::string detail = {});

  /// Which timeline event stamps live on: "sim" (default, simulation
  /// microseconds) or "wall" (the live daemon's soak-relative wall
  /// microseconds). Surfaced as "time_base" by the JSON exporter.
  const std::string& timeBase() const { return timeBase_; }
  void setTimeBase(std::string base) { timeBase_ = std::move(base); }

  std::size_t capacity() const { return capacity_; }
  /// Events currently retained (<= capacity).
  std::size_t size() const { return events_.size(); }
  /// Events ever recorded, including overwritten ones.
  std::uint64_t recorded() const { return recorded_; }
  /// Events lost to ring overflow.
  std::uint64_t dropped() const {
    return recorded_ - static_cast<std::uint64_t>(events_.size());
  }

  /// Retained events, oldest first.
  std::vector<TraceEvent> events() const;
  /// Retained events of one kind, oldest first.
  std::vector<TraceEvent> eventsOfKind(TraceEventKind kind) const;

  /// Folds another log into this one: the union of retained events is
  /// re-ordered by time (stable, so same-time events keep merge order)
  /// and re-subjected to this log's capacity. Merging per-worker logs in
  /// job order therefore yields the same log for any thread count.
  void merge(const TraceLog& other);

 private:
  std::size_t capacity_;
  std::string timeBase_ = "sim";
  std::size_t head_ = 0;  ///< next write position once the ring is full
  std::uint64_t recorded_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace dg::telemetry
