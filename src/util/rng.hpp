// Deterministic, seedable random number generation.
//
// The whole evaluation pipeline (synthetic traces, Monte-Carlo playback,
// packet-level loss sampling) must be reproducible from a single seed, so
// we use our own small xoshiro256** implementation rather than the
// unspecified distributions of <random>.  All derived draws (uniform,
// bernoulli, exponential, lognormal, ...) are implemented here with fixed
// algorithms so results are identical across standard libraries.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace dg::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// algorithm), seeded via splitmix64 so that any 64-bit seed produces a
/// well-mixed initial state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 stream to fill the state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Fills out[0..n) with the next n raw 64-bit draws. Produces exactly
  /// the sequence n consecutive next() calls would -- the batched
  /// Monte-Carlo evaluator relies on this to stay draw-for-draw
  /// identical to the scalar reference -- but keeps the generator state
  /// in locals for the duration of the fill so the compiler can hold it
  /// in registers across the loop.
  void nextBlock(std::uint64_t* out, std::size_t n) {
    std::uint64_t s0 = state_[0];
    std::uint64_t s1 = state_[1];
    std::uint64_t s2 = state_[2];
    std::uint64_t s3 = state_[3];
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = rotl(s1 * 5, 7) * 9;
      const std::uint64_t t = s1 << 17;
      s2 ^= s0;
      s3 ^= s1;
      s1 ^= s2;
      s0 ^= s3;
      s2 ^= t;
      s3 = rotl(s3, 45);
    }
    state_[0] = s0;
    state_[1] = s1;
    state_[2] = s2;
    state_[3] = s3;
  }

  /// Uniform double in [0, 1): uses the top 53 bits.
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0. Uses rejection to avoid
  /// modulo bias.
  std::uint64_t uniformInt(std::uint64_t n) {
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniformInt(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Exponential with the given mean (= 1/rate).
  double exponential(double mean) {
    // 1 - uniform() is in (0, 1], keeping log() finite.
    return -mean * std::log(1.0 - uniform());
  }

  /// Standard normal via Box–Muller (one value per call; simple and
  /// deterministic, throughput is not a concern here).
  double normal() {
    const double u1 = 1.0 - uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Lognormal parameterised by the *median* and the sigma of the
  /// underlying normal; convenient for heavy-tailed event durations.
  double lognormalMedian(double median, double sigma) {
    return median * std::exp(sigma * normal());
  }

  /// Pareto (type I) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) {
    return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
  }

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Weights need not be normalised; all must be >= 0 with positive sum.
  template <typename Container>
  std::size_t weightedIndex(const Container& weights) {
    double total = 0;
    for (const double w : weights) total += w;
    double x = uniform() * total;
    std::size_t i = 0;
    const std::size_t n = weights.size();
    for (const double w : weights) {
      if (x < w || i + 1 == n) return i;
      x -= w;
      ++i;
    }
    return n - 1;
  }

  /// Derives an independent child generator; used to give each link /
  /// flow / experiment its own stream from one master seed.
  Rng fork() { return Rng(next() ^ 0xA3EC647659359ACDULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace dg::util
