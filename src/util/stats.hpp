// Streaming statistics, histograms and empirical CDFs used by the
// metrics, playback and reporting layers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dg::util {

/// Numerically stable streaming mean/variance/min/max (Welford).
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-width linear histogram over [lo, hi); out-of-range samples are
/// clamped into the first/last bucket so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x, std::uint64_t weight = 1);

  /// Bucket-wise accumulation of another histogram with identical
  /// geometry (throws std::invalid_argument otherwise). Associative and
  /// exact (integer bucket counts), so merged results are independent of
  /// merge grouping.
  void merge(const Histogram& other);

  std::size_t bucketCount() const { return counts_.size(); }
  std::uint64_t bucketValue(std::size_t i) const { return counts_.at(i); }
  /// Inclusive lower edge of bucket i.
  double bucketLow(std::size_t i) const;
  std::uint64_t total() const { return total_; }

  /// Approximate quantile (q in [0,1]) by linear interpolation within the
  /// containing bucket. Returns lo for an empty histogram.
  double quantile(double q) const;

  /// One line per non-empty bucket: "lo..hi count", for reports.
  std::string toString() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Exact empirical CDF built from stored samples. Suitable for the
/// per-flow distributions in the evaluation (hundreds of points), not for
/// per-packet data (use Histogram there).
class EmpiricalCdf {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }  // dgcheck: ok(R5): exact quantiles require retaining samples; growth is amortized O(1)
  std::size_t count() const { return samples_.size(); }

  /// Exact quantile q in [0,1] (nearest-rank with interpolation).
  double quantile(double q) const;
  /// Fraction of samples <= x.
  double fractionAtOrBelow(double x) const;

  /// Evaluates the CDF at `points` evenly spaced quantiles, returning
  /// (value, cumulative fraction) pairs for plotting.
  std::vector<std::pair<double, double>> curve(std::size_t points) const;

  const std::vector<double>& sortedSamples() const;

 private:
  void ensureSorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Weighted mean accumulator (e.g. unavailability weighted by interval
/// packet counts).
class WeightedMean {
 public:
  void add(double value, double weight);
  /// Folds another accumulator in by summing the partial numerator and
  /// denominator. Deterministic, but the *grouping* (unlike with integer
  /// counters) affects the final bits -- callers that need bit-stable
  /// results must merge partials at fixed boundaries in a fixed order
  /// (see the playback engine's blocked accumulation).
  void merge(const WeightedMean& other) {
    sum_ += other.sum_;
    weight_ += other.weight_;
  }
  double mean() const { return weight_ > 0 ? sum_ / weight_ : 0.0; }
  double totalWeight() const { return weight_; }

 private:
  double sum_ = 0.0;
  double weight_ = 0.0;
};

}  // namespace dg::util
