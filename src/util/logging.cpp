#include "util/logging.hpp"

#include <algorithm>
#include <cctype>
#include <iostream>

namespace dg::util {

std::string_view logLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "trace";
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "info";
}

LogLevel parseLogLevel(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "trace") return LogLevel::Trace;
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return LogLevel::Info;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::setSink(std::ostream* sink) { sink_ = sink; }

void Logger::write(LogLevel level, std::string_view file, int line,
                   std::string_view message) {
  if (!enabled(level)) return;
  std::ostream& out = sink_ != nullptr ? *sink_ : std::clog;
  // Keep only the basename of the file for compact records.
  const auto slash = file.find_last_of('/');
  if (slash != std::string_view::npos) file.remove_prefix(slash + 1);
  out << '[' << logLevelName(level) << "] " << file << ':' << line << ": "
      << message << '\n';
}

}  // namespace dg::util
