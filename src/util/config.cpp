#include "util/config.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace dg::util {

Config Config::fromString(std::string_view text) {
  Config config;
  std::size_t lineNo = 0;
  for (const auto& rawLine : split(text, '\n')) {
    ++lineNo;
    const std::string_view line = trim(rawLine);
    if (line.empty() || line.front() == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error("Config: missing '=' on line " +
                               std::to_string(lineNo));
    }
    const std::string key{trim(line.substr(0, eq))};
    const std::string value{trim(line.substr(eq + 1))};
    if (key.empty()) {
      throw std::runtime_error("Config: empty key on line " +
                               std::to_string(lineNo));
    }
    config.values_[key] = value;
  }
  return config;
}

Config Config::fromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Config: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return fromString(buffer.str());
}

void Config::applyArgs(int argc, const char* const argv[],
                       std::vector<std::string>* positional) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!startsWith(arg, "--")) {
      if (positional != nullptr) positional->emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(body)] = "true";
    } else {
      values_[std::string(body.substr(0, eq))] =
          std::string(body.substr(eq + 1));
    }
  }
}

void Config::set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

bool Config::has(std::string_view key) const {
  return values_.find(key) != values_.end();
}

std::string Config::getString(std::string_view key,
                              std::string_view fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? std::string(fallback) : it->second;
}

double Config::getDouble(std::string_view key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  double out = 0;
  if (!parseDouble(it->second, out)) {
    throw std::runtime_error("Config: key '" + std::string(key) +
                             "' is not a number: " + it->second);
  }
  return out;
}

std::int64_t Config::getInt(std::string_view key,
                            std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::int64_t out = 0;
  if (!parseInt64(it->second, out)) {
    throw std::runtime_error("Config: key '" + std::string(key) +
                             "' is not an integer: " + it->second);
  }
  return out;
}

bool Config::getBool(std::string_view key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string lower = toLower(it->second);
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on")
    return true;
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off")
    return false;
  throw std::runtime_error("Config: key '" + std::string(key) +
                           "' is not a boolean: " + it->second);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

std::string Config::toString() const {
  std::ostringstream out;
  for (const auto& [key, value] : values_) out << key << " = " << value << '\n';
  return out.str();
}

}  // namespace dg::util
