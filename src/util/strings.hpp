// Small string helpers shared across modules (parsing topology/trace
// files, rendering report tables).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dg::util {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char sep);

/// Splits on arbitrary whitespace runs; empty fields are dropped.
std::vector<std::string> splitWhitespace(std::string_view text);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

bool startsWith(std::string_view text, std::string_view prefix);

std::string toLower(std::string_view text);

/// Parses helpers returning false on malformed input instead of throwing,
/// for use in file parsers that want to report line numbers.
bool parseDouble(std::string_view text, double& out);
bool parseInt64(std::string_view text, std::int64_t& out);

/// Formats a double with fixed precision (report tables).
std::string formatFixed(double value, int decimals);

/// Formats a 64-bit value as "0x" + 16 lowercase hex digits (content
/// fingerprints, cache keys).
std::string formatHex64(std::uint64_t value);

/// Formats a fraction as a percentage string, e.g. 0.9912 -> "99.12%".
std::string formatPercent(double fraction, int decimals = 2);

/// Left-pads / right-pads to a column width with spaces.
std::string padLeft(std::string_view text, std::size_t width);
std::string padRight(std::string_view text, std::size_t width);

}  // namespace dg::util
