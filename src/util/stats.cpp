#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace dg::util {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi) {
  if (buckets == 0) throw std::invalid_argument("Histogram: zero buckets");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
  counts_.assign(buckets, 0);
  width_ = (hi - lo) / static_cast<double>(buckets);
}

void Histogram::add(double x, std::uint64_t weight) {
  std::ptrdiff_t idx =
      static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width_));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.counts_.size() != counts_.size()) {
    throw std::invalid_argument("Histogram::merge: geometry mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double Histogram::bucketLow(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double within =
          (target - cumulative) / static_cast<double>(counts_[i]);
      return bucketLow(i) + within * width_;
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::toString() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    out << bucketLow(i) << ".." << (bucketLow(i) + width_) << ' '
        << counts_[i] << '\n';
  }
  return out.str();
}

void EmpiricalCdf::ensureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  if (lo == hi) return samples_[lo];
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double EmpiricalCdf::fractionAtOrBelow(double x) const {
  if (samples_.empty()) return 0.0;
  ensureSorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  ensureSorted();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = points == 1
                         ? 1.0
                         : static_cast<double>(i) /
                               static_cast<double>(points - 1);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

const std::vector<double>& EmpiricalCdf::sortedSamples() const {
  ensureSorted();
  return samples_;
}

void WeightedMean::add(double value, double weight) {
  sum_ += value * weight;
  weight_ += weight;
}

}  // namespace dg::util
