// The one sanctioned wall-clock access point (dglint rule R1).
//
// Library and simulation code must never read a real clock: every
// timestamp that can influence results flows through util::SimTime so
// runs are bit-reproducible. The legitimate wall-clock consumers are
// benchmarks, operational logging that *measure the harness itself*
// (wall seconds per run, throughput), and the live overlay daemon
// (src/live/), whose event loop is genuinely driven by real time. They
// use this shim, which is the single file allowlisted by dglint for raw
// <chrono> clocks -- anywhere else, `steady_clock` & friends are a lint
// error.
#pragma once

#include <chrono>  // dglint: ok(R1): this shim IS the allowlisted clock site
#include <cstdint>

namespace dg::util {

/// Monotonic wall-clock reading in microseconds since an arbitrary
/// process-local epoch. The live daemon's event loop derives its
/// SimTime-shaped timestamps from differences of this value; nothing
/// deterministic may depend on it (dglint R1 enforces that every other
/// clock read goes through this file).
inline std::int64_t nowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Same monotonic reading at nanosecond resolution, for stage timers
/// that bracket individual hot-path operations (a microsecond tick is
/// too coarse for a single Dijkstra or memo lookup). Reporting-only,
/// like everything else in this file.
inline std::int64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Opaque monotonic timestamp for measuring elapsed wall time.
class WallClock {
 public:
  /// Starts (or restarts) the stopwatch.
  void start() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since start(); 0 if never started.
  double elapsedSeconds() const {
    if (start_ == std::chrono::steady_clock::time_point{}) return 0.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace dg::util
