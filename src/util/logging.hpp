// Minimal leveled logger.
//
// The library is deterministic and single-threaded by design (discrete
// event simulation), so the logger favours simplicity: a global level,
// a stream sink, and printf-free formatting via operator<< chaining.
//
// Usage:
//   DG_LOG(Info) << "link " << id << " degraded, loss=" << loss;
//
// Statements below the active level compile to a cheap branch.
#pragma once

#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

namespace dg::util {

enum class LogLevel : int {
  Trace = 0,
  Debug = 1,
  Info = 2,
  Warn = 3,
  Error = 4,
  Off = 5,
};

/// Returns the canonical lowercase name of a level ("info", ...).
std::string_view logLevelName(LogLevel level);

/// Parses a level name (case-insensitive); returns Info on unknown input.
LogLevel parseLogLevel(std::string_view name);

class Logger {
 public:
  /// Process-wide logger instance.
  static Logger& instance();

  void setLevel(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Redirects output (defaults to std::clog). The sink must outlive the
  /// logger's use; pass nullptr to restore the default.
  void setSink(std::ostream* sink);

  bool enabled(LogLevel level) const { return level >= level_; }

  /// Writes one complete, newline-terminated record.
  void write(LogLevel level, std::string_view file, int line,
             std::string_view message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::Warn;
  std::ostream* sink_ = nullptr;
};

/// RAII line builder used by the DG_LOG macro.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::instance().write(level_, file_, line_, out_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    out_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream out_;
};

}  // namespace dg::util

#define DG_LOG(level)                                                       \
  if (!::dg::util::Logger::instance().enabled(::dg::util::LogLevel::level)) \
    ;                                                                       \
  else                                                                      \
    ::dg::util::LogLine(::dg::util::LogLevel::level, __FILE__, __LINE__)
