// Tiny key=value configuration store used by the benchmark/experiment
// binaries and examples: loads `key = value` files with `#` comments, and
// overlays `--key=value` command-line overrides, so every experiment knob
// is scriptable without recompiling.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dg::util {

class Config {
 public:
  Config() = default;

  /// Parses `key = value` lines. Blank lines and lines starting with `#`
  /// are ignored. Throws std::runtime_error with the offending line number
  /// on malformed input.
  static Config fromString(std::string_view text);

  /// Loads a file via fromString. Throws std::runtime_error if unreadable.
  static Config fromFile(const std::string& path);

  /// Consumes `--key=value` and `--flag` arguments (flag => "true").
  /// Non `--` arguments are returned in `positional` order.
  void applyArgs(int argc, const char* const argv[],
                 std::vector<std::string>* positional = nullptr);

  void set(std::string key, std::string value);
  bool has(std::string_view key) const;

  /// Typed getters with defaults. Throw std::runtime_error when the key is
  /// present but unparsable (silent fallback would hide typos in sweeps).
  std::string getString(std::string_view key,
                        std::string_view fallback = "") const;
  double getDouble(std::string_view key, double fallback) const;
  std::int64_t getInt(std::string_view key, std::int64_t fallback) const;
  bool getBool(std::string_view key, bool fallback) const;

  /// All keys, sorted; handy for echoing the effective configuration.
  std::vector<std::string> keys() const;
  std::string toString() const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace dg::util
