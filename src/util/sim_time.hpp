// Simulation time representation shared by every layer of the library.
//
// All latencies, deadlines and timestamps are carried as integral
// microseconds (`SimTime`).  Integral time avoids the accumulation of
// floating-point error in long discrete-event runs and makes event
// ordering deterministic across platforms.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace dg::util {

/// Absolute simulation time or a duration, in microseconds.
using SimTime = std::int64_t;

/// Sentinel for "never" / "not delivered".
inline constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

inline constexpr SimTime microseconds(std::int64_t us) { return us; }
inline constexpr SimTime milliseconds(std::int64_t ms) { return ms * 1000; }
inline constexpr SimTime seconds(std::int64_t s) { return s * 1'000'000; }
inline constexpr SimTime minutes(std::int64_t m) { return m * 60'000'000; }
inline constexpr SimTime hours(std::int64_t h) { return h * 3'600'000'000LL; }
inline constexpr SimTime days(std::int64_t d) { return d * 86'400'000'000LL; }

/// Converts a time to fractional milliseconds (for reporting only).
inline constexpr double toMillis(SimTime t) {
  return static_cast<double>(t) / 1000.0;
}

/// Converts a time to fractional seconds (for reporting only).
inline constexpr double toSeconds(SimTime t) {
  return static_cast<double>(t) / 1'000'000.0;
}

/// Renders a duration as a compact human-readable string, e.g. "65ms",
/// "10s", "1.5ms".  Intended for logs and reports.
std::string formatDuration(SimTime t);

}  // namespace dg::util
