#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

#include "util/sim_time.hpp"

namespace dg::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> splitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    const std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

bool startsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string toLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool parseDouble(std::string_view text, double& out) {
  text = trim(text);
  if (text.empty()) return false;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto result = std::from_chars(begin, end, out);
  return result.ec == std::errc{} && result.ptr == end;
}

bool parseInt64(std::string_view text, std::int64_t& out) {
  text = trim(text);
  if (text.empty()) return false;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto result = std::from_chars(begin, end, out);
  return result.ec == std::errc{} && result.ptr == end;
}

std::string formatFixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string formatHex64(std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::string formatPercent(double fraction, int decimals) {
  return formatFixed(fraction * 100.0, decimals) + "%";
}

std::string padLeft(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string padRight(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string formatDuration(SimTime t) {
  if (t == kNever) return "never";
  if (t % seconds(1) == 0 && t != 0) {
    const auto s = t / seconds(1);
    if (s % 86'400 == 0) return std::to_string(s / 86'400) + "d";
    if (s % 3'600 == 0) return std::to_string(s / 3'600) + "h";
    if (s % 60 == 0) return std::to_string(s / 60) + "min";
    return std::to_string(s) + "s";
  }
  if (t % milliseconds(1) == 0) return std::to_string(t / 1000) + "ms";
  if (t >= milliseconds(1)) return formatFixed(toMillis(t), 3) + "ms";
  return std::to_string(t) + "us";
}

}  // namespace dg::util
