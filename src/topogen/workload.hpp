// Open-loop fleet workloads: seeded generators that turn a topology into
// thousands of flows with per-flow start/stop times, so experiments can
// replay realistic offered load instead of a hand-picked flow list.
//
// Arrivals follow an open-loop process -- flow start times are a
// cumulative sum of i.i.d. inter-arrival draws, independent of how the
// network performs -- with two interchangeable distributions: Poisson
// (exponential inter-arrivals) and bounded Pareto (heavy-tailed bursts
// with a finite upper cutoff). Endpoints are drawn from a gravity model:
// a site's attraction is its overlay degree raised to a configurable
// exponent, and destination != source always.
//
// Workloads serialize to an exact text format (site names + integer
// microseconds), so a generated fleet can be recorded once and replayed
// byte-identically across machines and runs.
//
// Specs are compact strings like topology specs:
//   "poisson:flows=1000,seed=3,mean=0.5,duration=300"
//   "pareto:flows=500,alpha=1.5,min=0.05,max=60,duration=120"
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "routing/scheme.hpp"
#include "trace/topology.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace dg::topogen {

enum class ArrivalProcess {
  kPoisson,        ///< exponential inter-arrival times
  kBoundedPareto,  ///< Pareto inter-arrivals truncated to [min, max]
};

struct WorkloadParams {
  std::uint64_t seed = 1;
  std::size_t flowCount = 1000;
  ArrivalProcess arrival = ArrivalProcess::kPoisson;

  /// Poisson: mean inter-arrival time, seconds.
  double meanInterarrivalSeconds = 1.0;

  /// Bounded Pareto inter-arrivals: shape and [min, max] support, seconds.
  double paretoAlpha = 1.5;
  double paretoMinSeconds = 0.05;
  double paretoMaxSeconds = 3600.0;

  /// Flow lifetime: exponential with this mean, floored at the minimum
  /// (every flow lives at least one scoring interval's worth of time).
  double meanDurationSeconds = 300.0;
  double minDurationSeconds = 10.0;

  /// Gravity-model endpoint weight: degree^exponent. 0 = uniform.
  double gravityExponent = 1.0;
};

/// One flow of the fleet with its active [start, stop) span.
struct WorkloadFlow {
  routing::Flow flow;
  util::SimTime start = 0;  ///< inclusive, microseconds
  util::SimTime stop = 0;   ///< exclusive, microseconds; always > start
};

struct FlowWorkload {
  std::vector<WorkloadFlow> flows;
};

/// One bounded-Pareto draw over [lo, hi] with shape alpha, by inverse
/// CDF: F^-1(u) = lo / (1 - u (1 - (lo/hi)^alpha))^(1/alpha).
/// Exposed for the distribution tests.
double boundedPareto(util::Rng& rng, double alpha, double lo, double hi);

/// Generates the fleet. Deterministic: equal (topology, params) pairs
/// give identical workloads. Throws std::invalid_argument when the
/// topology has fewer than two sites or a parameter is out of range.
FlowWorkload generateWorkload(const trace::Topology& topology,
                              const WorkloadParams& params);

/// Parses "poisson:..." / "pareto:..." spec strings (keys: flows, seed,
/// mean, alpha, min, max, duration, min-duration, gravity). Throws
/// std::invalid_argument on unknown process or parameter.
WorkloadParams parseWorkloadSpec(std::string_view spec);

/// Exact text round-trip: "workload v1" header, then one
/// "flow SRC DST START_US STOP_US" line per flow, '#' comments allowed.
/// workloadFromString(workloadToString(w)) reproduces w exactly.
std::string workloadToString(const FlowWorkload& workload,
                             const trace::Topology& topology);
FlowWorkload workloadFromString(std::string_view text,
                                const trace::Topology& topology);
FlowWorkload workloadFromFile(const std::string& path,
                              const trace::Topology& topology);

/// Maps a flow's active span onto trace interval geometry: first =
/// floor(start / intervalLength), last = ceil(stop / intervalLength),
/// both clamped to [0, intervalCount], widened to cover at least one
/// interval. Returns the half-open [first, last) pair the experiment
/// runner's FlowWindow wants.
std::pair<std::size_t, std::size_t> flowIntervalWindow(
    const WorkloadFlow& flow, util::SimTime intervalLength,
    std::size_t intervalCount);

// ---------------------------------------------------------------------
// Group (receiver-set) workloads for the multicast subsystem.

struct GroupWorkloadParams {
  WorkloadParams base;
  /// Receiver-set size, drawn uniformly from [receiversMin, receiversMax]
  /// per group arrival.
  std::size_t receiversMin = 2;
  std::size_t receiversMax = 4;
};

/// One group arrival of the fleet with its active [start, stop) span.
/// Receiver order is significant downstream (it feeds the group RNG
/// stream derivation), so it is preserved exactly by serialization.
struct WorkloadGroup {
  graph::NodeId source = graph::kInvalidNode;
  std::vector<graph::NodeId> receivers;
  util::SimTime start = 0;  ///< inclusive, microseconds
  util::SimTime stop = 0;   ///< exclusive, microseconds; always > start
};

struct GroupWorkload {
  std::vector<WorkloadGroup> groups;
};

/// Generates a group fleet: same arrival/duration processes as
/// generateWorkload (the arrival, endpoint, and duration RNG streams are
/// forked in the same order, so a group fleet's clock matches the flow
/// fleet's for equal base params), with the receiver set gravity-sampled
/// without replacement. Throws std::invalid_argument when receiversMin
/// is 0, receiversMax < receiversMin, or receiversMax > siteCount - 1.
GroupWorkload generateGroupWorkload(const trace::Topology& topology,
                                    const GroupWorkloadParams& params);

/// Parses group workload specs: same processes and keys as
/// parseWorkloadSpec plus receivers-min / receivers-max, e.g.
///   "poisson:flows=200,seed=7,receivers-min=2,receivers-max=8"
GroupWorkloadParams parseGroupWorkloadSpec(std::string_view spec);

/// Exact text round-trip: "group-workload v1" header, then one
/// "group SRC R1+R2+R3 START_US STOP_US" line per group.
/// groupWorkloadFromString(groupWorkloadToString(w)) reproduces w
/// exactly, receiver order included.
std::string groupWorkloadToString(const GroupWorkload& workload,
                                  const trace::Topology& topology);
GroupWorkload groupWorkloadFromString(std::string_view text,
                                      const trace::Topology& topology);
GroupWorkload groupWorkloadFromFile(const std::string& path,
                                    const trace::Topology& topology);

/// flowIntervalWindow's arithmetic applied to a group's active span.
std::pair<std::size_t, std::size_t> groupIntervalWindow(
    const WorkloadGroup& group, util::SimTime intervalLength,
    std::size_t intervalCount);

}  // namespace dg::topogen
