#include "topogen/topogen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace dg::topogen {

namespace {

/// World metro table the geographic families sample from. Coordinates
/// are city centers, rounded to two decimals; codes are IATA-like and
/// unique. Order is fixed -- generation depends on it.
struct Metro {
  const char* code;
  double latDeg;
  double lonDeg;
};

constexpr Metro kMetros[] = {
    {"NYC", 40.71, -73.99},  {"LAX", 34.05, -118.24}, {"CHI", 41.88, -87.63},
    {"DFW", 32.78, -96.80},  {"DEN", 39.74, -104.99}, {"SJC", 37.34, -121.89},
    {"SEA", 47.61, -122.33}, {"ATL", 33.75, -84.39},  {"MIA", 25.76, -80.19},
    {"WAS", 38.91, -77.04},  {"BOS", 42.36, -71.06},  {"PHX", 33.45, -112.07},
    {"MSP", 44.98, -93.27},  {"SLC", 40.76, -111.89}, {"PDX", 45.52, -122.68},
    {"CLT", 35.23, -80.84},  {"IAH", 29.76, -95.37},  {"KCY", 39.10, -94.58},
    {"YYZ", 43.65, -79.38},  {"YVR", 49.28, -123.12}, {"MEX", 19.43, -99.13},
    {"GRU", -23.55, -46.63}, {"EZE", -34.60, -58.38}, {"BOG", 4.71, -74.07},
    {"SCL", -33.45, -70.67}, {"LON", 51.51, -0.13},   {"FRA", 50.11, 8.68},
    {"AMS", 52.37, 4.90},    {"PAR", 48.86, 2.35},    {"MAD", 40.42, -3.70},
    {"MIL", 45.46, 9.19},    {"STO", 59.33, 18.07},   {"WAW", 52.23, 21.01},
    {"DUB", 53.35, -6.26},   {"ZRH", 47.38, 8.54},    {"IST", 41.01, 28.98},
    {"TLV", 32.08, 34.78},   {"DXB", 25.20, 55.27},   {"JNB", -26.20, 28.05},
    {"CAI", 30.04, 31.24},   {"LOS", 6.52, 3.38},     {"BOM", 19.08, 72.88},
    {"DEL", 28.61, 77.21},   {"SIN", 1.35, 103.82},   {"HKG", 22.32, 114.17},
    {"TPE", 25.03, 121.57},  {"TYO", 35.68, 139.69},  {"ICN", 37.57, 126.98},
    {"SYD", -33.87, 151.21}, {"AKL", -36.85, 174.76}, {"PEK", 39.90, 116.41},
    {"BKK", 13.76, 100.50},
};
constexpr std::size_t kMetroCount = sizeof(kMetros) / sizeof(kMetros[0]);

[[noreturn]] void badSpec(const std::string& what) {
  throw std::invalid_argument("topology spec: " + what);
}

/// Rejects parameter keys outside the family's documented set, so typos
/// ("seeds=7") fail loudly instead of silently using defaults.
void requireKnownKeys(const FamilySpec& spec,
                      std::initializer_list<std::string_view> known) {
  for (const auto& [key, value] : spec.params) {
    if (std::find(known.begin(), known.end(), key) == known.end())
      badSpec("unknown parameter '" + key + "' for family '" + spec.family +
              "'");
  }
}

/// Fisher-Yates over indices [0, n) with the repo Rng (std::shuffle is
/// implementation-defined and would break cross-platform determinism).
std::vector<std::size_t> shuffledIndices(std::size_t n, util::Rng& rng) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (std::size_t i = n; i > 1; --i)
    std::swap(order[i - 1], order[rng.uniformInt(static_cast<std::uint64_t>(i))]);
  return order;
}

/// Connects two sites with geographic latency, clamped to >= 1 us so
/// co-located members (sub-kilometre jitter) never yield a zero-latency
/// edge (fiberLatency rounds to the nearest microsecond).
void connectGeo(trace::Topology& topo, const std::string& a,
                const std::string& b) {
  const trace::Site& sa = topo.site(topo.at(a));
  const trace::Site& sb = topo.site(topo.at(b));
  const double km = trace::haversineKm(sa.latitudeDeg, sa.longitudeDeg,
                                       sb.latitudeDeg, sb.longitudeDeg);
  const util::SimTime latency = std::max<util::SimTime>(
      util::SimTime{1}, trace::fiberLatency(km));
  topo.connectWithLatency(a, b, latency);
}

bool connected(const trace::Topology& topo, const std::string& a,
               const std::string& b) {
  return topo.graph()
      .findEdge(topo.at(a), topo.at(b))
      .has_value();
}

void connectGeoIfAbsent(trace::Topology& topo, const std::string& a,
                        const std::string& b) {
  if (a != b && !connected(topo, a, b)) connectGeo(topo, a, b);
}

std::string memberName(const Metro& metro, std::size_t index) {
  return std::string(metro.code) + "-" + std::to_string(index);
}

/// Picks `count` distinct metros by seeded shuffle and distributes `n`
/// member nodes round-robin across them (every metro gets at least one).
/// Member 0 of each metro sits at the city center (the gateway); further
/// members are jittered around it. Returns, per metro, the member site
/// names in member order.
struct MetroPlan {
  std::vector<Metro> metros;
  std::vector<std::vector<std::string>> members;
};

MetroPlan planMetros(trace::Topology& topo, std::size_t n, std::size_t count,
                     double jitterDeg, util::Rng& rng) {
  MetroPlan plan;
  const std::vector<std::size_t> order = shuffledIndices(kMetroCount, rng);
  for (std::size_t i = 0; i < count; ++i)
    plan.metros.push_back(kMetros[order[i]]);
  plan.members.resize(count);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t m = i % count;
    const Metro& metro = plan.metros[m];
    const std::size_t index = plan.members[m].size();
    trace::Site site;
    site.name = memberName(metro, index);
    if (index == 0) {
      site.latitudeDeg = metro.latDeg;
      site.longitudeDeg = metro.lonDeg;
    } else {
      // Jitter keeps members geographically distinct (positive
      // great-circle distance between any connected pair) while staying
      // within the metro area; latitude is clamped to the valid range.
      site.latitudeDeg = std::clamp(
          metro.latDeg + rng.uniform(-jitterDeg, jitterDeg), -89.9, 89.9);
      site.longitudeDeg = metro.lonDeg + rng.uniform(-jitterDeg, jitterDeg);
      if (site.longitudeDeg > 180.0) site.longitudeDeg -= 360.0;
      if (site.longitudeDeg < -180.0) site.longitudeDeg += 360.0;
    }
    topo.addSite(std::move(site));
    plan.members[m].push_back(memberName(metro, index));
  }
  return plan;
}

/// Intra-metro wiring shared by mesh and ring: members form a ring (k >=
/// 3), or a single link (k == 2); members beyond the ring neighbors of
/// the gateway get a chord to the gateway so every member is at most one
/// hop from the backbone.
void wireMetroMembers(trace::Topology& topo,
                      const std::vector<std::string>& members) {
  const std::size_t k = members.size();
  if (k < 2) return;
  if (k == 2) {
    connectGeoIfAbsent(topo, members[0], members[1]);
    return;
  }
  for (std::size_t i = 0; i < k; ++i)
    connectGeoIfAbsent(topo, members[i], members[(i + 1) % k]);
  for (std::size_t i = 2; i + 1 < k; ++i)
    connectGeoIfAbsent(topo, members[0], members[i]);
}

std::size_t defaultMetroCount(std::size_t n) {
  return std::clamp<std::size_t>(n / 10, 4, kMetroCount);
}

// ---------------------------------------------------------------------------
// mesh: continental/global metro mesh

class MeshFamily final : public TopologyFamily {
 public:
  std::string_view name() const override { return "mesh"; }
  std::string_view parameterHelp() const override {
    return "n=<nodes,4..5000> metros=<4..52> degree=<backbone nearest "
           "neighbors,1..8> jitter=<member spread deg,0..5> seed=<u64>";
  }

  trace::Topology generate(const FamilySpec& spec) const override {
    requireKnownKeys(spec, {"n", "metros", "degree", "jitter", "seed"});
    const auto n = static_cast<std::size_t>(spec.getInt("n", 200, 4, 5000));
    const auto metros = static_cast<std::size_t>(spec.getInt(
        "metros", static_cast<std::int64_t>(defaultMetroCount(n)), 2,
        static_cast<std::int64_t>(std::min(kMetroCount, n))));
    const auto degree =
        static_cast<std::size_t>(spec.getInt("degree", 3, 1, 8));
    const double jitter = spec.getDouble("jitter", 0.5, 0.0, 5.0);
    util::Rng rng(spec.seed());

    trace::Topology topo;
    const MetroPlan plan = planMetros(topo, n, metros, jitter, rng);

    // Backbone: each gateway to its `degree` nearest gateways, plus a
    // ring over metros sorted by longitude (ties by code) so the
    // backbone is connected even at degree=1 with distant clusters.
    std::vector<std::size_t> byLongitude(plan.metros.size());
    for (std::size_t i = 0; i < byLongitude.size(); ++i) byLongitude[i] = i;
    std::sort(byLongitude.begin(), byLongitude.end(),
              [&](std::size_t a, std::size_t b) {
                if (plan.metros[a].lonDeg != plan.metros[b].lonDeg)
                  return plan.metros[a].lonDeg < plan.metros[b].lonDeg;
                return std::string_view(plan.metros[a].code) <
                       std::string_view(plan.metros[b].code);
              });
    for (std::size_t i = 0; i < byLongitude.size(); ++i) {
      const std::size_t a = byLongitude[i];
      const std::size_t b = byLongitude[(i + 1) % byLongitude.size()];
      if (a != b)
        connectGeoIfAbsent(topo, plan.members[a][0], plan.members[b][0]);
    }
    for (std::size_t m = 0; m < plan.metros.size(); ++m) {
      std::vector<std::pair<double, std::size_t>> byDistance;
      for (std::size_t other = 0; other < plan.metros.size(); ++other) {
        if (other == m) continue;
        byDistance.emplace_back(
            trace::haversineKm(plan.metros[m].latDeg, plan.metros[m].lonDeg,
                               plan.metros[other].latDeg,
                               plan.metros[other].lonDeg),
            other);
      }
      std::sort(byDistance.begin(), byDistance.end());
      const std::size_t take = std::min(degree, byDistance.size());
      for (std::size_t i = 0; i < take; ++i)
        connectGeoIfAbsent(topo, plan.members[m][0],
                           plan.members[byDistance[i].second][0]);
    }
    for (const std::vector<std::string>& members : plan.members)
      wireMetroMembers(topo, members);
    return topo;
  }
};

// ---------------------------------------------------------------------------
// ring: rings-of-metros

class RingFamily final : public TopologyFamily {
 public:
  std::string_view name() const override { return "ring"; }
  std::string_view parameterHelp() const override {
    return "n=<nodes,4..5000> metros=<2..52> jitter=<member spread deg,"
           "0..5> seed=<u64>";
  }

  trace::Topology generate(const FamilySpec& spec) const override {
    requireKnownKeys(spec, {"n", "metros", "jitter", "seed"});
    const auto n = static_cast<std::size_t>(spec.getInt("n", 200, 4, 5000));
    const auto metros = static_cast<std::size_t>(spec.getInt(
        "metros", static_cast<std::int64_t>(defaultMetroCount(n)), 2,
        static_cast<std::int64_t>(std::min(kMetroCount, n))));
    const double jitter = spec.getDouble("jitter", 0.5, 0.0, 5.0);
    util::Rng rng(spec.seed());

    trace::Topology topo;
    const MetroPlan plan = planMetros(topo, n, metros, jitter, rng);

    // Metro-level ring in longitude order. Adjacent metros are joined by
    // two inter-metro links from *distinct* endpoints on each side
    // (member 0/1 to member 0/1) whenever both sides have two members,
    // so losing a single gateway node never partitions the ring -- any
    // metro pair keeps two node-disjoint paths.
    std::vector<std::size_t> byLongitude(plan.metros.size());
    for (std::size_t i = 0; i < byLongitude.size(); ++i) byLongitude[i] = i;
    std::sort(byLongitude.begin(), byLongitude.end(),
              [&](std::size_t a, std::size_t b) {
                if (plan.metros[a].lonDeg != plan.metros[b].lonDeg)
                  return plan.metros[a].lonDeg < plan.metros[b].lonDeg;
                return std::string_view(plan.metros[a].code) <
                       std::string_view(plan.metros[b].code);
              });
    const std::size_t ringLength = byLongitude.size();
    for (std::size_t i = 0; i < ringLength; ++i) {
      const std::size_t a = byLongitude[i];
      const std::size_t b = byLongitude[(i + 1) % ringLength];
      if (a == b) continue;
      connectGeoIfAbsent(topo, plan.members[a][0], plan.members[b][0]);
      if (plan.members[a].size() > 1 && plan.members[b].size() > 1)
        connectGeoIfAbsent(topo, plan.members[a][1], plan.members[b][1]);
    }
    for (const std::vector<std::string>& members : plan.members)
      wireMetroMembers(topo, members);
    return topo;
  }
};

// ---------------------------------------------------------------------------
// scale-free: Barabasi-Albert preferential attachment

class ScaleFreeFamily final : public TopologyFamily {
 public:
  std::string_view name() const override { return "scale-free"; }
  std::string_view parameterHelp() const override {
    return "n=<nodes,4..5000> m=<links per new node,1..8> seed=<u64>";
  }

  trace::Topology generate(const FamilySpec& spec) const override {
    requireKnownKeys(spec, {"n", "m", "seed"});
    const auto n = static_cast<std::size_t>(spec.getInt("n", 500, 4, 5000));
    const auto m = static_cast<std::size_t>(spec.getInt(
        "m", 2, 1, static_cast<std::int64_t>(std::min<std::size_t>(8, n - 1))));
    util::Rng rng(spec.seed());

    trace::Topology topo;
    std::vector<std::string> names;
    names.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Uniform placement on the sphere: longitude uniform, latitude via
      // asin(2u - 1) so area density is constant (uniform latitude would
      // crowd the poles).
      trace::Site site;
      site.name = "N" + std::to_string(i);
      site.longitudeDeg = rng.uniform(-180.0, 180.0);
      site.latitudeDeg =
          std::asin(2.0 * rng.uniform() - 1.0) * 180.0 / 3.14159265358979323846;
      names.push_back(site.name);
      topo.addSite(std::move(site));
    }

    // `endpoints` lists every edge endpoint once, so sampling it
    // uniformly is sampling nodes proportionally to degree -- the
    // classic preferential-attachment trick.
    std::vector<std::size_t> endpoints;
    const std::size_t seedClique = std::min(n, m + 1);
    for (std::size_t a = 0; a < seedClique; ++a) {
      for (std::size_t b = a + 1; b < seedClique; ++b) {
        connectGeo(topo, names[a], names[b]);
        endpoints.push_back(a);
        endpoints.push_back(b);
      }
    }
    for (std::size_t node = seedClique; node < n; ++node) {
      std::vector<std::size_t> targets;
      while (targets.size() < m) {
        const std::size_t candidate =
            endpoints[rng.uniformInt(static_cast<std::uint64_t>(
                endpoints.size()))];
        if (std::find(targets.begin(), targets.end(), candidate) ==
            targets.end())
          targets.push_back(candidate);
      }
      for (const std::size_t target : targets) {
        connectGeo(topo, names[node], names[target]);
        endpoints.push_back(node);
        endpoints.push_back(target);
      }
    }
    return topo;
  }
};

const MeshFamily kMesh;
const RingFamily kRing;
const ScaleFreeFamily kScaleFree;

trace::Topology builtinByName(std::string_view name, bool& found) {
  found = true;
  if (name == "ltn12") return trace::Topology::ltn12();
  if (name == "abilene11") return trace::Topology::abilene11();
  if (name == "mesh5") return trace::Topology::mesh5();
  found = false;
  return {};
}

bool isBuiltinName(std::string_view name) {
  return name == "ltn12" || name == "abilene11" || name == "mesh5";
}

}  // namespace

std::int64_t FamilySpec::getInt(std::string_view key, std::int64_t fallback,
                                std::int64_t lo, std::int64_t hi) const {
  const auto it = params.find(key);
  std::int64_t value = fallback;
  if (it != params.end() && !util::parseInt64(it->second, value))
    badSpec("parameter '" + std::string(key) + "' is not an integer: '" +
            it->second + "'");
  if (value < lo || value > hi)
    badSpec("parameter '" + std::string(key) + "'=" + std::to_string(value) +
            " out of range [" + std::to_string(lo) + ", " +
            std::to_string(hi) + "]");
  return value;
}

double FamilySpec::getDouble(std::string_view key, double fallback, double lo,
                             double hi) const {
  const auto it = params.find(key);
  double value = fallback;
  if (it != params.end() && !util::parseDouble(it->second, value))
    badSpec("parameter '" + std::string(key) + "' is not a number: '" +
            it->second + "'");
  if (!(value >= lo && value <= hi))
    badSpec("parameter '" + std::string(key) + "' out of range");
  return value;
}

std::uint64_t FamilySpec::seed() const {
  const auto it = params.find("seed");
  if (it == params.end()) return 1;
  std::int64_t value = 0;
  if (!util::parseInt64(it->second, value) || value < 0)
    badSpec("parameter 'seed' is not a non-negative integer: '" + it->second +
            "'");
  return static_cast<std::uint64_t>(value);
}

std::string FamilySpec::toString() const {
  std::string out = family;
  char sep = ':';
  for (const auto& [key, value] : params) {
    out += sep;
    out += key;
    out += '=';
    out += value;
    sep = ',';
  }
  return out;
}

FamilySpec parseFamilySpec(std::string_view spec) {
  FamilySpec out;
  const std::size_t colon = spec.find(':');
  out.family = util::toLower(util::trim(spec.substr(0, colon)));
  if (out.family.empty()) badSpec("empty family name in '" + std::string(spec) + "'");
  if (colon == std::string_view::npos) return out;
  const std::string_view rest = spec.substr(colon + 1);
  for (const std::string& field : util::split(rest, ',')) {
    const std::string_view trimmed = util::trim(field);
    if (trimmed.empty()) continue;
    const std::size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos || eq == 0)
      badSpec("expected key=value, got '" + std::string(trimmed) + "'");
    std::string key = util::toLower(util::trim(trimmed.substr(0, eq)));
    std::string value{util::trim(trimmed.substr(eq + 1))};
    if (value.empty()) badSpec("empty value for parameter '" + key + "'");
    if (!out.params.emplace(std::move(key), std::move(value)).second)
      badSpec("duplicate parameter in '" + std::string(spec) + "'");
  }
  return out;
}

const std::vector<const TopologyFamily*>& allFamilies() {
  static const std::vector<const TopologyFamily*> families = {
      &kMesh, &kRing, &kScaleFree};
  return families;
}

const TopologyFamily* findFamily(std::string_view name) {
  for (const TopologyFamily* family : allFamilies())
    if (family->name() == name) return family;
  return nullptr;
}

bool isFamilySpec(std::string_view text) {
  const std::size_t colon = text.find(':');
  const std::string head = util::toLower(util::trim(text.substr(0, colon)));
  if (colon != std::string_view::npos) return findFamily(head) != nullptr;
  return findFamily(head) != nullptr || isBuiltinName(head);
}

trace::Topology generateTopology(std::string_view spec) {
  const FamilySpec parsed = parseFamilySpec(spec);
  if (parsed.params.empty()) {
    bool found = false;
    trace::Topology builtin = builtinByName(parsed.family, found);
    if (found) return builtin;
  }
  const TopologyFamily* family = findFamily(parsed.family);
  if (family == nullptr)
    badSpec("unknown family '" + parsed.family +
            "' (families: mesh, ring, scale-free; builtins: ltn12, "
            "abilene11, mesh5)");
  return family->generate(parsed);
}

}  // namespace dg::topogen
