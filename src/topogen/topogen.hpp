// Parameterized topology families: deterministic, seeded generators that
// emit valid Topology instances at fleet scale (100-1000 nodes), so the
// scheme-separation experiments are not tied to the 12-site LTN overlay.
//
// Three families plus the named builtins:
//
//   mesh        continental/global metro mesh: metros sampled from a
//               builtin world city table, nearest-neighbor backbone plus
//               a longitude ring (connectivity), member nodes jittered
//               around their metro with intra-metro ring + gateway chords
//   ring        rings-of-metros: a metro-level ring where adjacent metros
//               are joined by two links from distinct member nodes (so
//               two node-disjoint paths exist between any pair), and each
//               metro's members form their own ring
//   scale-free  Barabasi-Albert preferential attachment (m links per new
//               node onto a seed clique), nodes placed uniformly on the
//               sphere
//
// Every edge latency is the great-circle fiber latency of its endpoints
// (clamped to >= 1 us), so generated overlays carry realistic geography.
// Generation is a pure function of the spec: the same family string
// yields a byte-identical Topology::toString() on every platform.
//
// Specs are compact strings: "FAMILY:key=value,key=value", e.g.
// "scale-free:n=500,seed=7" or "mesh:n=200,metros=20,seed=3". A bare
// builtin name ("ltn12", "abilene11", "mesh5") is also a valid spec.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "trace/topology.hpp"

namespace dg::topogen {

/// A parsed family spec: the family name plus its key=value parameters.
struct FamilySpec {
  std::string family;
  std::map<std::string, std::string, std::less<>> params;

  /// Typed parameter access with range checks; throw std::invalid_argument
  /// on unparsable or out-of-range values (silent fallback would hide
  /// typos in sweep scripts).
  std::int64_t getInt(std::string_view key, std::int64_t fallback,
                      std::int64_t lo, std::int64_t hi) const;
  double getDouble(std::string_view key, double fallback, double lo,
                   double hi) const;
  std::uint64_t seed() const;

  /// Canonical round-trippable form: family:k=v,... with keys sorted.
  std::string toString() const;
};

/// Parses "family:k=v,k=v" (or a bare family/builtin name). Throws
/// std::invalid_argument on malformed input with the offending fragment.
FamilySpec parseFamilySpec(std::string_view spec);

/// One seeded topology generator. Implementations are stateless: all
/// variability comes from the spec parameters (including `seed`).
class TopologyFamily {
 public:
  virtual ~TopologyFamily() = default;

  virtual std::string_view name() const = 0;
  /// One-line parameter documentation for `dgnet topo` help output.
  virtual std::string_view parameterHelp() const = 0;
  /// Generates the topology. Deterministic: equal specs give
  /// byte-identical topologies. Throws std::invalid_argument on bad
  /// parameters. Unknown parameter keys are rejected, not ignored.
  virtual trace::Topology generate(const FamilySpec& spec) const = 0;
};

/// All registered families, in a fixed documented order (mesh, ring,
/// scale-free). Pointers are to process-lifetime singletons.
const std::vector<const TopologyFamily*>& allFamilies();

/// Looks up a family by name; nullptr when unknown.
const TopologyFamily* findFamily(std::string_view name);

/// True when `text` looks like a generator spec rather than a file path:
/// either "family:..." for a registered family, or a bare family/builtin
/// name. Used by the CLI to route --topology values.
bool isFamilySpec(std::string_view text);

/// Generates a topology from a spec string. Resolves builtin names
/// (ltn12, abilene11, mesh5) as well as registered families. Throws
/// std::invalid_argument on unknown family or bad parameters.
trace::Topology generateTopology(std::string_view spec);

}  // namespace dg::topogen
