#include "topogen/workload.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "topogen/topogen.hpp"
#include "util/strings.hpp"

namespace dg::topogen {

namespace {

[[noreturn]] void badWorkload(const std::string& what) {
  throw std::invalid_argument("workload: " + what);
}

/// Rounds a positive time in seconds to integer microseconds, at least 1.
util::SimTime toMicros(double seconds) {
  const double us = seconds * 1e6;
  if (us >= 9.0e18) badWorkload("time overflows SimTime");
  return std::max<util::SimTime>(util::SimTime{1},
                                 static_cast<util::SimTime>(std::llround(us)));
}

}  // namespace

double boundedPareto(util::Rng& rng, double alpha, double lo, double hi) {
  const double u = rng.uniform();
  const double ratio = std::pow(lo / hi, alpha);
  return lo / std::pow(1.0 - u * (1.0 - ratio), 1.0 / alpha);
}

FlowWorkload generateWorkload(const trace::Topology& topology,
                              const WorkloadParams& params) {
  const std::size_t sites = topology.siteCount();
  if (sites < 2) badWorkload("topology needs at least two sites");
  if (params.flowCount == 0) badWorkload("flowCount must be positive");
  if (params.meanInterarrivalSeconds <= 0 || params.meanDurationSeconds <= 0 ||
      params.minDurationSeconds <= 0)
    badWorkload("time parameters must be positive");
  if (params.paretoAlpha <= 0 || params.paretoMinSeconds <= 0 ||
      params.paretoMaxSeconds <= params.paretoMinSeconds)
    badWorkload("bounded-Pareto parameters need alpha > 0 and max > min > 0");
  if (params.gravityExponent < 0)
    badWorkload("gravityExponent must be >= 0");

  // Gravity weights: degree^exponent per site (out-degree == in-degree
  // for these bidirectional overlays). A degree-0 site gets weight 0 and
  // is never chosen; if every site is isolated, fall back to uniform.
  std::vector<double> weights(sites);
  double total = 0.0;
  for (std::size_t i = 0; i < sites; ++i) {
    const double degree = static_cast<double>(
        topology.graph().outEdges(static_cast<graph::NodeId>(i)).size());
    weights[i] = params.gravityExponent == 0.0
                     ? 1.0
                     : std::pow(degree, params.gravityExponent);
    total += weights[i];
  }
  if (total <= 0.0) std::fill(weights.begin(), weights.end(), 1.0);

  util::Rng rng(params.seed);
  util::Rng arrivalRng = rng.fork();
  util::Rng endpointRng = rng.fork();
  util::Rng durationRng = rng.fork();

  FlowWorkload workload;
  workload.flows.reserve(params.flowCount);
  double clockSeconds = 0.0;
  for (std::size_t i = 0; i < params.flowCount; ++i) {
    clockSeconds += params.arrival == ArrivalProcess::kPoisson
                        ? arrivalRng.exponential(params.meanInterarrivalSeconds)
                        : boundedPareto(arrivalRng, params.paretoAlpha,  // dgcheck: ok(R6): arrivalRng is a dedicated forked stream and the arrival clock is a running sum, so draws are inherently sequential
                                        params.paretoMinSeconds,
                                        params.paretoMaxSeconds);
    WorkloadFlow flow;
    flow.start = toMicros(clockSeconds);
    const double duration =
        std::max(params.minDurationSeconds,
                 durationRng.exponential(params.meanDurationSeconds));
    flow.stop = flow.start + toMicros(duration);

    const std::size_t src = endpointRng.weightedIndex(weights);
    std::size_t dst = src;
    for (int attempt = 0; dst == src && attempt < 64; ++attempt)
      dst = endpointRng.weightedIndex(weights);
    // Degenerate weight vectors (one positive entry) cannot produce a
    // distinct destination by sampling; rotate deterministically.
    if (dst == src) dst = (src + 1) % sites;
    flow.flow.source = static_cast<graph::NodeId>(src);
    flow.flow.destination = static_cast<graph::NodeId>(dst);
    workload.flows.push_back(flow);
  }
  return workload;
}

WorkloadParams parseWorkloadSpec(std::string_view spec) {
  const FamilySpec parsed = parseFamilySpec(spec);
  WorkloadParams params;
  if (parsed.family == "poisson") {
    params.arrival = ArrivalProcess::kPoisson;
  } else if (parsed.family == "pareto") {
    params.arrival = ArrivalProcess::kBoundedPareto;
  } else {
    badWorkload("unknown arrival process '" + parsed.family +
                "' (expected poisson or pareto)");
  }
  for (const auto& [key, value] : parsed.params) {
    if (key != "flows" && key != "seed" && key != "mean" && key != "alpha" &&
        key != "min" && key != "max" && key != "duration" &&
        key != "min-duration" && key != "gravity")
      badWorkload("unknown parameter '" + key + "'");
  }
  params.seed = parsed.seed();
  params.flowCount = static_cast<std::size_t>(
      parsed.getInt("flows", 1000, 1, 1'000'000));
  params.meanInterarrivalSeconds =
      parsed.getDouble("mean", params.meanInterarrivalSeconds, 1e-6, 1e9);
  params.paretoAlpha =
      parsed.getDouble("alpha", params.paretoAlpha, 1e-6, 100.0);
  params.paretoMinSeconds =
      parsed.getDouble("min", params.paretoMinSeconds, 1e-6, 1e9);
  params.paretoMaxSeconds =
      parsed.getDouble("max", params.paretoMaxSeconds, 1e-6, 1e9);
  params.meanDurationSeconds =
      parsed.getDouble("duration", params.meanDurationSeconds, 1e-6, 1e9);
  params.minDurationSeconds =
      parsed.getDouble("min-duration", params.minDurationSeconds, 1e-6, 1e9);
  params.gravityExponent =
      parsed.getDouble("gravity", params.gravityExponent, 0.0, 16.0);
  return params;
}

std::string workloadToString(const FlowWorkload& workload,
                             const trace::Topology& topology) {
  std::string out = "workload v1\n";
  for (const WorkloadFlow& flow : workload.flows) {
    out += "flow ";
    out += topology.name(flow.flow.source);
    out += ' ';
    out += topology.name(flow.flow.destination);
    out += ' ';
    out += std::to_string(flow.start);
    out += ' ';
    out += std::to_string(flow.stop);
    out += '\n';
  }
  return out;
}

FlowWorkload workloadFromString(std::string_view text,
                                const trace::Topology& topology) {
  FlowWorkload workload;
  bool sawHeader = false;
  std::size_t lineNumber = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line = util::trim(
        text.substr(pos, eol == std::string_view::npos ? eol : eol - pos));
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++lineNumber;
    if (line.empty() || line.front() == '#') continue;
    const std::vector<std::string> fields = util::splitWhitespace(line);
    const std::string where = " at line " + std::to_string(lineNumber);
    if (!sawHeader) {
      if (fields.size() != 2 || fields[0] != "workload" || fields[1] != "v1")
        badWorkload("expected 'workload v1' header" + where);
      sawHeader = true;
      continue;
    }
    if (fields[0] != "flow" || fields.size() != 5)
      badWorkload("expected 'flow SRC DST START STOP'" + where);
    WorkloadFlow flow;
    const auto src = topology.byName(fields[1]);
    const auto dst = topology.byName(fields[2]);
    if (!src || !dst)
      badWorkload("unknown site '" + (src ? fields[2] : fields[1]) + "'" +
                  where);
    if (*src == *dst)
      badWorkload("flow source equals destination" + where);
    std::int64_t start = 0;
    std::int64_t stop = 0;
    if (!util::parseInt64(fields[3], start) ||
        !util::parseInt64(fields[4], stop) || start < 0 || stop <= start)
      badWorkload("bad flow times" + where);
    flow.flow.source = *src;
    flow.flow.destination = *dst;
    flow.start = start;
    flow.stop = stop;
    workload.flows.push_back(flow);
  }
  if (!sawHeader) badWorkload("missing 'workload v1' header");
  return workload;
}

FlowWorkload workloadFromFile(const std::string& path,
                              const trace::Topology& topology) {
  std::ifstream in(path, std::ios::binary);
  if (!in) badWorkload("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return workloadFromString(buffer.str(), topology);
}

std::pair<std::size_t, std::size_t> flowIntervalWindow(
    const WorkloadFlow& flow, util::SimTime intervalLength,
    std::size_t intervalCount) {
  if (intervalLength <= 0 || intervalCount == 0)
    badWorkload("flowIntervalWindow needs a non-empty interval geometry");
  const auto cap = static_cast<util::SimTime>(intervalCount);
  std::size_t first = static_cast<std::size_t>(
      std::min(flow.start / intervalLength, cap));
  std::size_t last = static_cast<std::size_t>(std::min(
      (flow.stop + intervalLength - 1) / intervalLength, cap));
  // Flows starting at or after trace end still score their final
  // interval; never return an empty window.
  if (first >= intervalCount) first = intervalCount - 1;
  if (last <= first) last = first + 1;
  return {first, last};
}

}  // namespace dg::topogen
