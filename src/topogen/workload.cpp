#include "topogen/workload.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "topogen/topogen.hpp"
#include "util/strings.hpp"

namespace dg::topogen {

namespace {

[[noreturn]] void badWorkload(const std::string& what) {
  throw std::invalid_argument("workload: " + what);
}

/// Rounds a positive time in seconds to integer microseconds, at least 1.
util::SimTime toMicros(double seconds) {
  const double us = seconds * 1e6;
  if (us >= 9.0e18) badWorkload("time overflows SimTime");
  return std::max<util::SimTime>(util::SimTime{1},
                                 static_cast<util::SimTime>(std::llround(us)));
}

}  // namespace

double boundedPareto(util::Rng& rng, double alpha, double lo, double hi) {
  const double u = rng.uniform();
  const double ratio = std::pow(lo / hi, alpha);
  return lo / std::pow(1.0 - u * (1.0 - ratio), 1.0 / alpha);
}

FlowWorkload generateWorkload(const trace::Topology& topology,
                              const WorkloadParams& params) {
  const std::size_t sites = topology.siteCount();
  if (sites < 2) badWorkload("topology needs at least two sites");
  if (params.flowCount == 0) badWorkload("flowCount must be positive");
  if (params.meanInterarrivalSeconds <= 0 || params.meanDurationSeconds <= 0 ||
      params.minDurationSeconds <= 0)
    badWorkload("time parameters must be positive");
  if (params.paretoAlpha <= 0 || params.paretoMinSeconds <= 0 ||
      params.paretoMaxSeconds <= params.paretoMinSeconds)
    badWorkload("bounded-Pareto parameters need alpha > 0 and max > min > 0");
  if (params.gravityExponent < 0)
    badWorkload("gravityExponent must be >= 0");

  // Gravity weights: degree^exponent per site (out-degree == in-degree
  // for these bidirectional overlays). A degree-0 site gets weight 0 and
  // is never chosen; if every site is isolated, fall back to uniform.
  std::vector<double> weights(sites);
  double total = 0.0;
  for (std::size_t i = 0; i < sites; ++i) {
    const double degree = static_cast<double>(
        topology.graph().outEdges(static_cast<graph::NodeId>(i)).size());
    weights[i] = params.gravityExponent == 0.0
                     ? 1.0
                     : std::pow(degree, params.gravityExponent);
    total += weights[i];
  }
  if (total <= 0.0) std::fill(weights.begin(), weights.end(), 1.0);

  util::Rng rng(params.seed);
  util::Rng arrivalRng = rng.fork();
  util::Rng endpointRng = rng.fork();
  util::Rng durationRng = rng.fork();

  FlowWorkload workload;
  workload.flows.reserve(params.flowCount);
  double clockSeconds = 0.0;
  for (std::size_t i = 0; i < params.flowCount; ++i) {
    clockSeconds += params.arrival == ArrivalProcess::kPoisson
                        ? arrivalRng.exponential(params.meanInterarrivalSeconds)
                        : boundedPareto(arrivalRng, params.paretoAlpha,  // dgcheck: ok(R6): arrivalRng is a dedicated forked stream and the arrival clock is a running sum, so draws are inherently sequential
                                        params.paretoMinSeconds,
                                        params.paretoMaxSeconds);
    WorkloadFlow flow;
    flow.start = toMicros(clockSeconds);
    const double duration =
        std::max(params.minDurationSeconds,
                 durationRng.exponential(params.meanDurationSeconds));
    flow.stop = flow.start + toMicros(duration);

    const std::size_t src = endpointRng.weightedIndex(weights);
    std::size_t dst = src;
    for (int attempt = 0; dst == src && attempt < 64; ++attempt)
      dst = endpointRng.weightedIndex(weights);
    // Degenerate weight vectors (one positive entry) cannot produce a
    // distinct destination by sampling; rotate deterministically.
    if (dst == src) dst = (src + 1) % sites;
    flow.flow.source = static_cast<graph::NodeId>(src);
    flow.flow.destination = static_cast<graph::NodeId>(dst);
    workload.flows.push_back(flow);
  }
  return workload;
}

WorkloadParams parseWorkloadSpec(std::string_view spec) {
  const FamilySpec parsed = parseFamilySpec(spec);
  WorkloadParams params;
  if (parsed.family == "poisson") {
    params.arrival = ArrivalProcess::kPoisson;
  } else if (parsed.family == "pareto") {
    params.arrival = ArrivalProcess::kBoundedPareto;
  } else {
    badWorkload("unknown arrival process '" + parsed.family +
                "' (expected poisson or pareto)");
  }
  for (const auto& [key, value] : parsed.params) {
    if (key != "flows" && key != "seed" && key != "mean" && key != "alpha" &&
        key != "min" && key != "max" && key != "duration" &&
        key != "min-duration" && key != "gravity")
      badWorkload("unknown parameter '" + key + "'");
  }
  params.seed = parsed.seed();
  params.flowCount = static_cast<std::size_t>(
      parsed.getInt("flows", 1000, 1, 1'000'000));
  params.meanInterarrivalSeconds =
      parsed.getDouble("mean", params.meanInterarrivalSeconds, 1e-6, 1e9);
  params.paretoAlpha =
      parsed.getDouble("alpha", params.paretoAlpha, 1e-6, 100.0);
  params.paretoMinSeconds =
      parsed.getDouble("min", params.paretoMinSeconds, 1e-6, 1e9);
  params.paretoMaxSeconds =
      parsed.getDouble("max", params.paretoMaxSeconds, 1e-6, 1e9);
  params.meanDurationSeconds =
      parsed.getDouble("duration", params.meanDurationSeconds, 1e-6, 1e9);
  params.minDurationSeconds =
      parsed.getDouble("min-duration", params.minDurationSeconds, 1e-6, 1e9);
  params.gravityExponent =
      parsed.getDouble("gravity", params.gravityExponent, 0.0, 16.0);
  return params;
}

std::string workloadToString(const FlowWorkload& workload,
                             const trace::Topology& topology) {
  std::string out = "workload v1\n";
  for (const WorkloadFlow& flow : workload.flows) {
    out += "flow ";
    out += topology.name(flow.flow.source);
    out += ' ';
    out += topology.name(flow.flow.destination);
    out += ' ';
    out += std::to_string(flow.start);
    out += ' ';
    out += std::to_string(flow.stop);
    out += '\n';
  }
  return out;
}

FlowWorkload workloadFromString(std::string_view text,
                                const trace::Topology& topology) {
  FlowWorkload workload;
  bool sawHeader = false;
  std::size_t lineNumber = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line = util::trim(
        text.substr(pos, eol == std::string_view::npos ? eol : eol - pos));
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++lineNumber;
    if (line.empty() || line.front() == '#') continue;
    const std::vector<std::string> fields = util::splitWhitespace(line);
    const std::string where = " at line " + std::to_string(lineNumber);
    if (!sawHeader) {
      if (fields.size() != 2 || fields[0] != "workload" || fields[1] != "v1")
        badWorkload("expected 'workload v1' header" + where);
      sawHeader = true;
      continue;
    }
    if (fields[0] != "flow" || fields.size() != 5)
      badWorkload("expected 'flow SRC DST START STOP'" + where);
    WorkloadFlow flow;
    const auto src = topology.byName(fields[1]);
    const auto dst = topology.byName(fields[2]);
    if (!src || !dst)
      badWorkload("unknown site '" + (src ? fields[2] : fields[1]) + "'" +
                  where);
    if (*src == *dst)
      badWorkload("flow source equals destination" + where);
    std::int64_t start = 0;
    std::int64_t stop = 0;
    if (!util::parseInt64(fields[3], start) ||
        !util::parseInt64(fields[4], stop) || start < 0 || stop <= start)
      badWorkload("bad flow times" + where);
    flow.flow.source = *src;
    flow.flow.destination = *dst;
    flow.start = start;
    flow.stop = stop;
    workload.flows.push_back(flow);
  }
  if (!sawHeader) badWorkload("missing 'workload v1' header");
  return workload;
}

FlowWorkload workloadFromFile(const std::string& path,
                              const trace::Topology& topology) {
  std::ifstream in(path, std::ios::binary);
  if (!in) badWorkload("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return workloadFromString(buffer.str(), topology);
}

std::pair<std::size_t, std::size_t> flowIntervalWindow(
    const WorkloadFlow& flow, util::SimTime intervalLength,
    std::size_t intervalCount) {
  if (intervalLength <= 0 || intervalCount == 0)
    badWorkload("flowIntervalWindow needs a non-empty interval geometry");
  const auto cap = static_cast<util::SimTime>(intervalCount);
  std::size_t first = static_cast<std::size_t>(
      std::min(flow.start / intervalLength, cap));
  std::size_t last = static_cast<std::size_t>(std::min(
      (flow.stop + intervalLength - 1) / intervalLength, cap));
  // Flows starting at or after trace end still score their final
  // interval; never return an empty window.
  if (first >= intervalCount) first = intervalCount - 1;
  if (last <= first) last = first + 1;
  return {first, last};
}

GroupWorkload generateGroupWorkload(const trace::Topology& topology,
                                    const GroupWorkloadParams& params) {
  const std::size_t sites = topology.siteCount();
  if (sites < 2) badWorkload("topology needs at least two sites");
  const WorkloadParams& base = params.base;
  if (base.flowCount == 0) badWorkload("flowCount must be positive");
  if (base.meanInterarrivalSeconds <= 0 || base.meanDurationSeconds <= 0 ||
      base.minDurationSeconds <= 0)
    badWorkload("time parameters must be positive");
  if (base.paretoAlpha <= 0 || base.paretoMinSeconds <= 0 ||
      base.paretoMaxSeconds <= base.paretoMinSeconds)
    badWorkload("bounded-Pareto parameters need alpha > 0 and max > min > 0");
  if (base.gravityExponent < 0) badWorkload("gravityExponent must be >= 0");
  if (params.receiversMin == 0) badWorkload("receiversMin must be positive");
  if (params.receiversMax < params.receiversMin)
    badWorkload("receiversMax must be >= receiversMin");
  if (params.receiversMax > sites - 1)
    badWorkload("receiversMax exceeds site count minus one");

  std::vector<double> weights(sites);
  double total = 0.0;
  for (std::size_t i = 0; i < sites; ++i) {
    const double degree = static_cast<double>(
        topology.graph().outEdges(static_cast<graph::NodeId>(i)).size());
    weights[i] = base.gravityExponent == 0.0
                     ? 1.0
                     : std::pow(degree, base.gravityExponent);
    total += weights[i];
  }
  if (total <= 0.0) std::fill(weights.begin(), weights.end(), 1.0);

  // Fork order matches generateWorkload for the first three streams, so
  // a group fleet shares the flow fleet's arrival clock and durations
  // for equal base params; the size stream is new and comes last.
  util::Rng rng(base.seed);
  util::Rng arrivalRng = rng.fork();
  util::Rng endpointRng = rng.fork();
  util::Rng durationRng = rng.fork();
  util::Rng sizeRng = rng.fork();

  GroupWorkload workload;
  workload.groups.reserve(base.flowCount);
  std::vector<char> taken(sites, 0);
  double clockSeconds = 0.0;
  for (std::size_t i = 0; i < base.flowCount; ++i) {
    clockSeconds += base.arrival == ArrivalProcess::kPoisson
                        ? arrivalRng.exponential(base.meanInterarrivalSeconds)
                        : boundedPareto(arrivalRng, base.paretoAlpha,  // dgcheck: ok(R6): arrivalRng is a dedicated forked stream and the arrival clock is a running sum, so draws are inherently sequential
                                        base.paretoMinSeconds,
                                        base.paretoMaxSeconds);
    WorkloadGroup group;
    group.start = toMicros(clockSeconds);
    const double duration =
        std::max(base.minDurationSeconds,
                 durationRng.exponential(base.meanDurationSeconds));
    group.stop = group.start + toMicros(duration);

    const std::size_t src = endpointRng.weightedIndex(weights);
    group.source = static_cast<graph::NodeId>(src);

    const std::size_t span = params.receiversMax - params.receiversMin + 1;
    const std::size_t count =
        params.receiversMin +
        (span == 1 ? 0
                   : static_cast<std::size_t>(
                         sizeRng.uniformInt(static_cast<std::uint64_t>(span))));

    std::fill(taken.begin(), taken.end(), 0);
    taken[src] = 1;
    group.receivers.reserve(count);
    std::size_t scan = (src + 1) % sites;
    for (std::size_t r = 0; r < count; ++r) {
      std::size_t pick = src;
      for (int attempt = 0; taken[pick] != 0 && attempt < 64; ++attempt)
        pick = endpointRng.weightedIndex(weights);
      // Degenerate weight vectors cannot produce enough distinct
      // receivers by sampling; take the next untaken site round-robin.
      while (taken[pick] != 0) {
        pick = scan;
        scan = (scan + 1) % sites;
      }
      taken[pick] = 1;
      group.receivers.push_back(static_cast<graph::NodeId>(pick));
    }
    workload.groups.push_back(std::move(group));
  }
  return workload;
}

GroupWorkloadParams parseGroupWorkloadSpec(std::string_view spec) {
  const FamilySpec parsed = parseFamilySpec(spec);
  GroupWorkloadParams params;
  if (parsed.family == "poisson") {
    params.base.arrival = ArrivalProcess::kPoisson;
  } else if (parsed.family == "pareto") {
    params.base.arrival = ArrivalProcess::kBoundedPareto;
  } else {
    badWorkload("unknown arrival process '" + parsed.family +
                "' (expected poisson or pareto)");
  }
  for (const auto& [key, value] : parsed.params) {
    if (key != "flows" && key != "seed" && key != "mean" && key != "alpha" &&
        key != "min" && key != "max" && key != "duration" &&
        key != "min-duration" && key != "gravity" && key != "receivers-min" &&
        key != "receivers-max")
      badWorkload("unknown parameter '" + key + "'");
  }
  params.base.seed = parsed.seed();
  params.base.flowCount =
      static_cast<std::size_t>(parsed.getInt("flows", 1000, 1, 1'000'000));
  params.base.meanInterarrivalSeconds = parsed.getDouble(
      "mean", params.base.meanInterarrivalSeconds, 1e-6, 1e9);
  params.base.paretoAlpha =
      parsed.getDouble("alpha", params.base.paretoAlpha, 1e-6, 100.0);
  params.base.paretoMinSeconds =
      parsed.getDouble("min", params.base.paretoMinSeconds, 1e-6, 1e9);
  params.base.paretoMaxSeconds =
      parsed.getDouble("max", params.base.paretoMaxSeconds, 1e-6, 1e9);
  params.base.meanDurationSeconds =
      parsed.getDouble("duration", params.base.meanDurationSeconds, 1e-6, 1e9);
  params.base.minDurationSeconds = parsed.getDouble(
      "min-duration", params.base.minDurationSeconds, 1e-6, 1e9);
  params.base.gravityExponent =
      parsed.getDouble("gravity", params.base.gravityExponent, 0.0, 16.0);
  params.receiversMin = static_cast<std::size_t>(
      parsed.getInt("receivers-min", 2, 1, 1'000'000));
  params.receiversMax = static_cast<std::size_t>(parsed.getInt(
      "receivers-max", static_cast<std::int64_t>(
                           std::max<std::size_t>(params.receiversMin, 4)),
      1, 1'000'000));
  if (params.receiversMax < params.receiversMin)
    badWorkload("receivers-max must be >= receivers-min");
  return params;
}

std::string groupWorkloadToString(const GroupWorkload& workload,
                                  const trace::Topology& topology) {
  std::string out = "group-workload v1\n";
  for (const WorkloadGroup& group : workload.groups) {
    out += "group ";
    out += topology.name(group.source);
    out += ' ';
    for (std::size_t r = 0; r < group.receivers.size(); ++r) {
      if (r != 0) out += '+';
      out += topology.name(group.receivers[r]);
    }
    out += ' ';
    out += std::to_string(group.start);
    out += ' ';
    out += std::to_string(group.stop);
    out += '\n';
  }
  return out;
}

GroupWorkload groupWorkloadFromString(std::string_view text,
                                      const trace::Topology& topology) {
  GroupWorkload workload;
  bool sawHeader = false;
  std::size_t lineNumber = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line = util::trim(
        text.substr(pos, eol == std::string_view::npos ? eol : eol - pos));
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++lineNumber;
    if (line.empty() || line.front() == '#') continue;
    const std::vector<std::string> fields = util::splitWhitespace(line);
    const std::string where = " at line " + std::to_string(lineNumber);
    if (!sawHeader) {
      if (fields.size() != 2 || fields[0] != "group-workload" ||
          fields[1] != "v1")
        badWorkload("expected 'group-workload v1' header" + where);
      sawHeader = true;
      continue;
    }
    if (fields[0] != "group" || fields.size() != 5)
      badWorkload("expected 'group SRC R1+R2 START STOP'" + where);
    WorkloadGroup group;
    const auto src = topology.byName(fields[1]);
    if (!src) badWorkload("unknown site '" + fields[1] + "'" + where);
    group.source = *src;
    std::string_view receivers = fields[2];
    while (!receivers.empty()) {
      const std::size_t plus = receivers.find('+');
      const std::string_view name = receivers.substr(0, plus);
      receivers = plus == std::string_view::npos
                      ? std::string_view{}
                      : receivers.substr(plus + 1);
      const auto receiver = topology.byName(name);
      if (!receiver)
        badWorkload("unknown site '" + std::string(name) + "'" + where);
      if (*receiver == group.source)
        badWorkload("receiver equals source" + where);
      for (const graph::NodeId existing : group.receivers)
        if (existing == *receiver)
          badWorkload("duplicate receiver '" + std::string(name) + "'" +
                      where);
      group.receivers.push_back(*receiver);
    }
    if (group.receivers.empty())
      badWorkload("group needs at least one receiver" + where);
    std::int64_t start = 0;
    std::int64_t stop = 0;
    if (!util::parseInt64(fields[3], start) ||
        !util::parseInt64(fields[4], stop) || start < 0 || stop <= start)
      badWorkload("bad group times" + where);
    group.start = start;
    group.stop = stop;
    workload.groups.push_back(std::move(group));
  }
  if (!sawHeader) badWorkload("missing 'group-workload v1' header");
  return workload;
}

GroupWorkload groupWorkloadFromFile(const std::string& path,
                                    const trace::Topology& topology) {
  std::ifstream in(path, std::ios::binary);
  if (!in) badWorkload("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return groupWorkloadFromString(buffer.str(), topology);
}

std::pair<std::size_t, std::size_t> groupIntervalWindow(
    const WorkloadGroup& group, util::SimTime intervalLength,
    std::size_t intervalCount) {
  WorkloadFlow flow;
  flow.start = group.start;
  flow.stop = group.stop;
  return flowIntervalWindow(flow, intervalLength, intervalCount);
}

}  // namespace dg::topogen
