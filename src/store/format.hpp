// The "dgtrace" packed trace container: on-disk layout constants, byte
// packing helpers and the error taxonomy shared by the writer, the
// reader and the `dgnet trace` CLI.
//
// Layout (version 1; all fixed-width integers little-endian, doubles as
// raw IEEE-754 bit patterns):
//
//   [header, 40 bytes]
//     0  magic             8 bytes  "dgtrace\0"
//     8  version           u32      kFormatVersion
//     12 intervalLengthUs  i64
//     20 intervalCount     u64
//     28 edgeCount         u32
//     32 chunkIntervals    u32      intervals per data chunk
//     36 headerCrc         u32      CRC-32 of bytes [0, 36)
//   [baseline block]
//     payloadBytes u32, payloadCrc u32, payload:
//       per edge: lossRate (u64 raw double bits),
//                 latencyUs (zigzag varint)
//   [chunk 0] .. [chunk N-1]   N = ceil(intervalCount / chunkIntervals)
//     payloadBytes u32, payloadCrc u32, payload:
//       recordCount varint
//       dictCount   varint, then dictCount raw-double-bits loss values
//                   (first-use order; escape hatch for loss rates that
//                   do not survive ppm quantization)
//       columns, each recordCount entries, records sorted by
//       (interval, edge):
//         intervalDelta varint  (first: interval - chunkFirstInterval)
//         edge          varint  (absolute)
//         lossCode      varint  (even: ppm * 2; odd: dictIndex * 2 + 1)
//         latencyDelta  zigzag varint (latencyUs - baseline latencyUs)
//   [footer]
//     payloadBytes u32, payloadCrc u32, payload: per chunk, 16 bytes:
//       chunkOffset u64 (file offset of the chunk's payloadBytes field),
//       payloadBytes u32, recordCount u32
//   [trailer, 16 bytes at EOF]
//     footerOffset u64, footerPayloadBytes u32, tail magic "dgT1"
//
// The trailer gives O(1) access to the footer and therefore O(1) seek to
// any chunk without scanning the data section. Every variable-length
// region is independently CRC-framed, so corruption is localized and
// reported with a distinct error kind.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace dg::store {

inline constexpr std::array<char, 8> kMagic = {'d', 'g', 't', 'r',
                                               'a', 'c', 'e', '\0'};
inline constexpr std::array<char, 4> kTailMagic = {'d', 'g', 'T', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;

inline constexpr std::size_t kHeaderBytes = 40;
inline constexpr std::size_t kTrailerBytes = 16;
inline constexpr std::size_t kFooterEntryBytes = 16;

/// Default chunk size: one day of 10-second intervals. Chunks bound both
/// the writer's buffered state and the reader's decode granularity.
inline constexpr std::uint32_t kDefaultChunkIntervals = 8640;

/// What went wrong, as a machine-checkable category. Every category maps
/// to a distinct `dgnet trace` exit code so scripts can react without
/// parsing messages.
enum class StoreErrorKind {
  Io,                ///< open/read/write/mmap failure (errno-level)
  BadMagic,          ///< not a dgtrace file at all
  VersionMismatch,   ///< dgtrace file from an incompatible (newer) format
  Truncated,         ///< structurally cut short (missing trailer/bytes)
  ChecksumMismatch,  ///< a CRC-framed region failed verification
  Corrupt,           ///< framing intact but contents are inconsistent
};

/// Stable lowercase name for diagnostics ("checksum-mismatch", ...).
const char* storeErrorKindName(StoreErrorKind kind);

/// Process exit code for the CLI: 0 is success, each kind gets its own
/// non-zero code (Io=2, BadMagic=3, VersionMismatch=4, Truncated=5,
/// ChecksumMismatch=6, Corrupt=7).
int storeErrorExitCode(StoreErrorKind kind);

class StoreError : public std::runtime_error {
 public:
  StoreError(StoreErrorKind kind, const std::string& message)
      : std::runtime_error(std::string(storeErrorKindName(kind)) + ": " +
                           message),
        kind_(kind) {}

  StoreErrorKind kind() const { return kind_; }

 private:
  StoreErrorKind kind_;
};

// ---- little-endian byte packing -------------------------------------

inline void putU32(std::vector<std::byte>& out, std::uint32_t v) {
  out.push_back(static_cast<std::byte>(v & 0xFF));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::byte>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::byte>((v >> 24) & 0xFF));
}

inline void putU64(std::vector<std::byte>& out, std::uint64_t v) {
  putU32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  putU32(out, static_cast<std::uint32_t>(v >> 32));
}

/// Reads a u32 from `in[offset..offset+4)`; the caller has bounds-checked.
inline std::uint32_t getU32(std::span<const std::byte> in,
                            std::size_t offset) {
  return static_cast<std::uint32_t>(in[offset]) |
         (static_cast<std::uint32_t>(in[offset + 1]) << 8) |
         (static_cast<std::uint32_t>(in[offset + 2]) << 16) |
         (static_cast<std::uint32_t>(in[offset + 3]) << 24);
}

inline std::uint64_t getU64(std::span<const std::byte> in,
                            std::size_t offset) {
  return static_cast<std::uint64_t>(getU32(in, offset)) |
         (static_cast<std::uint64_t>(getU32(in, offset + 4)) << 32);
}

inline std::uint64_t doubleBits(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

inline double doubleFromBits(std::uint64_t bits) {
  return std::bit_cast<double>(bits);
}

}  // namespace dg::store
