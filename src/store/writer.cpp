#include "store/writer.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "store/crc32.hpp"
#include "store/varint.hpp"

namespace dg::store {

namespace {

/// Loss codes: even codes carry a parts-per-million quantized value when
/// the quantization is exact (the common case -- generator severities
/// and blip losses are short decimals); odd codes index the chunk's
/// raw-double dictionary. Either way the decoded double is bit-identical
/// to the encoded one.
constexpr std::uint64_t kNoPpm = std::numeric_limits<std::uint64_t>::max();

std::uint64_t exactPpm(double loss) {
  if (!(loss >= 0.0) || loss > 1e12) return kNoPpm;
  const double scaled = loss * 1e6;
  if (scaled >= 9.2e18) return kNoPpm;
  const auto ppm = static_cast<std::int64_t>(std::llround(scaled));
  if (ppm < 0) return kNoPpm;
  if (static_cast<double>(ppm) / 1e6 != loss) return kNoPpm;
  return static_cast<std::uint64_t>(ppm);
}

}  // namespace

StoreWriter::StoreWriter(std::ostream& out, WriterOptions options,
                         telemetry::MetricsRegistry* metrics)
    : out_(&out), options_(options) {
  if (options_.chunkIntervals == 0)
    throw std::invalid_argument("StoreWriter: chunkIntervals must be > 0");
  if (metrics != nullptr) {
    bytesCounter_ = &metrics->counter("dg_store_bytes_written_total");
    chunksCounter_ = &metrics->counter("dg_store_chunks_written_total");
    recordsCounter_ = &metrics->counter("dg_store_records_written_total");
  }
}

void StoreWriter::writeRaw(std::span<const std::byte> bytes) {
  out_->write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  if (!*out_)
    throw StoreError(StoreErrorKind::Io, "write failed after " +
                                             std::to_string(bytesWritten_) +
                                             " bytes");
  bytesWritten_ += bytes.size();
  if (bytesCounter_ != nullptr) bytesCounter_->inc(bytes.size());
}

void StoreWriter::writeFramed(std::span<const std::byte> payload) {
  if (payload.size() > std::numeric_limits<std::uint32_t>::max())
    throw StoreError(StoreErrorKind::Io, "region payload exceeds 4 GiB");
  frame_.clear();
  putU32(frame_, static_cast<std::uint32_t>(payload.size()));
  putU32(frame_, crc32(payload));
  writeRaw(frame_);
  writeRaw(payload);
}

void StoreWriter::begin(util::SimTime intervalLength,
                        std::size_t intervalCount,
                        std::span<const trace::LinkConditions> baseline) {
  if (begun_) throw std::logic_error("StoreWriter: begin() called twice");
  if (intervalLength <= 0)
    throw std::invalid_argument("StoreWriter: interval length must be > 0");
  if (baseline.size() > std::numeric_limits<std::uint32_t>::max())
    throw std::invalid_argument("StoreWriter: too many edges");
  begun_ = true;
  intervalCount_ = intervalCount;
  edgeCount_ = static_cast<std::uint32_t>(baseline.size());
  chunkCount_ = (intervalCount_ + options_.chunkIntervals - 1) /
                options_.chunkIntervals;
  baselineLatencyRef_.assign(baseline.begin(), baseline.end());
  index_.reserve(chunkCount_);

  scratch_.clear();
  for (const char c : kMagic) scratch_.push_back(static_cast<std::byte>(c));
  putU32(scratch_, kFormatVersion);
  putU64(scratch_, static_cast<std::uint64_t>(intervalLength));
  putU64(scratch_, intervalCount_);
  putU32(scratch_, edgeCount_);
  putU32(scratch_, options_.chunkIntervals);
  putU32(scratch_, crc32(scratch_));
  writeRaw(scratch_);

  scratch_.clear();
  for (const trace::LinkConditions& conditions : baseline) {
    putU64(scratch_, doubleBits(conditions.lossRate));
    putZigzag(scratch_, conditions.latency);
  }
  writeFramed(scratch_);
}

void StoreWriter::interval(std::size_t index,
                           std::span<const trace::Deviation> deviations) {
  if (!begun_ || ended_)
    throw std::logic_error("StoreWriter: interval() outside begin()/end()");
  if (index >= intervalCount_)
    throw std::out_of_range("StoreWriter: interval index out of range");
  if (static_cast<std::int64_t>(index) <= lastInterval_)
    throw std::logic_error("StoreWriter: interval indices must increase");
  lastInterval_ = static_cast<std::int64_t>(index);

  while (index >= (chunkIndex_ + 1) * options_.chunkIntervals) flushChunk();

  graph::EdgeId lastEdge = 0;
  bool first = true;
  for (const trace::Deviation& deviation : deviations) {
    if (deviation.first >= edgeCount_)
      throw std::out_of_range("StoreWriter: edge id out of range");
    if (!first && deviation.first <= lastEdge)
      throw std::logic_error("StoreWriter: deviations must be edge-sorted");
    first = false;
    lastEdge = deviation.first;
    pending_.push_back(PendingRecord{index, deviation.first,
                                     deviation.second});
  }
  peakBufferedRecords_ = std::max(peakBufferedRecords_, pending_.size());
}

void StoreWriter::flushChunk() {
  const std::uint64_t firstInterval =
      chunkIndex_ * static_cast<std::uint64_t>(options_.chunkIntervals);

  scratch_.clear();
  putVarint(scratch_, pending_.size());

  // Dictionary of loss values that ppm quantization cannot represent
  // exactly, in first-use order; lookup map keeps encode O(n log n).
  std::vector<std::uint64_t> dictionary;
  std::map<std::uint64_t, std::uint64_t> dictionaryIndex;
  std::vector<std::uint64_t> lossCodes;
  lossCodes.reserve(pending_.size());
  for (const PendingRecord& record : pending_) {
    const std::uint64_t ppm = exactPpm(record.conditions.lossRate);
    if (ppm != kNoPpm) {
      lossCodes.push_back(ppm * 2);
      continue;
    }
    const std::uint64_t bits = doubleBits(record.conditions.lossRate);
    const auto [it, inserted] =
        dictionaryIndex.emplace(bits, dictionary.size());
    if (inserted) dictionary.push_back(bits);
    lossCodes.push_back(it->second * 2 + 1);
  }
  putVarint(scratch_, dictionary.size());
  for (const std::uint64_t bits : dictionary) putU64(scratch_, bits);

  std::uint64_t previousInterval = firstInterval;
  for (const PendingRecord& record : pending_)
    putVarint(scratch_, record.interval - std::exchange(previousInterval,
                                                        record.interval));
  for (const PendingRecord& record : pending_)
    putVarint(scratch_, record.edge);
  for (const std::uint64_t code : lossCodes) putVarint(scratch_, code);
  for (const PendingRecord& record : pending_)
    putZigzag(scratch_, record.conditions.latency -
                            baselineLatencyRef_[record.edge].latency);

  index_.push_back(ChunkIndexEntry{
      bytesWritten_, static_cast<std::uint32_t>(scratch_.size()),
      static_cast<std::uint32_t>(pending_.size())});
  writeFramed(scratch_);
  recordsWritten_ += pending_.size();
  if (recordsCounter_ != nullptr) recordsCounter_->inc(pending_.size());
  if (chunksCounter_ != nullptr) chunksCounter_->inc();
  pending_.clear();
  ++chunkIndex_;
}

void StoreWriter::end() {
  if (!begun_ || ended_)
    throw std::logic_error("StoreWriter: end() outside an open stream");
  while (chunkIndex_ < chunkCount_) flushChunk();
  ended_ = true;

  const std::uint64_t footerOffset = bytesWritten_;
  scratch_.clear();
  for (const ChunkIndexEntry& entry : index_) {
    putU64(scratch_, entry.offset);
    putU32(scratch_, entry.payloadBytes);
    putU32(scratch_, entry.recordCount);
  }
  writeFramed(scratch_);

  scratch_.clear();
  putU64(scratch_, footerOffset);
  putU32(scratch_,
         static_cast<std::uint32_t>(index_.size() * kFooterEntryBytes));
  for (const char c : kTailMagic)
    scratch_.push_back(static_cast<std::byte>(c));
  writeRaw(scratch_);
  out_->flush();
  if (!*out_) throw StoreError(StoreErrorKind::Io, "flush failed");
}

void packTrace(const trace::Trace& trace, const std::string& path,
               WriterOptions options, telemetry::MetricsRegistry* metrics) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    throw StoreError(StoreErrorKind::Io, "cannot open for writing: " + path);
  StoreWriter writer(out, options, metrics);
  trace::streamTrace(trace, writer);
  out.close();
  if (!out) throw StoreError(StoreErrorKind::Io, "close failed: " + path);
}

}  // namespace dg::store
