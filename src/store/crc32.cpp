#include "store/crc32.hpp"

#include <array>

namespace dg::store {

namespace {

constexpr std::array<std::uint32_t, 256> makeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = makeTable();

}  // namespace

std::uint32_t crc32Init() { return 0xFFFFFFFFu; }

std::uint32_t crc32Update(std::uint32_t state,
                          std::span<const std::byte> data) {
  for (const std::byte b : data) {
    state = kTable[(state ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^
            (state >> 8);
  }
  return state;
}

std::uint32_t crc32Final(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32(std::span<const std::byte> data) {
  return crc32Final(crc32Update(crc32Init(), data));
}

}  // namespace dg::store
