// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte spans.
//
// Every variable-length region of a dgtrace file -- header, baseline,
// each chunk, footer -- carries its own CRC so corruption is detected at
// read time and localized to one region. Software table implementation:
// trace files are megabytes, not gigabytes, and the decode cost is
// dominated by varint parsing anyway.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace dg::store {

/// CRC of a whole span (init/final XOR handled internally).
std::uint32_t crc32(std::span<const std::byte> data);

/// Incremental form: feed `crc32Update` the running value (seeded with
/// crc32Init()) and finish with crc32Final().
std::uint32_t crc32Init();
std::uint32_t crc32Update(std::uint32_t state,
                          std::span<const std::byte> data);
std::uint32_t crc32Final(std::uint32_t state);

}  // namespace dg::store
