#include "store/reader.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <utility>

#include "store/crc32.hpp"
#include "store/varint.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define DG_STORE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define DG_STORE_HAVE_MMAP 0
#endif

namespace dg::store {

namespace {

#if DG_STORE_HAVE_MMAP
class MmapSource final : public ByteSource {
 public:
  explicit MmapSource(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
      throw StoreError(StoreErrorKind::Io, "cannot open: " + path);
    struct ::stat st {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      throw StoreError(StoreErrorKind::Io, "cannot stat: " + path);
    }
    size_ = static_cast<std::uint64_t>(st.st_size);
    if (size_ > 0) {
      void* mapped = ::mmap(nullptr, static_cast<std::size_t>(size_),
                            PROT_READ, MAP_PRIVATE, fd, 0);
      if (mapped == MAP_FAILED) {
        ::close(fd);
        throw StoreError(StoreErrorKind::Io, "mmap failed: " + path);
      }
      data_ = static_cast<const std::byte*>(mapped);
    }
    ::close(fd);
  }

  MmapSource(const MmapSource&) = delete;
  MmapSource& operator=(const MmapSource&) = delete;

  ~MmapSource() override {
    if (data_ != nullptr)
      ::munmap(const_cast<std::byte*>(data_),
               static_cast<std::size_t>(size_));
  }

  std::uint64_t size() const override { return size_; }

  std::span<const std::byte> view(std::uint64_t offset,
                                  std::size_t length) override {
    if (offset + length > size_)
      throw StoreError(StoreErrorKind::Io, "mmap view out of range");
    return {data_ + offset, length};
  }

 private:
  const std::byte* data_ = nullptr;
  std::uint64_t size_ = 0;
};
#endif

class StreamSource final : public ByteSource {
 public:
  explicit StreamSource(const std::string& path)
      : in_(path, std::ios::binary) {
    if (!in_)
      throw StoreError(StoreErrorKind::Io, "cannot open: " + path);
    in_.seekg(0, std::ios::end);
    const std::streamoff end = in_.tellg();
    if (end < 0)
      throw StoreError(StoreErrorKind::Io, "cannot size: " + path);
    size_ = static_cast<std::uint64_t>(end);
  }

  std::uint64_t size() const override { return size_; }

  std::span<const std::byte> view(std::uint64_t offset,
                                  std::size_t length) override {
    if (offset + length > size_)
      throw StoreError(StoreErrorKind::Io, "stream view out of range");
    scratch_.resize(length);
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(offset));
    in_.read(reinterpret_cast<char*>(scratch_.data()),
             static_cast<std::streamsize>(length));
    if (!in_)
      throw StoreError(StoreErrorKind::Io,
                       "read failed at offset " + std::to_string(offset));
    return scratch_;
  }

 private:
  std::ifstream in_;
  std::uint64_t size_ = 0;
  std::vector<std::byte> scratch_;
};

class BufferSource final : public ByteSource {
 public:
  explicit BufferSource(std::vector<std::byte> bytes)
      : bytes_(std::move(bytes)) {}

  std::uint64_t size() const override { return bytes_.size(); }

  std::span<const std::byte> view(std::uint64_t offset,
                                  std::size_t length) override {
    if (offset + length > bytes_.size())
      throw StoreError(StoreErrorKind::Io, "buffer view out of range");
    return std::span<const std::byte>(bytes_).subspan(
        static_cast<std::size_t>(offset), length);
  }

 private:
  std::vector<std::byte> bytes_;
};

}  // namespace

std::unique_ptr<ByteSource> openMmapSource(const std::string& path) {
#if DG_STORE_HAVE_MMAP
  return std::make_unique<MmapSource>(path);
#else
  throw StoreError(StoreErrorKind::Io, "mmap unavailable on this platform");
#endif
}

std::unique_ptr<ByteSource> openStreamSource(const std::string& path) {
  return std::make_unique<StreamSource>(path);
}

std::unique_ptr<ByteSource> makeBufferSource(std::vector<std::byte> bytes) {
  return std::make_unique<BufferSource>(std::move(bytes));
}

std::unique_ptr<ByteSource> openByteSource(const std::string& path) {
#if DG_STORE_HAVE_MMAP
  try {
    return openMmapSource(path);
  } catch (const StoreError&) {
    // Fall through: some file systems (or zero-length placeholders)
    // refuse mappings a plain stream can still read.
  }
#endif
  return openStreamSource(path);
}

PackedTraceReader::PackedTraceReader(std::unique_ptr<ByteSource> source,
                                     telemetry::MetricsRegistry* metrics)
    : source_(std::move(source)) {
  if (metrics != nullptr) {
    bytesCounter_ = &metrics->counter("dg_store_bytes_read_total");
    chunksDecodedCounter_ = &metrics->counter("dg_store_chunks_decoded_total");
    chunksVerifiedCounter_ =
        &metrics->counter("dg_store_chunks_verified_total");
    checksumFailuresCounter_ =
        &metrics->counter("dg_store_checksum_failures_total");
  }
  parseContainer();
}

PackedTraceReader PackedTraceReader::open(
    const std::string& path, telemetry::MetricsRegistry* metrics) {
  return PackedTraceReader(openByteSource(path), metrics);
}

std::span<const std::byte> PackedTraceReader::viewChecked(
    std::uint64_t offset, std::uint64_t length, const char* what) {
  if (offset > source_->size() || length > source_->size() - offset)
    throw StoreError(StoreErrorKind::Truncated,
                     std::string(what) + " extends past end of file (need " +
                         std::to_string(offset + length) + " bytes, have " +
                         std::to_string(source_->size()) + ")");
  if (bytesCounter_ != nullptr) bytesCounter_->inc(length);
  return source_->view(offset, static_cast<std::size_t>(length));
}

std::span<const std::byte> PackedTraceReader::readFramed(
    std::uint64_t offset, const char* what, std::uint32_t* payloadBytes) {
  const std::span<const std::byte> head = viewChecked(offset, 8, what);
  const std::uint32_t length = getU32(head, 0);
  const std::uint32_t expectedCrc = getU32(head, 4);
  const std::span<const std::byte> payload =
      viewChecked(offset + 8, length, what);
  if (crc32(payload) != expectedCrc) {
    if (checksumFailuresCounter_ != nullptr) checksumFailuresCounter_->inc();
    throw StoreError(StoreErrorKind::ChecksumMismatch,
                     std::string(what) + " failed CRC-32 verification");
  }
  if (payloadBytes != nullptr) *payloadBytes = length;
  return payload;
}

void PackedTraceReader::parseContainer() {
  info_.fileBytes = source_->size();
  if (info_.fileBytes < kMagic.size())
    throw StoreError(StoreErrorKind::Truncated,
                     "file too small to hold a dgtrace header (" +
                         std::to_string(info_.fileBytes) + " bytes)");
  {
    const std::span<const std::byte> magic =
        viewChecked(0, kMagic.size(), "magic");
    for (std::size_t i = 0; i < kMagic.size(); ++i) {
      if (static_cast<char>(magic[i]) != kMagic[i])
        throw StoreError(StoreErrorKind::BadMagic,
                         "not a dgtrace file (bad magic)");
    }
  }
  if (info_.fileBytes < kHeaderBytes)
    throw StoreError(StoreErrorKind::Truncated, "header cut short");
  const std::span<const std::byte> header =
      viewChecked(0, kHeaderBytes, "header");
  info_.version = getU32(header, 8);
  if (info_.version != kFormatVersion)
    throw StoreError(StoreErrorKind::VersionMismatch,
                     "dgtrace version " + std::to_string(info_.version) +
                         " is not supported (this build reads version " +
                         std::to_string(kFormatVersion) + ")");
  if (crc32(header.first(kHeaderBytes - 4)) !=
      getU32(header, kHeaderBytes - 4)) {
    if (checksumFailuresCounter_ != nullptr) checksumFailuresCounter_->inc();
    throw StoreError(StoreErrorKind::ChecksumMismatch,
                     "header failed CRC-32 verification");
  }
  info_.intervalLength = static_cast<util::SimTime>(getU64(header, 12));
  info_.intervalCount = getU64(header, 20);
  info_.edgeCount = getU32(header, 28);
  info_.chunkIntervals = getU32(header, 32);
  if (info_.intervalLength <= 0)
    throw StoreError(StoreErrorKind::Corrupt,
                     "non-positive interval length in header");
  if (info_.chunkIntervals == 0)
    throw StoreError(StoreErrorKind::Corrupt, "zero chunkIntervals in header");
  info_.chunkCount = (info_.intervalCount + info_.chunkIntervals - 1) /
                     info_.chunkIntervals;

  // Trailer -> footer -> chunk index.
  if (info_.fileBytes < kHeaderBytes + kTrailerBytes)
    throw StoreError(StoreErrorKind::Truncated, "missing trailer");
  const std::span<const std::byte> trailer = viewChecked(
      info_.fileBytes - kTrailerBytes, kTrailerBytes, "trailer");
  for (std::size_t i = 0; i < kTailMagic.size(); ++i) {
    if (static_cast<char>(trailer[12 + i]) != kTailMagic[i])
      throw StoreError(StoreErrorKind::Truncated,
                       "trailer magic missing -- file truncated?");
  }
  const std::uint64_t footerOffset = getU64(trailer, 0);
  const std::uint32_t footerPayloadBytes = getU32(trailer, 8);
  if (footerOffset < kHeaderBytes ||
      footerOffset + 8 + footerPayloadBytes + kTrailerBytes !=
          info_.fileBytes)
    throw StoreError(StoreErrorKind::Corrupt,
                     "trailer's footer location is inconsistent");
  std::uint32_t storedFooterBytes = 0;
  const std::span<const std::byte> footer =
      readFramed(footerOffset, "footer", &storedFooterBytes);
  if (storedFooterBytes != footerPayloadBytes)
    throw StoreError(StoreErrorKind::Corrupt,
                     "footer length disagrees with trailer");
  if (footer.size() % kFooterEntryBytes != 0 ||
      footer.size() / kFooterEntryBytes != info_.chunkCount)
    throw StoreError(StoreErrorKind::Corrupt,
                     "footer index does not match header chunk count");

  index_.clear();
  index_.reserve(info_.chunkCount);
  info_.recordCount = 0;
  for (std::size_t i = 0; i < info_.chunkCount; ++i) {
    IndexEntry entry;
    entry.offset = getU64(footer, i * kFooterEntryBytes);
    entry.payloadBytes = getU32(footer, i * kFooterEntryBytes + 8);
    entry.recordCount = getU32(footer, i * kFooterEntryBytes + 12);
    index_.push_back(entry);
    info_.recordCount += entry.recordCount;
  }

  parseBaseline(kHeaderBytes);

  // The chunks must exactly tile the data section between the baseline
  // block and the footer; any gap or overlap means a corrupt index.
  std::uint64_t expected = dataOffset_;
  for (std::size_t i = 0; i < index_.size(); ++i) {
    if (index_[i].offset != expected)
      throw StoreError(StoreErrorKind::Corrupt,
                       "chunk " + std::to_string(i) +
                           " offset disagrees with the footer index");
    expected += 8 + index_[i].payloadBytes;
  }
  if (expected != footerOffset)
    throw StoreError(StoreErrorKind::Corrupt,
                     "data section does not reach the footer");
}

PackedTraceReader::ChunkGeometry PackedTraceReader::chunkGeometry(
    std::uint64_t index) const {
  if (index >= index_.size())
    throw std::out_of_range("PackedTraceReader::chunkGeometry: chunk " +
                            std::to_string(index) + " of " +
                            std::to_string(index_.size()));
  const IndexEntry& entry = index_[static_cast<std::size_t>(index)];
  ChunkGeometry geometry;
  geometry.firstInterval = index * info_.chunkIntervals;
  geometry.intervals = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(info_.chunkIntervals,
                              info_.intervalCount - geometry.firstInterval));
  geometry.recordCount = entry.recordCount;
  geometry.payloadBytes = entry.payloadBytes;
  geometry.offset = entry.offset;
  return geometry;
}

std::uint64_t PackedTraceReader::contentFingerprint() {
  // Fold the header, the baseline frame's CRC and each chunk's
  // (CRC, payloadBytes, recordCount) into two CRC-32 streams with
  // different seeds, packed into one u64.
  std::vector<std::byte> acc;
  acc.reserve(kHeaderBytes + 8 + index_.size() * 12);
  {
    const std::span<const std::byte> header =
        viewChecked(0, kHeaderBytes, "header");
    acc.insert(acc.end(), header.begin(), header.end());
  }
  {
    // Stored CRC of the baseline frame (offset kHeaderBytes + 4).
    const std::span<const std::byte> baselineCrc =
        viewChecked(kHeaderBytes + 4, 4, "baseline frame");
    acc.insert(acc.end(), baselineCrc.begin(), baselineCrc.end());
  }
  for (const IndexEntry& entry : index_) {
    const std::span<const std::byte> chunkCrc =
        viewChecked(entry.offset + 4, 4, "chunk frame");
    acc.insert(acc.end(), chunkCrc.begin(), chunkCrc.end());
    putU32(acc, entry.payloadBytes);
    putU32(acc, entry.recordCount);
  }
  const std::uint32_t lo = crc32(acc);
  std::uint32_t hi = crc32Init();
  const std::array<std::byte, 4> seed = {
      std::byte{0xD6}, std::byte{0x17}, std::byte{0xAB}, std::byte{0x59}};
  hi = crc32Update(hi, seed);
  hi = crc32Update(hi, acc);
  hi = crc32Final(hi);
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

void PackedTraceReader::parseBaseline(std::uint64_t offset) {
  std::uint32_t payloadBytes = 0;
  std::span<const std::byte> payload =
      readFramed(offset, "baseline block", &payloadBytes);
  dataOffset_ = offset + 8 + payloadBytes;
  baseline_.clear();
  baseline_.reserve(info_.edgeCount);
  for (std::uint32_t e = 0; e < info_.edgeCount; ++e) {
    if (payload.size() < 8)
      throw StoreError(StoreErrorKind::Corrupt,
                       "baseline block ends mid-edge");
    trace::LinkConditions conditions;
    conditions.lossRate = doubleFromBits(getU64(payload, 0));
    payload = payload.subspan(8);
    std::int64_t latency = 0;
    if (!getZigzag(payload, latency))
      throw StoreError(StoreErrorKind::Corrupt,
                       "baseline block has a malformed latency varint");
    conditions.latency = latency;
    baseline_.push_back(conditions);
  }
  if (!payload.empty())
    throw StoreError(StoreErrorKind::Corrupt,
                     "baseline block has trailing bytes");
}

// dgcheck: cold: decodes once per chunk boundary; amortized across the chunk's intervals
void PackedTraceReader::decodeChunk(std::uint64_t index, ChunkData& out) {
  if (index >= info_.chunkCount)
    throw std::out_of_range("PackedTraceReader: chunk index out of range");
  const IndexEntry& entry = index_[static_cast<std::size_t>(index)];
  const std::string label = "chunk " + std::to_string(index);
  std::uint32_t payloadBytes = 0;
  std::span<const std::byte> p =
      readFramed(entry.offset, label.c_str(), &payloadBytes);
  if (payloadBytes != entry.payloadBytes)
    throw StoreError(StoreErrorKind::Corrupt,
                     label + " length disagrees with the footer index");

  out.firstInterval = index * static_cast<std::uint64_t>(info_.chunkIntervals);
  out.intervalsInChunk = static_cast<std::size_t>(
      std::min<std::uint64_t>(info_.chunkIntervals,
                              info_.intervalCount - out.firstInterval));

  std::uint64_t recordCount = 0;
  if (!getVarint(p, recordCount))
    throw StoreError(StoreErrorKind::Corrupt,
                     label + " has a malformed record count");
  if (recordCount != entry.recordCount)
    throw StoreError(StoreErrorKind::Corrupt,
                     label + " record count disagrees with the footer index");
  if (recordCount > payloadBytes)  // each record costs >= 4 payload bytes
    throw StoreError(StoreErrorKind::Corrupt,
                     label + " record count exceeds payload size");
  const auto records = static_cast<std::size_t>(recordCount);

  std::uint64_t dictCount = 0;
  if (!getVarint(p, dictCount))
    throw StoreError(StoreErrorKind::Corrupt,
                     label + " has a malformed dictionary count");
  if (dictCount * 8 > p.size())
    throw StoreError(StoreErrorKind::Corrupt,
                     label + " dictionary overruns the payload");
  out.dictionary.clear();
  out.dictionary.reserve(static_cast<std::size_t>(dictCount));
  for (std::uint64_t d = 0; d < dictCount; ++d) {
    out.dictionary.push_back(
        doubleFromBits(getU64(p, static_cast<std::size_t>(d) * 8)));
  }
  p = p.subspan(static_cast<std::size_t>(dictCount) * 8);

  out.records.clear();
  out.records.resize(records);
  out.offsets.assign(out.intervalsInChunk + 1, 0);

  // Interval column: deltas are unsigned, so intervals are automatically
  // non-decreasing; bucket counts become the per-interval prefix index.
  std::uint64_t current = out.firstInterval;
  for (std::size_t i = 0; i < records; ++i) {
    std::uint64_t delta = 0;
    if (!getVarint(p, delta))
      throw StoreError(StoreErrorKind::Corrupt,
                       label + " has a malformed interval delta");
    current += delta;
    if (current >= out.firstInterval + out.intervalsInChunk)
      throw StoreError(StoreErrorKind::Corrupt,
                       label + " references an interval outside the chunk");
    ++out.offsets[static_cast<std::size_t>(current - out.firstInterval) + 1];
  }
  for (std::size_t i = 1; i < out.offsets.size(); ++i)
    out.offsets[i] += out.offsets[i - 1];

  // Edge column, validated edge-sorted within each interval.
  std::size_t bucket = 0;
  for (std::size_t i = 0; i < records; ++i) {
    while (i >= out.offsets[bucket + 1]) ++bucket;
    std::uint64_t edge = 0;
    if (!getVarint(p, edge))
      throw StoreError(StoreErrorKind::Corrupt,
                       label + " has a malformed edge id");
    if (edge >= info_.edgeCount)
      throw StoreError(StoreErrorKind::Corrupt,
                       label + " references an out-of-range edge id");
    if (i > out.offsets[bucket] &&
        static_cast<graph::EdgeId>(edge) <= out.records[i - 1].first)
      throw StoreError(StoreErrorKind::Corrupt,
                       label + " deviations are not edge-sorted");
    out.records[i].first = static_cast<graph::EdgeId>(edge);
  }

  // Loss column: even codes are exact ppm values, odd codes index the
  // chunk dictionary.
  for (std::size_t i = 0; i < records; ++i) {
    std::uint64_t code = 0;
    if (!getVarint(p, code))
      throw StoreError(StoreErrorKind::Corrupt,
                       label + " has a malformed loss code");
    if ((code & 1) == 0) {
      out.records[i].second.lossRate =
          static_cast<double>(code >> 1) / 1e6;
    } else {
      const std::uint64_t dictIndex = code >> 1;
      if (dictIndex >= dictCount)
        throw StoreError(StoreErrorKind::Corrupt,
                         label + " references a missing dictionary entry");
      out.records[i].second.lossRate =
          out.dictionary[static_cast<std::size_t>(dictIndex)];
    }
  }

  // Latency column: zigzag deltas from the edge's baseline latency.
  for (std::size_t i = 0; i < records; ++i) {
    std::int64_t delta = 0;
    if (!getZigzag(p, delta))
      throw StoreError(StoreErrorKind::Corrupt,
                       label + " has a malformed latency delta");
    out.records[i].second.latency =
        baseline_[out.records[i].first].latency + delta;
  }

  if (!p.empty())
    throw StoreError(StoreErrorKind::Corrupt,
                     label + " has trailing bytes after the columns");
  if (chunksDecodedCounter_ != nullptr) chunksDecodedCounter_->inc();
}

trace::Trace PackedTraceReader::readAll() {
  trace::Trace trace(info_.intervalLength,
                     static_cast<std::size_t>(info_.intervalCount),
                     baseline_);
  ChunkData chunk;
  for (std::uint64_t c = 0; c < info_.chunkCount; ++c) {
    decodeChunk(c, chunk);
    for (std::size_t local = 0; local < chunk.intervalsInChunk; ++local) {
      const std::size_t interval =
          static_cast<std::size_t>(chunk.firstInterval) + local;
      for (std::uint32_t r = chunk.offsets[local];
           r < chunk.offsets[local + 1]; ++r) {
        trace.setCondition(chunk.records[r].first, interval,
                           chunk.records[r].second);
      }
    }
  }
  return trace;
}

PackedTraceReader::VerifyReport PackedTraceReader::verify() {
  VerifyReport report;
  ChunkData chunk;
  for (std::uint64_t c = 0; c < info_.chunkCount; ++c) {
    decodeChunk(c, chunk);
    report.recordsDecoded += chunk.records.size();
    report.bytesRead += 8 + index_[static_cast<std::size_t>(c)].payloadBytes;
    ++report.chunksVerified;
    if (chunksVerifiedCounter_ != nullptr) chunksVerifiedCounter_->inc();
  }
  return report;
}

PackedConditionSource::PackedConditionSource(PackedTraceReader& reader)
    : reader_(&reader), chunkIndex_(0) {}

std::size_t PackedConditionSource::intervalCount() const {
  return static_cast<std::size_t>(reader_->info().intervalCount);
}

std::size_t PackedConditionSource::edgeCount() const {
  return reader_->info().edgeCount;
}

std::span<const trace::LinkConditions> PackedConditionSource::baseline()
    const {
  return reader_->baseline();
}

// dgcheck: hot
std::span<const std::pair<graph::EdgeId, trace::LinkConditions>>
PackedConditionSource::deviationsAt(std::size_t interval) {
  if (interval >= intervalCount())
    throw std::out_of_range("PackedConditionSource: interval out of range");
  const std::uint64_t chunk = reader_->chunkForInterval(interval);
  if (!loaded_ || chunk != chunkIndex_) {
    reader_->decodeChunk(chunk, chunk_);
    chunkIndex_ = chunk;
    loaded_ = true;
  }
  const std::size_t local =
      interval - static_cast<std::size_t>(chunk_.firstInterval);
  return std::span<const trace::Deviation>(chunk_.records)
      .subspan(chunk_.offsets[local],
               chunk_.offsets[local + 1] - chunk_.offsets[local]);
}

bool isPackedTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::array<char, 8> magic{};
  in.read(magic.data(), static_cast<std::streamsize>(magic.size()));
  if (!in) return false;
  return magic == kMagic;
}

trace::Trace loadPackedTrace(const std::string& path,
                             telemetry::MetricsRegistry* metrics) {
  return PackedTraceReader::open(path, metrics).readAll();
}

trace::Trace loadAnyTrace(const std::string& path,
                          telemetry::MetricsRegistry* metrics) {
  if (isPackedTraceFile(path)) return loadPackedTrace(path, metrics);
  // Not packed. Before handing the file to the text parser, rule out the
  // cases where "not packed" really means "unreadable": a file that
  // cannot be opened or is too small to even state a trace header would
  // otherwise surface as a baffling text-parse error.
  std::ifstream probe(path, std::ios::binary);
  if (!probe)
    throw StoreError(StoreErrorKind::Io, "cannot open: " + path);
  probe.seekg(0, std::ios::end);
  const std::streamoff end = probe.tellg();
  if (end < 0)
    throw StoreError(StoreErrorKind::Io, "cannot size: " + path);
  if (end < 4)
    throw StoreError(StoreErrorKind::Io,
                     "file too small (" + std::to_string(end) +
                         " bytes) to be a trace: " + path);
  return trace::Trace::load(path);
}

}  // namespace dg::store
