// Streaming dgtrace writer.
//
// A StoreWriter is a trace::TraceSink that encodes the stream straight
// into the packed container: it buffers at most one chunk's records (one
// day of intervals by default) plus the running footer index, so peak
// memory is independent of trace length. Any trace producer that speaks
// TraceSink -- streamTrace() over an in-memory Trace, the synthetic
// generator's streaming path -- can therefore pack week- or year-scale
// traces in constant space.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "store/format.hpp"
#include "telemetry/metrics.hpp"
#include "trace/stream.hpp"

namespace dg::store {

struct WriterOptions {
  /// Intervals per chunk (default: one day of 10-second intervals).
  std::uint32_t chunkIntervals = kDefaultChunkIntervals;
};

class StoreWriter final : public trace::TraceSink {
 public:
  /// Writes to `out` (binary mode; the caller keeps it alive until after
  /// end()). I/O failures surface as StoreError{Io}. `metrics`, when
  /// non-null, receives dg_store_bytes_written_total,
  /// dg_store_chunks_written_total and dg_store_records_written_total.
  explicit StoreWriter(std::ostream& out, WriterOptions options = {},
                       telemetry::MetricsRegistry* metrics = nullptr);

  void begin(util::SimTime intervalLength, std::size_t intervalCount,
             std::span<const trace::LinkConditions> baseline) override;
  void interval(std::size_t index,
                std::span<const trace::Deviation> deviations) override;
  /// Flushes the remaining chunks, footer and trailer.
  void end() override;

  std::uint64_t bytesWritten() const { return bytesWritten_; }
  std::uint64_t recordsWritten() const { return recordsWritten_; }
  /// Peak buffered record count across all chunks: the writer's memory
  /// high-water mark, asserted on by the bounded-memory tests.
  std::size_t peakBufferedRecords() const { return peakBufferedRecords_; }

 private:
  struct PendingRecord {
    std::uint64_t interval = 0;
    graph::EdgeId edge = 0;
    trace::LinkConditions conditions;
  };
  struct ChunkIndexEntry {
    std::uint64_t offset = 0;
    std::uint32_t payloadBytes = 0;
    std::uint32_t recordCount = 0;
  };

  void writeRaw(std::span<const std::byte> bytes);
  /// Frames `payload` as payloadBytes/CRC/payload and appends it.
  void writeFramed(std::span<const std::byte> payload);
  /// Encodes and writes the current chunk (possibly empty), advancing
  /// chunkIndex_.
  void flushChunk();

  std::ostream* out_;
  WriterOptions options_;
  telemetry::Counter* bytesCounter_ = nullptr;
  telemetry::Counter* chunksCounter_ = nullptr;
  telemetry::Counter* recordsCounter_ = nullptr;

  bool begun_ = false;
  bool ended_ = false;
  std::uint64_t intervalCount_ = 0;
  std::uint32_t edgeCount_ = 0;
  std::uint64_t chunkCount_ = 0;
  std::uint64_t chunkIndex_ = 0;   ///< next chunk to flush
  std::int64_t lastInterval_ = -1; ///< last interval() index seen
  std::vector<trace::LinkConditions> baselineLatencyRef_;
  std::vector<PendingRecord> pending_;
  std::vector<ChunkIndexEntry> index_;
  std::vector<std::byte> scratch_;
  std::vector<std::byte> frame_;
  std::uint64_t bytesWritten_ = 0;
  std::uint64_t recordsWritten_ = 0;
  std::size_t peakBufferedRecords_ = 0;
};

/// Packs an in-memory trace to `path` (atomic enough for our use: the
/// file is written in one pass and only readable once the trailer lands).
void packTrace(const trace::Trace& trace, const std::string& path,
               WriterOptions options = {},
               telemetry::MetricsRegistry* metrics = nullptr);

}  // namespace dg::store
