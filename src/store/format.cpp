#include "store/format.hpp"

namespace dg::store {

const char* storeErrorKindName(StoreErrorKind kind) {
  switch (kind) {
    case StoreErrorKind::Io:
      return "io-error";
    case StoreErrorKind::BadMagic:
      return "bad-magic";
    case StoreErrorKind::VersionMismatch:
      return "version-mismatch";
    case StoreErrorKind::Truncated:
      return "truncated";
    case StoreErrorKind::ChecksumMismatch:
      return "checksum-mismatch";
    case StoreErrorKind::Corrupt:
      return "corrupt";
  }
  return "unknown";
}

int storeErrorExitCode(StoreErrorKind kind) {
  switch (kind) {
    case StoreErrorKind::Io:
      return 2;
    case StoreErrorKind::BadMagic:
      return 3;
    case StoreErrorKind::VersionMismatch:
      return 4;
    case StoreErrorKind::Truncated:
      return 5;
    case StoreErrorKind::ChecksumMismatch:
      return 6;
    case StoreErrorKind::Corrupt:
      return 7;
  }
  return 1;
}

}  // namespace dg::store
