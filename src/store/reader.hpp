// dgtrace reader: validated random access to packed traces.
//
// The reader opens a ByteSource (mmap when the platform allows it, with
// a buffered-stream fallback, or an in-memory buffer in tests), validates
// the header/trailer/footer framing once, and then serves:
//   - info()      -- geometry and layout, O(1);
//   - readAll()   -- full decode to an in-memory trace::Trace;
//   - verify()    -- decode + CRC-check every region, counting records;
//   - decodeChunk -- one chunk into a reusable workspace, which is what
//     PackedConditionSource uses to feed ConditionTimeline cursors with
//     memory bounded by a single chunk.
// On an mmap source every chunk payload is a zero-copy view of the file;
// only the decoded records are materialized.
//
// All failures are StoreError with a distinct kind (see format.hpp); the
// reader never returns partially-decoded data.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "store/format.hpp"
#include "telemetry/metrics.hpp"
#include "trace/condition_timeline.hpp"
#include "trace/stream.hpp"
#include "trace/trace.hpp"

namespace dg::store {

/// Read access to a contiguous byte container. view() returns a span of
/// [offset, offset+length); mmap and buffer sources are zero-copy, the
/// stream fallback copies into an internal scratch buffer (the returned
/// span dies at the next view() call).
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  virtual std::uint64_t size() const = 0;
  virtual std::span<const std::byte> view(std::uint64_t offset,
                                          std::size_t length) = 0;
};

/// Memory-mapped file (POSIX). Throws StoreError{Io} if the platform or
/// file refuses the mapping.
std::unique_ptr<ByteSource> openMmapSource(const std::string& path);

/// Buffered ifstream fallback; works everywhere a file does.
std::unique_ptr<ByteSource> openStreamSource(const std::string& path);

/// Owning in-memory source, for tests and corruption fixtures.
std::unique_ptr<ByteSource> makeBufferSource(std::vector<std::byte> bytes);

/// mmap with stream fallback; StoreError{Io} if the file cannot be read.
std::unique_ptr<ByteSource> openByteSource(const std::string& path);

struct PackedTraceInfo {
  std::uint32_t version = 0;
  util::SimTime intervalLength = 0;
  std::uint64_t intervalCount = 0;
  std::uint32_t edgeCount = 0;
  std::uint32_t chunkIntervals = 0;
  std::uint64_t chunkCount = 0;
  std::uint64_t recordCount = 0;  ///< total deviation records (from index)
  std::uint64_t fileBytes = 0;
};

class PackedTraceReader {
 public:
  /// Validates header, trailer, footer index and baseline block (each
  /// CRC-checked) before returning. `metrics`, when non-null, receives
  /// dg_store_bytes_read_total, dg_store_chunks_decoded_total,
  /// dg_store_chunks_verified_total and
  /// dg_store_checksum_failures_total.
  explicit PackedTraceReader(std::unique_ptr<ByteSource> source,
                             telemetry::MetricsRegistry* metrics = nullptr);

  /// Opens `path` via openByteSource.
  static PackedTraceReader open(const std::string& path,
                                telemetry::MetricsRegistry* metrics = nullptr);

  const PackedTraceInfo& info() const { return info_; }
  std::span<const trace::LinkConditions> baseline() const {
    return baseline_;
  }

  /// Decoded records of one chunk: edge-sorted deviations concatenated in
  /// interval order, plus a per-interval prefix index (local to the
  /// chunk: `offsets[i]..offsets[i+1]` are the deviations of interval
  /// `firstInterval + i`).
  struct ChunkData {
    std::uint64_t firstInterval = 0;
    std::size_t intervalsInChunk = 0;
    std::vector<trace::Deviation> records;
    std::vector<std::uint32_t> offsets;  ///< size intervalsInChunk + 1
    std::vector<double> dictionary;      ///< decode workspace
  };

  std::uint64_t chunkForInterval(std::uint64_t interval) const {
    return interval / info_.chunkIntervals;
  }

  /// Geometry of one chunk, O(1) from the footer index (no decode).
  struct ChunkGeometry {
    std::uint64_t firstInterval = 0;
    std::uint32_t intervals = 0;     ///< intervals covered (tail may be short)
    std::uint32_t recordCount = 0;   ///< deviation records in the chunk
    std::uint32_t payloadBytes = 0;  ///< compressed payload size
    std::uint64_t offset = 0;        ///< file offset of the chunk frame
  };
  ChunkGeometry chunkGeometry(std::uint64_t index) const;

  /// Container identity for cache keying (the decision-memo sidecar):
  /// CRC-32s folded over the header bytes, the baseline frame's stored
  /// CRC, and every chunk's stored CRC / payload size / record count,
  /// packed into 64 bits. Reads only O(chunkCount) frame headers -- no
  /// payload decode -- yet changes whenever any payload byte changes,
  /// because each frame's CRC covers its payload. Not an integrity check
  /// (decode paths verify CRCs themselves); two files with equal
  /// fingerprints are the same recorded trace for caching purposes.
  std::uint64_t contentFingerprint();

  /// Decodes chunk `index` into `out` (reusing its capacity). CRC is
  /// verified before decode.
  void decodeChunk(std::uint64_t index, ChunkData& out);

  /// Full decode to an in-memory Trace (bit-identical to what was
  /// streamed into the writer).
  trace::Trace readAll();

  struct VerifyReport {
    std::uint64_t chunksVerified = 0;
    std::uint64_t recordsDecoded = 0;
    std::uint64_t bytesRead = 0;
  };

  /// Decodes and CRC-checks every chunk; throws the first StoreError
  /// found. A clean return means every byte of the file was validated.
  VerifyReport verify();

 private:
  std::span<const std::byte> viewChecked(std::uint64_t offset,
                                         std::uint64_t length,
                                         const char* what);
  /// Reads a payloadBytes/CRC-framed region starting at `offset`,
  /// verifying the checksum.
  std::span<const std::byte> readFramed(std::uint64_t offset,
                                        const char* what,
                                        std::uint32_t* payloadBytes = nullptr);
  void parseContainer();
  void parseBaseline(std::uint64_t offset);

  std::unique_ptr<ByteSource> source_;
  telemetry::Counter* bytesCounter_ = nullptr;
  telemetry::Counter* chunksDecodedCounter_ = nullptr;
  telemetry::Counter* chunksVerifiedCounter_ = nullptr;
  telemetry::Counter* checksumFailuresCounter_ = nullptr;
  PackedTraceInfo info_;
  std::uint64_t dataOffset_ = 0;  ///< first chunk's file offset
  std::vector<trace::LinkConditions> baseline_;
  struct IndexEntry {
    std::uint64_t offset = 0;
    std::uint32_t payloadBytes = 0;
    std::uint32_t recordCount = 0;
  };
  std::vector<IndexEntry> index_;
};

/// ConditionSource over a packed trace: feeds ConditionTimeline cursors
/// chunk by chunk, so playback over a packed trace never holds more than
/// one decoded chunk. The reader must outlive the source.
class PackedConditionSource final : public trace::ConditionSource {
 public:
  explicit PackedConditionSource(PackedTraceReader& reader);

  std::size_t intervalCount() const override;
  std::size_t edgeCount() const override;
  std::span<const trace::LinkConditions> baseline() const override;
  std::span<const std::pair<graph::EdgeId, trace::LinkConditions>>
  deviationsAt(std::size_t interval) override;

 private:
  PackedTraceReader* reader_;
  std::uint64_t chunkIndex_;  ///< currently decoded chunk (or none)
  bool loaded_ = false;
  PackedTraceReader::ChunkData chunk_;
};

/// True if `path` starts with the dgtrace magic (missing/short files are
/// simply "not packed"; open errors surface later from the real reader).
bool isPackedTraceFile(const std::string& path);

/// Loads a packed trace file to an in-memory Trace.
trace::Trace loadPackedTrace(const std::string& path,
                             telemetry::MetricsRegistry* metrics = nullptr);

/// Loads a trace in either format, sniffing the magic: packed dgtrace
/// via the store reader, anything else via the text parser.
trace::Trace loadAnyTrace(const std::string& path,
                          telemetry::MetricsRegistry* metrics = nullptr);

}  // namespace dg::store
