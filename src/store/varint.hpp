// LEB128 varints and zigzag signed mapping for dgtrace chunk payloads.
//
// The columnar encoding stores interval deltas, edge ids, loss codes and
// latency deltas as varints: the common case (consecutive intervals,
// small edge ids, sub-second latency deltas) packs into one or two bytes
// per field. Decoding is bounds-checked against the payload span and
// never reads past it -- a truncated or overlong varint reports failure
// instead of clamping, so the reader can surface Corrupt precisely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dg::store {

inline void putVarint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

/// Maps a signed value to an unsigned one with small absolute values
/// staying small: 0,-1,1,-2,... -> 0,1,2,3,...
inline std::uint64_t zigzagEncode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzagDecode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

inline void putZigzag(std::vector<std::byte>& out, std::int64_t v) {
  putVarint(out, zigzagEncode(v));
}

/// Decodes one varint from the front of `in`, advancing it past the
/// consumed bytes. Returns false (leaving `in` unspecified) on a
/// truncated or overlong (>10 byte) encoding.
inline bool getVarint(std::span<const std::byte>& in, std::uint64_t& out) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  std::size_t i = 0;
  while (i < in.size() && shift < 64) {
    const auto b = static_cast<std::uint8_t>(in[i]);
    value |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    ++i;
    if ((b & 0x80) == 0) {
      in = in.subspan(i);
      out = value;
      return true;
    }
    shift += 7;
  }
  return false;
}

inline bool getZigzag(std::span<const std::byte>& in, std::int64_t& out) {
  std::uint64_t raw = 0;
  if (!getVarint(in, raw)) return false;
  out = zigzagDecode(raw);
  return true;
}

}  // namespace dg::store
