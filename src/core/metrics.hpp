// Per-flow delivery metrics for the live transport service.
#pragma once

#include <cstdint>

#include "util/stats.hpp"

namespace dg::core {

struct FlowStats {
  std::uint64_t sent = 0;
  std::uint64_t deliveredOnTime = 0;
  std::uint64_t deliveredLate = 0;
  /// Transmissions (data + retransmissions) attributed to the flow; the
  /// paper's cost metric is transmissions / sent.
  std::uint64_t transmissions = 0;
  /// One-way latency of on-time-or-late deliveries, microseconds.
  util::OnlineStats latencyUs;

  std::uint64_t delivered() const { return deliveredOnTime + deliveredLate; }
  std::uint64_t lost() const {
    return sent >= delivered() ? sent - delivered() : 0;
  }
  /// Fraction of sent packets delivered within the deadline.
  double onTimeRate() const {
    return sent > 0 ? static_cast<double>(deliveredOnTime) /
                          static_cast<double>(sent)
                    : 0.0;
  }
  /// Fraction of sent packets NOT delivered within the deadline. A flow
  /// that never sent has demonstrated no availability at all: report it
  /// as fully unavailable rather than the (previous, misleading) 0.0,
  /// which read as a perfect score for an idle flow.
  double unavailability() const { return sent > 0 ? 1.0 - onTimeRate() : 1.0; }
  double costPerPacket() const {
    return sent > 0 ? static_cast<double>(transmissions) /
                          static_cast<double>(sent)
                    : 0.0;
  }
};

}  // namespace dg::core
