// Sliding-window duplicate suppression for per-flow sequence numbers.
//
// The forwarding engine must answer "have I seen (flow, seq) before?" for
// every arriving packet. An unordered_set works but grows without bound
// on long-running flows; this window keeps O(window) memory with O(1)
// operations by exploiting that sequences are assigned monotonically at
// the source: anything older than the window is treated as already seen
// (a packet that old is far past any deadline anyway).
#pragma once

#include <cstdint>
#include <vector>

namespace dg::core {

class SequenceWindow {
 public:
  /// `windowSize` is rounded up to a power of two; it should comfortably
  /// exceed deadline/packet-interval (the maximum useful reordering
  /// distance). Default 4096 covers a 65 ms deadline at far beyond
  /// realistic packet rates.
  explicit SequenceWindow(std::size_t windowSize = 4096);

  /// Marks the sequence as seen. Returns true if it was NOT seen before
  /// (i.e. the caller holds the first copy), false for duplicates and for
  /// sequences older than the window.
  bool insert(std::uint64_t sequence);

  /// True if the sequence has been seen (or predates the window).
  bool contains(std::uint64_t sequence) const;

  /// Highest sequence ever inserted + 1 (0 when empty).
  std::uint64_t frontier() const { return frontier_; }

  std::size_t windowSize() const { return seen_.size(); }

 private:
  std::size_t slot(std::uint64_t sequence) const {
    return static_cast<std::size_t>(sequence) & mask_;
  }
  /// Sequence is below the retained range.
  bool belowWindow(std::uint64_t sequence) const {
    return frontier_ > seen_.size() &&
           sequence < frontier_ - seen_.size();
  }

  std::vector<std::uint64_t> seen_;  ///< slot -> sequence + 1 (0 = empty)
  std::size_t mask_;
  std::uint64_t frontier_ = 0;
};

}  // namespace dg::core
