#include "core/monitor.hpp"

#include <cmath>

namespace dg::core {

LinkMonitor::LinkMonitor(const graph::Graph& overlay,
                         std::vector<trace::LinkConditions> baseline,
                         int minSamples)
    : baseline_(std::move(baseline)),
      minSamples_(minSamples),
      attempts_(overlay.edgeCount(), 0),
      receptions_(overlay.edgeCount(), 0),
      latencySumUs_(overlay.edgeCount(), 0.0) {
  lossEstimate_.reserve(overlay.edgeCount());
  latencyEstimate_.reserve(overlay.edgeCount());
  for (const trace::LinkConditions& c : baseline_) {
    lossEstimate_.push_back(c.lossRate);
    latencyEstimate_.push_back(c.latency);
  }
}

void LinkMonitor::recordTransmission(graph::EdgeId edge) {
  ++attempts_[edge];
}

void LinkMonitor::recordReception(graph::EdgeId edge, util::SimTime latency) {
  ++receptions_[edge];
  latencySumUs_[edge] += static_cast<double>(latency);
}

void LinkMonitor::setTelemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  rollsCounter_ = nullptr;
  staleLinksCounter_ = nullptr;
  lossSummary_ = nullptr;
  if (telemetry_ == nullptr) return;
  rollsCounter_ =
      &telemetry_->metrics.counter("dg_core_monitor_rolls_total");
  staleLinksCounter_ =
      &telemetry_->metrics.counter("dg_core_monitor_stale_links_total");
  lossSummary_ =
      &telemetry_->metrics.summary("dg_core_monitor_loss_estimate");
}

void LinkMonitor::rollInterval() {
  std::uint64_t staleLinks = 0;
  for (std::size_t e = 0; e < attempts_.size(); ++e) {
    if (attempts_[e] >= static_cast<std::uint64_t>(minSamples_)) {
      const double received = static_cast<double>(receptions_[e]);
      const double sent = static_cast<double>(attempts_[e]);
      lossEstimate_[e] = 1.0 - received / sent;
      latencyEstimate_[e] =
          receptions_[e] > 0
              ? static_cast<util::SimTime>(
                    std::llround(latencySumUs_[e] / received))
              : baseline_[e].latency;
    } else {
      // Too little traffic: the estimate falls back to the baseline and
      // routing sees stale information for this link.
      ++staleLinks;
      lossEstimate_[e] = baseline_[e].lossRate;
      latencyEstimate_[e] = baseline_[e].latency;
    }
    if (lossSummary_ != nullptr) lossSummary_->observe(lossEstimate_[e]);
    attempts_[e] = 0;
    receptions_[e] = 0;
    latencySumUs_[e] = 0.0;
  }
  if (telemetry_ != nullptr) {
    rollsCounter_->inc();
    staleLinksCounter_->inc(staleLinks);
    telemetry_->trace.record(telemetry_->now,
                             telemetry::TraceEventKind::IntervalRolled, -1,
                             -1, -1, static_cast<double>(staleLinks));
  }
}

routing::NetworkView LinkMonitor::view() const {
  return routing::NetworkView(lossEstimate_, latencyEstimate_);
}

}  // namespace dg::core
