// Link monitor: turns observed per-link transmissions and receptions
// into the per-interval loss/latency estimates that drive routing.
//
// This is the live counterpart of the paper's data collection: each
// overlay link's loss rate and latency are estimated over a monitoring
// interval from the traffic (data + probes) that crossed it, and become
// visible to routing only when the interval closes -- the one-interval
// staleness that the playback engine models directly.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "routing/network_view.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/conditions.hpp"
#include "util/sim_time.hpp"

namespace dg::core {

class LinkMonitor {
 public:
  /// `baseline` supplies the estimates assumed before any measurement
  /// exists (and when an interval carries too few samples).
  LinkMonitor(const graph::Graph& overlay,
              std::vector<trace::LinkConditions> baseline,
              int minSamples = 8);

  /// Records a transmission attempt on `edge`.
  void recordTransmission(graph::EdgeId edge);
  /// Records a successful reception on `edge` with the observed one-way
  /// latency.
  void recordReception(graph::EdgeId edge, util::SimTime latency);

  /// Closes the current measurement interval: links with at least
  /// `minSamples` attempts get fresh loss/latency estimates; links
  /// without enough traffic fall back to the baseline (in a real
  /// deployment probe traffic guarantees samples on every link).
  void rollInterval();

  /// The routing view built from the most recently closed interval.
  routing::NetworkView view() const;

  std::uint64_t attempts(graph::EdgeId edge) const {
    return attempts_[edge];
  }

  /// Attaches telemetry (nullable): counts rolled intervals, summarizes
  /// the fresh loss estimates of each roll, tracks how many links fell
  /// back to the baseline (staleness), and records IntervalRolled trace
  /// events stamped with `telemetry->now`.
  void setTelemetry(telemetry::Telemetry* telemetry);

 private:
  std::vector<trace::LinkConditions> baseline_;
  int minSamples_;
  // Accumulating (current, not yet visible) interval.
  std::vector<std::uint64_t> attempts_;
  std::vector<std::uint64_t> receptions_;
  std::vector<double> latencySumUs_;
  // Finalized estimates (visible to routing).
  std::vector<double> lossEstimate_;
  std::vector<util::SimTime> latencyEstimate_;

  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Counter* rollsCounter_ = nullptr;
  telemetry::Counter* staleLinksCounter_ = nullptr;
  telemetry::SummaryMetric* lossSummary_ = nullptr;
};

}  // namespace dg::core
