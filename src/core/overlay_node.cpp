#include "core/overlay_node.hpp"

#include <algorithm>

namespace dg::core {

OverlayNode::OverlayNode(graph::NodeId id, net::SimulatedNetwork& network,
                         FlowDirectory& directory, OverlayNodeConfig config)
    : id_(id), network_(&network), directory_(&directory), config_(config) {}

void OverlayNode::setTelemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  duplicatesCounter_ = nullptr;
  expiredCounter_ = nullptr;
  nacksCounter_ = nullptr;
  retransmissionsCounter_ = nullptr;
  linkStateFloodsCounter_ = nullptr;
  linkStateAcceptedCounter_ = nullptr;
  if (telemetry_ == nullptr) return;
  const telemetry::Labels labels{{"node", std::to_string(id_)}};
  duplicatesCounter_ = &telemetry_->metrics.counter(
      "dg_core_duplicates_dropped_total", labels);
  expiredCounter_ =
      &telemetry_->metrics.counter("dg_core_expired_dropped_total", labels);
  nacksCounter_ =
      &telemetry_->metrics.counter("dg_core_nacks_sent_total", labels);
  retransmissionsCounter_ = &telemetry_->metrics.counter(
      "dg_core_retransmissions_sent_total", labels);
  linkStateFloodsCounter_ = &telemetry_->metrics.counter(
      "dg_core_link_state_floods_total", labels);
  linkStateAcceptedCounter_ = &telemetry_->metrics.counter(
      "dg_core_link_state_accepted_total", labels);
}

void OverlayNode::setCrashed(bool crashed) {
  if (crashed_ == crashed) return;
  crashed_ = crashed;
  if (crashed) return;
  // Restart: soft state is gone. The link-state epoch deliberately
  // survives so peers' newest-epoch dedup accepts post-restart floods.
  seen_.clear();
  receive_.clear();
  sendBuffers_.clear();
  if (linkState_) {
    LinkStateState& state = *linkState_;
    for (std::size_t e = 0; e < state.baseline.size(); ++e) {
      state.lossView[e] = state.baseline[e].lossRate;
      state.latencyView[e] = state.baseline[e].latency;
    }
    std::fill(state.probesReceived.begin(), state.probesReceived.end(), 0);
    std::fill(state.probeLatencySumUs.begin(), state.probeLatencySumUs.end(),
              0.0);
  }
}

void OverlayNode::handlePacket(graph::EdgeId arrivalEdge,
                               const net::Packet& packet) {
  if (crashed_) {
    ++crashDropped_;
    return;
  }
  switch (packet.type) {
    case net::Packet::Type::Data:
    case net::Packet::Type::Retransmission:
      handleData(arrivalEdge, packet);
      return;
    case net::Packet::Type::Nack:
      handleNack(arrivalEdge, packet);
      return;
    case net::Packet::Type::Probe:
      handleProbe(arrivalEdge, packet);
      return;
    case net::Packet::Type::LinkState:
      handleLinkState(arrivalEdge, packet);
      return;
  }
}

void OverlayNode::originate(const FlowContext& context,
                            net::SequenceNumber sequence,
                            util::SimTime originTime) {
  if (crashed_) return;
  net::Packet packet;
  packet.type = net::Packet::Type::Data;
  packet.flow = context.id;
  packet.sequence = sequence;
  packet.originTime = originTime;
  packet.graphMask = context.graphMask;
  seen_.try_emplace(context.id).first->second.insert(sequence);
  forward(context, packet, graph::kInvalidEdge);
}

void OverlayNode::handleData(graph::EdgeId arrivalEdge,
                             const net::Packet& packet) {
  const FlowContext* context = directory_->flowContext(packet.flow);
  if (context == nullptr) return;

  // Per-hop recovery bookkeeping runs for every copy, even duplicates:
  // link sequencing is a property of the link, not of the flood.
  if (packet.type == net::Packet::Type::Data && config_.recoveryEnabled) {
    noteSequenceForRecovery(arrivalEdge, packet);
  }

  // First-copy suppression.
  auto& seen = seen_.try_emplace(packet.flow).first->second;
  if (!seen.insert(packet.sequence)) {
    ++duplicatesDropped_;
    if (duplicatesCounter_ != nullptr) duplicatesCounter_->inc();
    return;
  }

  if (id_ == context->flow.destination) {
    directory_->onDelivered(packet.flow, packet);
    // A destination can still have member out-edges (e.g. flooding); fall
    // through so the dissemination semantics stay uniform.
  }
  forward(*context, packet, arrivalEdge);
}

void OverlayNode::forward(const FlowContext& context,
                          const net::Packet& packet,
                          graph::EdgeId arrivalEdge) {
  const bool stamped = packet.graphMask != 0;
  if (!stamped && context.activeGraph == nullptr) return;
  const util::SimTime age = network_->simulator().now() - packet.originTime;
  if (age >= context.deadline) {
    ++expiredDropped_;
    if (expiredCounter_ != nullptr) expiredCounter_->inc();
    return;  // cannot be useful downstream anymore
  }
  const graph::Graph& overlay = network_->overlay();
  const graph::NodeId arrivalNeighbor =
      arrivalEdge == graph::kInvalidEdge ? graph::kInvalidNode
                                         : overlay.edge(arrivalEdge).from;
  // Member out-edges come either from the stamped mask (distributed
  // mode) or from the locally known active graph (centralized mode).
  const auto forwardOn = [&](graph::EdgeId out) {
    const graph::NodeId to = overlay.edge(out).to;
    if (to == arrivalNeighbor) return;  // no-echo rule
    net::Packet copy = packet;
    copy.type = net::Packet::Type::Data;
    copy.nackSequences.clear();
    if (config_.recoveryEnabled) bufferForRetransmit(out, copy);
    network_->transmit(out, std::move(copy));
  };
  if (stamped) {
    for (const graph::EdgeId out : overlay.outEdges(id_)) {
      if (packet.graphMask & (std::uint64_t{1} << out)) forwardOn(out);
    }
  } else {
    for (const graph::EdgeId out : context.activeGraph->outEdges(id_)) {
      forwardOn(out);
    }
  }
}

void OverlayNode::enableLinkState(
    std::vector<trace::LinkConditions> baseline, LinkStateConfig config) {
  linkState_ = std::make_unique<LinkStateState>();
  linkState_->config = config;
  linkState_->lossView.reserve(baseline.size());
  linkState_->latencyView.reserve(baseline.size());
  for (const trace::LinkConditions& c : baseline) {
    linkState_->lossView.push_back(c.lossRate);
    linkState_->latencyView.push_back(c.latency);
  }
  linkState_->baseline = std::move(baseline);
  linkState_->probesReceived.assign(network_->overlay().edgeCount(), 0);
  linkState_->probeLatencySumUs.assign(network_->overlay().edgeCount(), 0.0);
  linkState_->newestEpochFrom.assign(network_->overlay().nodeCount(), 0);
}

void OverlayNode::handleProbe(graph::EdgeId arrivalEdge,
                              const net::Packet& packet) {
  if (!linkState_) return;
  ++linkState_->probesReceived[arrivalEdge];
  linkState_->probeLatencySumUs[arrivalEdge] += static_cast<double>(
      network_->simulator().now() - packet.hopSendTime);
}

void OverlayNode::handleLinkState(graph::EdgeId arrivalEdge,
                                  const net::Packet& packet) {
  if (!linkState_) return;
  if (packet.linkStateOrigin == id_) return;  // our own update, looped
  std::uint32_t& newest =
      linkState_->newestEpochFrom[packet.linkStateOrigin];
  if (packet.linkStateEpoch <= newest) return;  // old or duplicate
  newest = packet.linkStateEpoch;
  ++linkState_->updatesAccepted;
  if (telemetry_ != nullptr) {
    linkStateAcceptedCounter_->inc();
    telemetry_->trace.record(network_->simulator().now(),
                             telemetry::TraceEventKind::LinkStateAccepted,
                             -1, id_, arrivalEdge,
                             static_cast<double>(packet.linkStateEpoch));
  }
  for (const net::LinkStateEntry& entry : packet.linkState) {
    linkState_->lossView[entry.edge] = entry.conditions.lossRate;
    linkState_->latencyView[entry.edge] = entry.conditions.latency;
  }
  // Re-flood the first copy on every link except back where it came from.
  const graph::Graph& overlay = network_->overlay();
  const graph::NodeId arrivalNeighbor = overlay.edge(arrivalEdge).from;
  for (const graph::EdgeId out : overlay.outEdges(id_)) {
    if (overlay.edge(out).to == arrivalNeighbor) continue;
    network_->transmit(out, packet);
  }
}

void OverlayNode::emitLinkState() {
  if (!linkState_ || crashed_) return;
  LinkStateState& state = *linkState_;
  ++state.epoch;
  if (telemetry_ != nullptr) {
    linkStateFloodsCounter_->inc();
    telemetry_->trace.record(network_->simulator().now(),
                             telemetry::TraceEventKind::LinkStateFlood,
                             -1, id_, -1, static_cast<double>(state.epoch));
  }

  net::Packet update;
  update.type = net::Packet::Type::LinkState;
  update.linkStateOrigin = id_;
  update.linkStateEpoch = state.epoch;
  update.originTime = network_->simulator().now();

  const graph::Graph& overlay = network_->overlay();
  const double expected =
      static_cast<double>(state.config.expectedProbesPerInterval);
  for (const graph::EdgeId in : overlay.inEdges(id_)) {
    net::LinkStateEntry entry;
    entry.edge = in;
    if (state.config.expectedProbesPerInterval >= state.config.minSamples) {
      const double received =
          static_cast<double>(state.probesReceived[in]);
      entry.conditions.lossRate =
          std::clamp(1.0 - received / expected, 0.0, 1.0);
      entry.conditions.latency =
          state.probesReceived[in] > 0
              ? static_cast<util::SimTime>(state.probeLatencySumUs[in] /
                                           received)
              : state.baseline[in].latency;
    } else {
      entry.conditions = state.baseline[in];
    }
    state.probesReceived[in] = 0;
    state.probeLatencySumUs[in] = 0.0;
    // Apply to our own view immediately.
    state.lossView[in] = entry.conditions.lossRate;
    state.latencyView[in] = entry.conditions.latency;
    update.linkState.push_back(entry);
  }

  for (const graph::EdgeId out : overlay.outEdges(id_)) {
    network_->transmit(out, update);
  }
}

routing::NetworkView OverlayNode::view() const {
  return routing::NetworkView(linkState_->lossView, linkState_->latencyView);
}

void OverlayNode::noteSequenceForRecovery(graph::EdgeId arrivalEdge,
                                          const net::Packet& packet) {
  ReceiveState& state = receive_[key(arrivalEdge, packet.flow)];
  if (packet.sequence < state.expected) return;  // late fill, all good
  if (packet.sequence == state.expected) {
    state.expected = packet.sequence + 1;
    return;
  }
  // Gap: request every missing sequence exactly once.
  net::Packet nack;
  nack.type = net::Packet::Type::Nack;
  nack.flow = packet.flow;
  nack.sequence = packet.sequence;
  nack.originTime = packet.originTime;
  for (net::SequenceNumber missing = state.expected;
       missing < packet.sequence; ++missing) {
    if (state.requested.insert(missing)) {
      nack.nackSequences.push_back(missing);
    }
  }
  state.expected = packet.sequence + 1;
  if (nack.nackSequences.empty()) return;
  const auto reverse = network_->overlay().reverseEdge(arrivalEdge);
  if (!reverse) return;  // no reverse link: recovery impossible
  ++nacksSent_;
  if (telemetry_ != nullptr) {
    nacksCounter_->inc();
    telemetry_->trace.record(network_->simulator().now(),
                             telemetry::TraceEventKind::NackSent,
                             packet.flow, id_, arrivalEdge,
                             static_cast<double>(nack.nackSequences.size()));
  }
  network_->transmit(*reverse, std::move(nack));
}

void OverlayNode::handleNack(graph::EdgeId arrivalEdge,
                             const net::Packet& packet) {
  // The NACK arrived on the reverse of the data edge we sent on.
  const auto dataEdge = network_->overlay().reverseEdge(arrivalEdge);
  if (!dataEdge) return;
  const auto it = sendBuffers_.find(key(*dataEdge, packet.flow));
  if (it == sendBuffers_.end()) return;
  // Linear scan: the buffer is small and recovered packets re-enter it
  // out of sequence order, so it is not sorted.
  const auto& buffer = it->second.packets;
  for (const net::SequenceNumber seq : packet.nackSequences) {
    const auto found =
        std::find_if(buffer.begin(), buffer.end(),
                     [seq](const net::Packet& p) { return p.sequence == seq; });
    if (found == buffer.end()) continue;
    net::Packet retransmission = *found;
    retransmission.type = net::Packet::Type::Retransmission;
    ++retransmissionsSent_;
    if (telemetry_ != nullptr) {
      retransmissionsCounter_->inc();
      telemetry_->trace.record(network_->simulator().now(),
                               telemetry::TraceEventKind::Retransmission,
                               packet.flow, id_, *dataEdge,
                               static_cast<double>(seq));
    }
    network_->transmit(*dataEdge, std::move(retransmission));
  }
}

void OverlayNode::bufferForRetransmit(graph::EdgeId outEdge,
                                      const net::Packet& packet) {
  SendBuffer& buffer = sendBuffers_[key(outEdge, packet.flow)];
  buffer.packets.push_back(packet);  // dgcheck: ok(R5): retransmit ring reuses deque capacity; bounded by sendBufferPackets and amortized to zero
  while (buffer.packets.size() > config_.sendBufferPackets) {
    buffer.packets.pop_front();
  }
}

}  // namespace dg::core
