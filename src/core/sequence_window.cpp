#include "core/sequence_window.hpp"

#include <bit>
#include <stdexcept>

namespace dg::core {

SequenceWindow::SequenceWindow(std::size_t windowSize) {
  if (windowSize == 0)
    throw std::invalid_argument("SequenceWindow: zero window");
  const std::size_t rounded = std::bit_ceil(windowSize);
  seen_.assign(rounded, 0);
  mask_ = rounded - 1;
}

bool SequenceWindow::insert(std::uint64_t sequence) {
  if (belowWindow(sequence)) return false;  // too old: treat as duplicate
  std::uint64_t& cell = seen_[slot(sequence)];
  if (cell == sequence + 1) return false;  // duplicate
  cell = sequence + 1;
  if (sequence + 1 > frontier_) frontier_ = sequence + 1;
  return true;
}

bool SequenceWindow::contains(std::uint64_t sequence) const {
  if (belowWindow(sequence)) return true;
  return seen_[slot(sequence)] == sequence + 1;
}

}  // namespace dg::core
