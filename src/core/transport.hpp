// The overlay transport service: the library's top-level public API.
//
// A TransportService stands up a full overlay -- one daemon per site, the
// simulated wide-area links between them driven by a condition trace, a
// link monitor, and per-flow routing schemes -- and delivers timely,
// highly reliable flows over it:
//
//   auto topology = dg::trace::Topology::ltn12();
//   auto synthetic = dg::trace::generateSyntheticTrace(topology.graph(), {});
//   dg::core::TransportService service(topology, synthetic.trace, {});
//   auto flow = service.openFlow("NYC", "SJC",
//                                dg::routing::SchemeKind::TargetedRedundancy);
//   service.run(dg::util::minutes(10));
//   const auto& stats = service.stats(flow);   // on-time rate, cost, ...
//
// Flows emit packets at their configured rate; every decision interval
// the monitor's measurements are rolled and each flow's scheme selects
// the dissemination graph for the next interval.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "core/flow_context.hpp"
#include "core/metrics.hpp"
#include "core/monitor.hpp"
#include "core/overlay_node.hpp"
#include "net/network.hpp"
#include "net/simulator.hpp"
#include "routing/scheme.hpp"
#include "trace/topology.hpp"
#include "trace/trace.hpp"

namespace dg::core {

/// How routing learns about network conditions.
enum class MonitorMode {
  /// One service-wide monitor aggregates all link observations and every
  /// scheme reads the same view (simple; the playback engine's model).
  Centralized,
  /// Spines-like: every node measures its incoming links from the probe
  /// stream and floods link-state updates (which themselves ride the
  /// lossy overlay); each flow's scheme runs on its *source node's* view
  /// and the chosen dissemination graph is stamped into packets as an
  /// edge bitmask. Convergence delays and update losses are emergent.
  Distributed,
};

struct TransportConfig {
  routing::SchemeParams schemeParams;
  MonitorMode monitorMode = MonitorMode::Centralized;
  /// How often the monitor rolls and schemes re-select graphs.
  util::SimTime decisionInterval = util::seconds(10);
  /// Per-link probe period (keeps the monitor fed on idle links).
  util::SimTime probeInterval = util::milliseconds(100);
  OverlayNodeConfig node;
  int monitorMinSamples = 8;
  std::uint64_t seed = 42;
  /// Optional link capacity model (default unlimited); see
  /// net::LinkCapacity for semantics.
  net::LinkCapacity linkCapacity;
};

class TransportService final : public FlowDirectory {
 public:
  /// The topology and trace must outlive the service.
  TransportService(const trace::Topology& topology,
                   const trace::Trace& trace, TransportConfig config = {});

  /// Opens a flow between two named sites; it starts sending one packet
  /// per `packetInterval` immediately. `deadline` defaults to the
  /// scheme-params deadline.
  net::FlowId openFlow(std::string_view source, std::string_view destination,
                       routing::SchemeKind scheme,
                       util::SimTime packetInterval = util::milliseconds(10));

  /// Pauses/resumes a flow's packet generation.
  void setSending(net::FlowId id, bool sending);

  /// Advances the simulation by `duration`.
  void run(util::SimTime duration);

  const FlowStats& stats(net::FlowId id) const;
  const FlowContext& context(net::FlowId id) const;
  std::size_t flowCount() const { return flows_.size(); }
  const OverlayNode& node(graph::NodeId id) const { return *nodes_[id]; }
  /// Mutable node access (chaos injection: crash/restart).
  OverlayNode& node(graph::NodeId id) { return *nodes_[id]; }
  MonitorMode monitorMode() const { return config_.monitorMode; }
  /// The monitor's current routing view (last closed interval).
  routing::NetworkView currentView() const { return monitor_.view(); }
  net::Simulator& simulator() { return simulator_; }
  /// The simulated network (chaos injection: condition overrides).
  net::SimulatedNetwork& network() { return network_; }
  const trace::Topology& topology() const { return *topology_; }

  /// Observes every app-layer delivery (first copy reaching the flow
  /// destination): (flow, packet, end-to-end latency, counted on-time).
  /// Runs after the stats update. Used by the chaos InvariantChecker.
  using DeliveryObserver = std::function<void(
      net::FlowId, const net::Packet&, util::SimTime latency, bool onTime)>;
  void setDeliveryObserver(DeliveryObserver observer);

  /// Delays every decision tick scheduled from now on by `delay` beyond
  /// the configured interval (chaos monitor-delay faults; 0 restores the
  /// normal cadence). Takes effect from the next tick scheduling.
  void setDecisionTickDelay(util::SimTime delay);

  // FlowDirectory:
  const FlowContext* flowContext(net::FlowId id) const override;
  void onDelivered(net::FlowId id, const net::Packet& packet) override;

  /// Attaches telemetry (nullable) across every layer the service owns:
  /// the event simulator, the simulated network, the link monitor, every
  /// overlay node, and every flow's routing scheme -- plus per-flow send
  /// / delivery / recovery counters, a delivery-latency histogram, and
  /// GraphSwitch trace events whenever a decision tick changes a flow's
  /// dissemination graph. Flows opened later inherit the telemetry.
  void setTelemetry(telemetry::Telemetry* telemetry);

 private:
  struct FlowRuntime {
    FlowContext context;
    std::unique_ptr<routing::RoutingScheme> scheme;
    net::SequenceNumber nextSequence = 0;
    FlowStats stats;
    bool sending = true;
    // Telemetry handles (null when telemetry is detached).
    telemetry::Counter* sentCounter = nullptr;
    telemetry::Counter* onTimeCounter = nullptr;
    telemetry::Counter* lateCounter = nullptr;
    telemetry::Counter* recoveredCounter = nullptr;
    telemetry::HistogramMetric* latencyHistogram = nullptr;
    telemetry::Counter* graphSwitchCounter = nullptr;
    /// Member edges of the last selected graph (graph-switch detection).
    std::vector<graph::EdgeId> lastGraphEdges;
  };

  void scheduleDecisionTick();
  void scheduleProbeTick();
  void scheduleFlowTick(net::FlowId id);
  void attachFlowTelemetry(FlowRuntime& runtime);
  /// Called after each select(): counts a graph switch when the member
  /// edge set changed since the previous decision.
  void noteGraphSelected(FlowRuntime& runtime);

  const trace::Topology* topology_;
  TransportConfig config_;
  net::Simulator simulator_;
  net::SimulatedNetwork network_;
  LinkMonitor monitor_;
  std::vector<std::unique_ptr<OverlayNode>> nodes_;
  std::vector<std::unique_ptr<FlowRuntime>> flows_;
  DeliveryObserver deliveryObserver_;
  util::SimTime decisionTickDelay_ = 0;
  telemetry::Telemetry* telemetry_ = nullptr;
};

}  // namespace dg::core
