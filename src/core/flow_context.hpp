// Shared per-flow state and the node<->service interface.
#pragma once

#include "graph/dissemination_graph.hpp"
#include "net/packet.hpp"
#include "routing/scheme.hpp"
#include "util/sim_time.hpp"

namespace dg::core {

/// State shared by every overlay node participating in one flow. Owned by
/// the TransportService; nodes hold it by reference through the
/// FlowDirectory.
struct FlowContext {
  net::FlowId id = 0;
  routing::Flow flow;
  util::SimTime deadline = util::milliseconds(65);
  util::SimTime packetInterval = util::milliseconds(10);
  /// The dissemination graph packets of this flow are currently flooded
  /// on. Updated by the service at decision boundaries; nodes read it on
  /// every forward. Never null after the service starts.
  const graph::DisseminationGraph* activeGraph = nullptr;
  /// Distributed mode: the active graph as an edge bitmask, stamped into
  /// each packet at the source so intermediate nodes forward without any
  /// per-flow routing state. 0 = centralized mode (activeGraph applies).
  std::uint64_t graphMask = 0;
};

/// What an overlay node needs from its surroundings: flow lookup and
/// delivery notification. Implemented by the TransportService.
class FlowDirectory {
 public:
  virtual ~FlowDirectory() = default;
  /// Returns nullptr for unknown flows (packets for them are dropped).
  virtual const FlowContext* flowContext(net::FlowId id) const = 0;
  /// Called exactly once per (flow, sequence) when the packet first
  /// reaches the flow destination.
  virtual void onDelivered(net::FlowId id, const net::Packet& packet) = 0;
};

}  // namespace dg::core
