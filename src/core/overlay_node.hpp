// An overlay daemon: dissemination-graph forwarding with duplicate
// suppression, plus the per-hop real-time recovery protocol.
//
// Forwarding rule (the dissemination-graph semantics): the first copy of
// a packet a node receives is forwarded on every member out-edge of the
// flow's active graph, except back to the node it arrived from; later
// copies are dropped. Recovery rule: data packets carry per-(link, flow)
// sequence numbers; a receiver that observes a gap immediately NACKs the
// missing sequences on the reverse link, once per sequence, and the
// sender retransmits from a short buffer. A packet whose age already
// exceeds the flow deadline is not forwarded further (it can no longer be
// useful, only costly).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

#include "core/flow_context.hpp"
#include "core/sequence_window.hpp"
#include "net/network.hpp"
#include "routing/network_view.hpp"
#include "telemetry/telemetry.hpp"

namespace dg::core {

struct OverlayNodeConfig {
  bool recoveryEnabled = true;
  /// Retransmission buffer per (out-edge, flow), in packets.
  std::size_t sendBufferPackets = 64;
};

/// Distributed monitoring (enabled per node via enableLinkState): the
/// node measures its incoming links from the probe stream, periodically
/// floods a link-state update, merges updates from every other node into
/// a local view, and -- as the source of a flow -- stamps the selected
/// dissemination graph into packets as an edge bitmask.
struct LinkStateConfig {
  /// Probes expected per measurement interval on each incoming link
  /// (decision interval / probe interval); losses are inferred from the
  /// shortfall, so a silent link reads as 100% loss.
  int expectedProbesPerInterval = 100;
  /// Below this many expected probes the estimate is unusable.
  int minSamples = 8;
};

class OverlayNode {
 public:
  OverlayNode(graph::NodeId id, net::SimulatedNetwork& network,
              FlowDirectory& directory, OverlayNodeConfig config);

  graph::NodeId id() const { return id_; }

  /// Entry point wired to the network's delivery handler.
  void handlePacket(graph::EdgeId arrivalEdge, const net::Packet& packet);

  /// Crash/restart (chaos injection). While crashed the daemon is dead:
  /// every arriving packet is dropped unprocessed and originate() is a
  /// no-op. Restarting (setCrashed(false)) models a process restart --
  /// all soft state (duplicate-suppression windows, gap-detection state,
  /// retransmission buffers, link measurements) is lost, the link-state
  /// view resets to baseline, but the link-state epoch survives (it keeps
  /// increasing so peers do not discard post-restart updates as stale).
  void setCrashed(bool crashed);
  bool crashed() const { return crashed_; }
  std::uint64_t crashDropped() const { return crashDropped_; }

  /// Injects a fresh data packet at this node (must be the flow source).
  /// When the context carries a graph mask, the packet is stamped with it
  /// and every node forwards by mask (distributed mode).
  void originate(const FlowContext& context, net::SequenceNumber sequence,
                 util::SimTime originTime);

  // --- Distributed link-state monitoring --------------------------------

  /// Turns on link-state participation: the node starts measuring its
  /// incoming links from probes and accepting/merging/re-flooding
  /// link-state updates. `baseline` seeds the local view.
  void enableLinkState(std::vector<trace::LinkConditions> baseline,
                       LinkStateConfig config);
  bool linkStateEnabled() const { return linkState_ != nullptr; }

  /// Closes the node's measurement interval: updates its own view from
  /// its incoming-link measurements and floods a link-state update to
  /// the rest of the overlay. Call once per decision interval.
  void emitLinkState();

  /// The node's current believed network state (valid only with link
  /// state enabled).
  routing::NetworkView view() const;

  std::uint64_t linkStateUpdatesAccepted() const {
    return linkState_ ? linkState_->updatesAccepted : 0;
  }

  std::uint64_t duplicatesDropped() const { return duplicatesDropped_; }
  std::uint64_t expiredDropped() const { return expiredDropped_; }
  std::uint64_t nacksSent() const { return nacksSent_; }
  std::uint64_t retransmissionsSent() const { return retransmissionsSent_; }

  /// Attaches telemetry (nullable): per-node counters for duplicate and
  /// expired drops, NACKs, retransmissions and link-state activity, plus
  /// NackSent / Retransmission / LinkStateFlood / LinkStateAccepted trace
  /// events.
  void setTelemetry(telemetry::Telemetry* telemetry);

 private:
  struct ReceiveState {
    net::SequenceNumber expected = 0;
    SequenceWindow requested{1024};  ///< each gap is NACKed at most once
  };
  struct SendBuffer {
    std::deque<net::Packet> packets;  // ascending sequence
  };
  /// Key for per-(edge, flow) maps.
  static std::uint64_t key(graph::EdgeId edge, net::FlowId flow) {
    return (static_cast<std::uint64_t>(edge) << 32) | flow;
  }

  void forward(const FlowContext& context, const net::Packet& packet,
               graph::EdgeId arrivalEdge);
  void handleData(graph::EdgeId arrivalEdge, const net::Packet& packet);
  void handleNack(graph::EdgeId arrivalEdge, const net::Packet& packet);
  void handleProbe(graph::EdgeId arrivalEdge, const net::Packet& packet);
  void handleLinkState(graph::EdgeId arrivalEdge, const net::Packet& packet);
  void noteSequenceForRecovery(graph::EdgeId arrivalEdge,
                               const net::Packet& packet);
  void bufferForRetransmit(graph::EdgeId outEdge, const net::Packet& packet);

  graph::NodeId id_;
  net::SimulatedNetwork* network_;
  FlowDirectory* directory_;
  OverlayNodeConfig config_;

  /// First-copy suppression per flow (bounded sliding window).
  std::unordered_map<net::FlowId, SequenceWindow> seen_;
  /// Per (in-edge, flow) gap detection state.
  std::unordered_map<std::uint64_t, ReceiveState> receive_;
  /// Per (out-edge, flow) retransmission buffers.
  std::unordered_map<std::uint64_t, SendBuffer> sendBuffers_;

  /// Distributed monitoring state (absent unless enabled).
  struct LinkStateState {
    LinkStateConfig config;
    std::vector<trace::LinkConditions> baseline;
    // Local view of every link.
    std::vector<double> lossView;
    std::vector<util::SimTime> latencyView;
    // Measurements of this node's incoming links, current interval.
    std::vector<std::uint64_t> probesReceived;  // per edge
    std::vector<double> probeLatencySumUs;      // per edge
    // Flood dedup: newest accepted epoch per origin node.
    std::vector<std::uint32_t> newestEpochFrom;
    std::uint32_t epoch = 0;
    std::uint64_t updatesAccepted = 0;
  };
  std::unique_ptr<LinkStateState> linkState_;

  bool crashed_ = false;
  std::uint64_t crashDropped_ = 0;
  std::uint64_t duplicatesDropped_ = 0;
  std::uint64_t expiredDropped_ = 0;
  std::uint64_t nacksSent_ = 0;
  std::uint64_t retransmissionsSent_ = 0;

  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Counter* duplicatesCounter_ = nullptr;
  telemetry::Counter* expiredCounter_ = nullptr;
  telemetry::Counter* nacksCounter_ = nullptr;
  telemetry::Counter* retransmissionsCounter_ = nullptr;
  telemetry::Counter* linkStateFloodsCounter_ = nullptr;
  telemetry::Counter* linkStateAcceptedCounter_ = nullptr;
};

}  // namespace dg::core
