#include "core/transport.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace dg::core {

TransportService::TransportService(const trace::Topology& topology,
                                   const trace::Trace& trace,
                                   TransportConfig config)
    : topology_(&topology),
      config_(config),
      network_(simulator_, topology.graph(), trace, config.seed),
      monitor_(topology.graph(),
               [&] {
                 std::vector<trace::LinkConditions> baseline;
                 baseline.reserve(trace.edgeCount());
                 for (graph::EdgeId e = 0; e < trace.edgeCount(); ++e)
                   baseline.push_back(trace.baseline(e));
                 return baseline;
               }(),
               config.monitorMinSamples) {
  const graph::Graph& overlay = topology.graph();
  nodes_.reserve(overlay.nodeCount());
  for (graph::NodeId n = 0; n < overlay.nodeCount(); ++n) {
    nodes_.push_back(
        std::make_unique<OverlayNode>(n, network_, *this, config_.node));
    network_.setDeliveryHandler(n, [this, n](graph::EdgeId edge,
                                             const net::Packet& packet) {
      nodes_[n]->handlePacket(edge, packet);
    });
  }
  network_.setLinkCapacity(config_.linkCapacity);
  network_.setTransmitObserver([this](graph::EdgeId edge,
                                      const net::Packet& packet,
                                      bool delivered, util::SimTime latency) {
    monitor_.recordTransmission(edge);
    if (delivered) monitor_.recordReception(edge, latency);
    if ((packet.type == net::Packet::Type::Data ||
         packet.type == net::Packet::Type::Retransmission) &&
        packet.flow < flows_.size()) {
      ++flows_[packet.flow]->stats.transmissions;
    }
  });
  if (config_.monitorMode == MonitorMode::Distributed) {
    if (overlay.edgeCount() > 64) {
      throw std::invalid_argument(
          "TransportService: distributed mode stamps graphs as 64-bit "
          "masks; the overlay has too many directed edges");
    }
    LinkStateConfig linkStateConfig;
    linkStateConfig.expectedProbesPerInterval = static_cast<int>(
        config_.decisionInterval / config_.probeInterval);
    linkStateConfig.minSamples = config_.monitorMinSamples;
    std::vector<trace::LinkConditions> baseline;
    baseline.reserve(trace.edgeCount());
    for (graph::EdgeId e = 0; e < trace.edgeCount(); ++e)
      baseline.push_back(trace.baseline(e));
    for (const auto& node : nodes_) {
      node->enableLinkState(baseline, linkStateConfig);
    }
  }
  scheduleDecisionTick();
  scheduleProbeTick();
}

net::FlowId TransportService::openFlow(std::string_view source,
                                       std::string_view destination,
                                       routing::SchemeKind scheme,
                                       util::SimTime packetInterval) {
  const routing::Flow flow{topology_->at(source), topology_->at(destination)};
  if (flow.source == flow.destination)
    throw std::invalid_argument("openFlow: source equals destination");

  auto runtime = std::make_unique<FlowRuntime>();
  runtime->context.id = static_cast<net::FlowId>(flows_.size());
  runtime->context.flow = flow;
  runtime->context.deadline = config_.schemeParams.deadline;
  runtime->context.packetInterval = packetInterval;
  runtime->scheme = routing::makeScheme(scheme, topology_->graph(), flow,
                                        config_.schemeParams);
  const routing::NetworkView initialView =
      config_.monitorMode == MonitorMode::Distributed
          ? nodes_[flow.source]->view()
          : monitor_.view();
  runtime->scheme->initialize(initialView);
  runtime->context.activeGraph = &runtime->scheme->select(initialView);
  if (config_.monitorMode == MonitorMode::Distributed) {
    runtime->context.graphMask =
        net::graphMaskOf(*runtime->context.activeGraph);
  }

  const net::FlowId id = runtime->context.id;
  flows_.push_back(std::move(runtime));
  if (telemetry_ != nullptr) attachFlowTelemetry(*flows_[id]);
  DG_LOG(Info) << "flow " << id << ": " << topology_->name(flow.source)
               << "->" << topology_->name(flow.destination) << " via "
               << flows_[id]->scheme->name();
  scheduleFlowTick(id);
  return id;
}

void TransportService::setSending(net::FlowId id, bool sending) {
  FlowRuntime& runtime = *flows_.at(id);
  const bool wasSending = runtime.sending;
  runtime.sending = sending;
  if (sending && !wasSending) scheduleFlowTick(id);
}

void TransportService::run(util::SimTime duration) {
  simulator_.runUntil(simulator_.now() + duration);
}

const FlowStats& TransportService::stats(net::FlowId id) const {
  return flows_.at(id)->stats;
}

const FlowContext& TransportService::context(net::FlowId id) const {
  return flows_.at(id)->context;
}

const FlowContext* TransportService::flowContext(net::FlowId id) const {
  if (id >= flows_.size()) return nullptr;
  return &flows_[id]->context;
}

void TransportService::onDelivered(net::FlowId id,
                                   const net::Packet& packet) {
  FlowRuntime& runtime = *flows_.at(id);
  const util::SimTime latency = simulator_.now() - packet.originTime;
  if (latency <= runtime.context.deadline) {
    ++runtime.stats.deliveredOnTime;
    if (runtime.onTimeCounter != nullptr) runtime.onTimeCounter->inc();
  } else {
    ++runtime.stats.deliveredLate;
    if (runtime.lateCounter != nullptr) runtime.lateCounter->inc();
  }
  runtime.stats.latencyUs.add(static_cast<double>(latency));
  if (deliveryObserver_) {
    deliveryObserver_(id, packet, latency,
                      latency <= runtime.context.deadline);
  }
  if (telemetry_ != nullptr) {
    runtime.latencyHistogram->observe(static_cast<double>(latency) / 1000.0);
    if (packet.type == net::Packet::Type::Retransmission) {
      // A first copy that arrived as a retransmission: the per-hop
      // recovery protocol saved this delivery.
      runtime.recoveredCounter->inc();
      telemetry_->trace.record(
          simulator_.now(), telemetry::TraceEventKind::RecoveredDelivery, id,
          runtime.context.flow.destination, -1,
          static_cast<double>(packet.sequence));
    }
  }
}

void TransportService::setDeliveryObserver(DeliveryObserver observer) {
  deliveryObserver_ = std::move(observer);
}

void TransportService::setDecisionTickDelay(util::SimTime delay) {
  if (delay < 0)
    throw std::invalid_argument("setDecisionTickDelay: negative delay");
  decisionTickDelay_ = delay;
}

void TransportService::setTelemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  simulator_.setTelemetry(telemetry);
  network_.setTelemetry(telemetry);
  monitor_.setTelemetry(telemetry);
  for (const auto& node : nodes_) node->setTelemetry(telemetry);
  for (const auto& runtime : flows_) attachFlowTelemetry(*runtime);
}

void TransportService::attachFlowTelemetry(FlowRuntime& runtime) {
  const std::string flowLabel = std::to_string(runtime.context.id);
  runtime.scheme->setTelemetry(telemetry_, flowLabel);
  runtime.sentCounter = nullptr;
  runtime.onTimeCounter = nullptr;
  runtime.lateCounter = nullptr;
  runtime.recoveredCounter = nullptr;
  runtime.latencyHistogram = nullptr;
  runtime.graphSwitchCounter = nullptr;
  if (telemetry_ == nullptr) return;
  const telemetry::Labels labels{{"flow", flowLabel}};
  telemetry::MetricsRegistry& metrics = telemetry_->metrics;
  runtime.sentCounter = &metrics.counter("dg_core_sent_total", labels);
  runtime.onTimeCounter =
      &metrics.counter("dg_core_delivered_on_time_total", labels);
  runtime.lateCounter =
      &metrics.counter("dg_core_delivered_late_total", labels);
  runtime.recoveredCounter =
      &metrics.counter("dg_core_recovered_deliveries_total", labels);
  runtime.latencyHistogram = &metrics.histogram(
      "dg_core_delivery_latency_ms", 0.0, 200.0, 40, labels);
  runtime.graphSwitchCounter = &metrics.counter(
      "dg_routing_graph_switches_total",
      {{"flow", flowLabel}, {"scheme", std::string(runtime.scheme->name())}});
  runtime.lastGraphEdges = runtime.context.activeGraph->edges();
}

void TransportService::noteGraphSelected(FlowRuntime& runtime) {
  if (telemetry_ == nullptr) return;
  const std::vector<graph::EdgeId>& edges =
      runtime.context.activeGraph->edges();
  if (edges == runtime.lastGraphEdges) return;
  runtime.lastGraphEdges = edges;
  runtime.graphSwitchCounter->inc();
  telemetry_->trace.record(simulator_.now(),
                           telemetry::TraceEventKind::GraphSwitch,
                           runtime.context.id, runtime.context.flow.source,
                           -1, static_cast<double>(edges.size()),
                           std::string(runtime.scheme->name()));
}

void TransportService::scheduleDecisionTick() {
  simulator_.scheduleAfter(config_.decisionInterval + decisionTickDelay_,
                           [this] {
    if (config_.monitorMode == MonitorMode::Distributed) {
      // Every node closes its measurement interval and floods its
      // link-state update; those updates arrive (one link latency away,
      // loss permitting) *after* this tick's routing decisions -- the
      // staleness is emergent, not modeled.
      for (const auto& node : nodes_) node->emitLinkState();
      for (const auto& runtime : flows_) {
        const routing::NetworkView view =
            nodes_[runtime->context.flow.source]->view();
        runtime->context.activeGraph = &runtime->scheme->select(view);
        runtime->context.graphMask =
            net::graphMaskOf(*runtime->context.activeGraph);
        noteGraphSelected(*runtime);
      }
    } else {
      monitor_.rollInterval();
      const routing::NetworkView view = monitor_.view();
      for (const auto& runtime : flows_) {
        runtime->context.activeGraph = &runtime->scheme->select(view);
        noteGraphSelected(*runtime);
      }
    }
    scheduleDecisionTick();
  });
}

void TransportService::scheduleProbeTick() {
  simulator_.scheduleAfter(config_.probeInterval, [this] {
    const graph::Graph& overlay = topology_->graph();
    for (graph::EdgeId e = 0; e < overlay.edgeCount(); ++e) {
      net::Packet probe;
      probe.type = net::Packet::Type::Probe;
      probe.originTime = simulator_.now();
      network_.transmit(e, std::move(probe));
    }
    scheduleProbeTick();
  });
}

void TransportService::scheduleFlowTick(net::FlowId id) {
  FlowRuntime& runtime = *flows_.at(id);
  if (!runtime.sending) return;
  simulator_.scheduleAfter(runtime.context.packetInterval, [this, id] {
    FlowRuntime& flow = *flows_.at(id);
    if (!flow.sending) return;
    ++flow.stats.sent;
    if (flow.sentCounter != nullptr) flow.sentCounter->inc();
    nodes_[flow.context.flow.source]->originate(
        flow.context, flow.nextSequence++, simulator_.now());
    scheduleFlowTick(id);
  });
}

}  // namespace dg::core
