#include "trace/importer.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace dg::trace {

namespace {

struct Accumulator {
  double lossSum = 0.0;
  double latencySum = 0.0;
  std::size_t count = 0;
};

[[noreturn]] void fail(std::size_t lineNo, const std::string& why) {
  throw std::runtime_error("importMeasurementsCsv line " +
                           std::to_string(lineNo) + ": " + why);
}

}  // namespace

Trace importMeasurementsCsv(const Topology& topology, std::string_view csv,
                            const ImportOptions& options) {
  if (options.intervalLength <= 0)
    throw std::invalid_argument("importMeasurementsCsv: bad interval");

  // First pass: parse records, find the time horizon.
  struct Record {
    graph::EdgeId edge;
    util::SimTime time;
    double loss;
    util::SimTime latency;
  };
  std::vector<Record> records;
  util::SimTime horizon = 0;
  std::size_t lineNo = 0;
  for (const auto& rawLine : util::split(csv, '\n')) {
    ++lineNo;
    const std::string_view line = util::trim(rawLine);
    if (line.empty() || line.front() == '#') continue;
    const auto fields = util::split(line, ',');
    if (fields.size() != 5)
      fail(lineNo, "expected: time_s,from,to,loss_rate,latency_us");
    double timeSeconds = 0, loss = 0;
    std::int64_t latencyUs = 0;
    if (!util::parseDouble(fields[0], timeSeconds))
      fail(lineNo, "bad time");
    if (!util::parseDouble(fields[3], loss) || loss < 0.0 || loss > 1.0)
      fail(lineNo, "bad loss rate (must be in [0,1])");
    if (!util::parseInt64(util::trim(fields[4]), latencyUs) || latencyUs < 0)
      fail(lineNo, "bad latency");

    const auto from = topology.byName(util::trim(fields[1]));
    const auto to = topology.byName(util::trim(fields[2]));
    if (!from || !to) {
      if (options.skipUnknownSites) continue;
      fail(lineNo, "unknown site");
    }
    const auto edge = topology.graph().findEdge(*from, *to);
    if (!edge) {
      if (options.skipUnknownSites) continue;
      fail(lineNo, "no overlay link " + std::string(util::trim(fields[1])) +
                       "->" + std::string(util::trim(fields[2])));
    }
    const auto time = static_cast<util::SimTime>(
        std::llround(timeSeconds * 1e6));
    if (time < options.startTime) continue;
    records.push_back(
        Record{*edge, time - options.startTime, loss, latencyUs});
    horizon = std::max(horizon, time - options.startTime);
  }
  if (records.empty())
    throw std::runtime_error("importMeasurementsCsv: no usable records");

  const std::size_t intervals =
      static_cast<std::size_t>(horizon / options.intervalLength) + 1;
  Trace trace(options.intervalLength, intervals,
              healthyBaseline(topology.graph(), options.residualLoss));

  // Second pass: bucket and average.
  std::map<std::pair<graph::EdgeId, std::size_t>, Accumulator> buckets;
  for (const Record& record : records) {
    const std::size_t interval = trace.intervalAt(record.time);
    Accumulator& acc = buckets[{record.edge, interval}];
    acc.lossSum += record.loss;
    acc.latencySum += static_cast<double>(record.latency);
    ++acc.count;
  }
  for (const auto& [key, acc] : buckets) {
    const auto [edge, interval] = key;
    const double n = static_cast<double>(acc.count);
    LinkConditions conditions;
    conditions.lossRate = acc.lossSum / n;
    conditions.latency =
        static_cast<util::SimTime>(std::llround(acc.latencySum / n));
    // Only store a deviation when it differs from baseline; keeps the
    // trace sparse for healthy measurements.
    if (conditions == trace.baseline(edge)) continue;
    trace.setCondition(edge, interval, conditions);
  }
  return trace;
}

Trace importMeasurementsCsvFile(const Topology& topology,
                                const std::string& path,
                                const ImportOptions& options) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("importMeasurementsCsvFile: cannot open " +
                             path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return importMeasurementsCsv(topology, buffer.str(), options);
}

std::string exportMeasurementsCsv(const Topology& topology,
                                  const Trace& trace) {
  std::ostringstream out;
  out.precision(12);  // loss rates must round-trip through the importer
  out << "# time_s,from,to,loss_rate,latency_us\n";
  out << "# interval_length_s=" << util::toSeconds(trace.intervalLength())
      << " intervals=" << trace.intervalCount() << '\n';
  for (std::size_t i = 0; i < trace.intervalCount(); ++i) {
    for (const auto& [edge, conditions] : trace.deviationsAt(i)) {
      const graph::Edge& e = topology.graph().edge(edge);
      out << util::formatFixed(
                 util::toSeconds(static_cast<util::SimTime>(i) *
                                 trace.intervalLength()),
                 1)
          << ',' << topology.name(e.from) << ',' << topology.name(e.to)
          << ',' << conditions.lossRate << ',' << conditions.latency
          << '\n';
    }
  }
  return out.str();
}

}  // namespace dg::trace
