// Interval-streaming access to traces.
//
// A TraceSink receives a trace as a header (interval geometry + per-edge
// baseline) followed by per-interval deviation lists in strictly
// increasing interval order. Producers that stream -- the synthetic
// generator's stream path, streamTrace() over an in-memory Trace -- can
// feed consumers with bounded memory (the packed-trace writer buffers one
// chunk at a time) because nothing ever holds the full per-interval
// representation.
//
// Clean (deviation-free) intervals may be skipped entirely: a sink must
// treat any interval it was not told about as baseline-only.
#pragma once

#include <optional>
#include <span>
#include <utility>

#include "trace/trace.hpp"

namespace dg::trace {

/// One deviating (edge, condition) entry of an interval, as streamed.
using Deviation = std::pair<graph::EdgeId, LinkConditions>;

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Starts a trace. `baseline` has one entry per directed edge and is
  /// only guaranteed valid during the call.
  virtual void begin(util::SimTime intervalLength, std::size_t intervalCount,
                     std::span<const LinkConditions> baseline) = 0;

  /// One non-clean interval. Indices are strictly increasing across
  /// calls and < intervalCount; `deviations` is edge-sorted and only
  /// valid during the call. Clean intervals are skipped.
  virtual void interval(std::size_t index,
                        std::span<const Deviation> deviations) = 0;

  /// Ends the trace (intervals beyond the last reported one are clean).
  virtual void end() = 0;
};

/// Sink that materializes the streamed trace as an in-memory Trace --
/// the inverse of streamTrace(), used by round-trip tests and by the
/// packed-trace reader's full decode.
class TraceBuilder final : public TraceSink {
 public:
  void begin(util::SimTime intervalLength, std::size_t intervalCount,
             std::span<const LinkConditions> baseline) override;
  void interval(std::size_t index,
                std::span<const Deviation> deviations) override;
  void end() override;

  /// The materialized trace; valid after end(). Throws std::logic_error
  /// if the stream is incomplete.
  Trace take();

 private:
  std::optional<Trace> trace_;
  bool ended_ = false;
};

/// Streams an existing trace into a sink, interval by interval. The
/// extra memory used is O(1) -- every span handed to the sink borrows
/// from the trace's own storage.
void streamTrace(const Trace& trace, TraceSink& sink);

}  // namespace dg::trace
