#include "trace/synth.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "util/logging.hpp"

namespace dg::trace {

namespace {

/// Draws the number of events for a Poisson process with the given mean
/// (inversion by sequential search; means here are small).
std::size_t poisson(double mean, util::Rng& rng) {
  if (mean <= 0) return 0;
  const double limit = std::exp(-mean);
  double product = rng.uniform();
  std::size_t count = 0;
  while (product > limit) {
    ++count;
    product *= rng.uniform();
  }
  return count;
}

std::size_t durationIntervals(double medianSeconds, double sigma,
                              util::SimTime intervalLength, util::Rng& rng) {
  const double seconds = rng.lognormalMedian(medianSeconds, sigma);
  const double intervals =
      seconds / util::toSeconds(intervalLength);
  return std::max<std::size_t>(1, static_cast<std::size_t>(
                                      std::llround(intervals)));
}

/// The shared core of applyEvent and the streaming generator: resolves
/// `event` into per-(interval, edge) impairments, drawing activity from
/// `rng` in a FIXED order (intervals outer, undirected links inner) and
/// handing each impairment to `emit(interval, edge, impairment)`. Both
/// callers draw identically, which is what keeps the streamed trace
/// bit-identical to the batch one.
template <typename Emit>
void drawEventImpairments(const graph::Graph& graph,
                          const ProblemEvent& event, util::Rng& rng,
                          double boundaryActivityFactor,
                          std::size_t intervalCount,
                          std::span<const LinkConditions> baseline,
                          Emit&& emit) {
  // Group the affected directed edges into undirected links so both
  // directions share one activity draw per interval (a congested or
  // failing site degrades a link in both directions at once).
  std::vector<std::pair<graph::EdgeId, graph::EdgeId>> links;
  std::vector<char> used(graph.edgeCount(), 0);
  for (const graph::EdgeId e : event.affectedEdges) {
    if (used[e]) continue;
    used[e] = 1;
    graph::EdgeId reverse = graph::kInvalidEdge;
    if (const auto r = graph.reverseEdge(e); r.has_value() && !used[*r]) {
      const bool reverseAffected =
          std::find(event.affectedEdges.begin(), event.affectedEdges.end(),
                    *r) != event.affectedEdges.end();
      if (reverseAffected) {
        reverse = *r;
        used[*r] = 1;
      }
    }
    links.emplace_back(e, reverse);
  }

  const std::size_t end = std::min(event.endInterval(), intervalCount);
  for (std::size_t interval = event.startInterval; interval < end;
       ++interval) {
    const bool boundary =
        interval == event.startInterval || interval + 1 == end;
    const double activity =
        boundary ? event.activity * boundaryActivityFactor : event.activity;
    for (const auto& [forward, reverse] : links) {
      if (!rng.bernoulli(activity)) continue;
      LinkConditions impairment;
      if (event.impairment == ProblemEvent::Impairment::Loss) {
        impairment.lossRate = event.severity;
        impairment.latency = baseline[forward].latency;
      } else {
        impairment.lossRate = 0.0;
        impairment.latency = baseline[forward].latency + event.latencyPenalty;
      }
      emit(interval, forward, impairment);
      if (reverse != graph::kInvalidEdge) {
        LinkConditions reverseImpairment = impairment;
        if (event.impairment == ProblemEvent::Impairment::Latency) {
          reverseImpairment.latency =
              baseline[reverse].latency + event.latencyPenalty;
        } else {
          reverseImpairment.latency = baseline[reverse].latency;
        }
        emit(interval, reverse, reverseImpairment);
      }
    }
  }
}

}  // namespace

void applyEvent(Trace& trace, const graph::Graph& graph,
                const ProblemEvent& event, util::Rng& rng,
                double boundaryActivityFactor) {
  drawEventImpairments(
      graph, event, rng, boundaryActivityFactor, trace.intervalCount(),
      trace.baselines(),
      [&trace](std::size_t interval, graph::EdgeId edge,
               const LinkConditions& impairment) {
        trace.applyImpairment(edge, interval, impairment);
      });
}

ProblemEvent makeNodeEvent(const graph::Graph& graph, graph::NodeId node,
                           std::size_t startInterval,
                           std::size_t intervalCount, double coverage,
                           double activity, double severity,
                           util::SimTime latencyPenalty, util::Rng& rng) {
  ProblemEvent event;
  event.kind = ProblemEvent::Kind::Node;
  event.impairment = latencyPenalty > 0 ? ProblemEvent::Impairment::Latency
                                        : ProblemEvent::Impairment::Loss;
  event.node = node;
  event.startInterval = startInterval;
  event.intervalCount = intervalCount;
  event.severity = severity;
  event.latencyPenalty = latencyPenalty;
  event.activity = activity;

  // Select affected undirected links with probability `coverage` each;
  // force at least one so the event is never a no-op.
  std::vector<graph::EdgeId> candidates(graph.outEdges(node).begin(),
                                        graph.outEdges(node).end());
  for (const graph::EdgeId e : candidates) {
    if (!rng.bernoulli(coverage)) continue;
    event.affectedEdges.push_back(e);
    if (const auto r = graph.reverseEdge(e)) event.affectedEdges.push_back(*r);
  }
  if (event.affectedEdges.empty() && !candidates.empty()) {
    const graph::EdgeId e =
        candidates[rng.uniformInt(candidates.size())];
    event.affectedEdges.push_back(e);
    if (const auto r = graph.reverseEdge(e)) event.affectedEdges.push_back(*r);
  }
  std::sort(event.affectedEdges.begin(), event.affectedEdges.end());
  return event;
}

ProblemEvent makeNodeOutageEvent(const graph::Graph& graph,
                                 graph::NodeId node,
                                 std::size_t startInterval,
                                 std::size_t intervalCount, int aliveLinks,
                                 double severity,
                                 util::SimTime latencyPenalty,
                                 util::Rng& rng) {
  ProblemEvent event;
  event.kind = ProblemEvent::Kind::Node;
  event.impairment = latencyPenalty > 0 ? ProblemEvent::Impairment::Latency
                                        : ProblemEvent::Impairment::Loss;
  event.node = node;
  event.startInterval = startInterval;
  event.intervalCount = intervalCount;
  event.severity = severity;
  event.latencyPenalty = latencyPenalty;
  event.activity = 1.0;

  // Spare `aliveLinks` random undirected links; affect all others.
  std::vector<graph::EdgeId> links(graph.outEdges(node).begin(),
                                   graph.outEdges(node).end());
  // Fisher-Yates partial shuffle: the first `spared` entries survive.
  const std::size_t spared = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(0, aliveLinks)),
      links.empty() ? 0 : links.size() - 1);
  for (std::size_t i = 0; i < spared; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniformInt(links.size() - i));
    std::swap(links[i], links[j]);
  }
  for (std::size_t i = spared; i < links.size(); ++i) {
    event.affectedEdges.push_back(links[i]);
    if (const auto r = graph.reverseEdge(links[i]))
      event.affectedEdges.push_back(*r);
  }
  std::sort(event.affectedEdges.begin(), event.affectedEdges.end());
  return event;
}

ProblemEvent makeLinkEvent(const graph::Graph& graph, graph::EdgeId edge,
                           std::size_t startInterval,
                           std::size_t intervalCount, double activity,
                           double severity, util::SimTime latencyPenalty) {
  ProblemEvent event;
  event.kind = ProblemEvent::Kind::Link;
  event.impairment = latencyPenalty > 0 ? ProblemEvent::Impairment::Latency
                                        : ProblemEvent::Impairment::Loss;
  event.link = edge;
  event.startInterval = startInterval;
  event.intervalCount = intervalCount;
  event.severity = severity;
  event.latencyPenalty = latencyPenalty;
  event.activity = activity;
  event.affectedEdges.push_back(edge);
  if (const auto r = graph.reverseEdge(edge))
    event.affectedEdges.push_back(*r);
  std::sort(event.affectedEdges.begin(), event.affectedEdges.end());
  return event;
}

namespace {

/// Validates durations and returns the interval count (shared by the
/// batch and streaming generators).
std::size_t resolveIntervalCount(const GeneratorParams& params) {
  if (params.duration <= 0 || params.intervalLength <= 0)
    throw std::invalid_argument("generateSyntheticTrace: bad durations");
  const auto intervalCount = static_cast<std::size_t>(
      params.duration / params.intervalLength);
  if (intervalCount == 0)
    throw std::invalid_argument(
        "generateSyntheticTrace: duration shorter than one interval");
  return intervalCount;
}

/// Draws the full ground-truth event list (node + link events,
/// start-sorted). Extracted verbatim from the batch generator so both
/// generation paths consume placementRng/shapeRng in the identical
/// order, which makes their event lists bit-equal.
std::vector<ProblemEvent> generateEventList(const graph::Graph& graph,
                                            const GeneratorParams& params,
                                            std::size_t intervalCount,
                                            util::Rng& placementRng,
                                            util::Rng& shapeRng) {
  std::vector<ProblemEvent> events;

  const double durationDays =
      util::toSeconds(params.duration) / 86'400.0;

  // --- Node (data-center) events -------------------------------------
  // Placement weights: degree^-exponent (edge sites over core POPs).
  std::vector<double> nodeWeights(graph.nodeCount(), 1.0);
  if (params.nodePlacementDegreeExponent != 0.0) {
    for (graph::NodeId n = 0; n < graph.nodeCount(); ++n) {
      const double degree =
          std::max<double>(1.0, static_cast<double>(graph.outDegree(n)));
      nodeWeights[n] =
          std::pow(degree, -params.nodePlacementDegreeExponent);
    }
  }
  const std::size_t nodeEvents =
      poisson(params.nodeEventsPerDay * durationDays, placementRng);
  for (std::size_t i = 0; i < nodeEvents; ++i) {
    const auto node =
        static_cast<graph::NodeId>(placementRng.weightedIndex(nodeWeights));
    const std::size_t start = static_cast<std::size_t>(
        placementRng.uniformInt(intervalCount));
    const std::size_t length = durationIntervals(
        params.nodeEventMedianSeconds, params.nodeEventSigma,
        params.intervalLength, shapeRng);  // dgcheck: ok(R6): shapeRng is a dedicated forked stream; the event list fixes draw order by design

    const bool blackout = shapeRng.bernoulli(params.nodeBlackoutProb);
    if (blackout) {
      // Hard full-site outage: nothing survives.
      events.push_back(makeNodeEvent(graph, node, start, length,
                                            /*coverage=*/1.0,
                                            /*activity=*/1.0,
                                            /*severity=*/1.0, 0, shapeRng));  // dgcheck: ok(R6): shapeRng is a dedicated forked stream; the event list fixes draw order by design
    } else if (shapeRng.bernoulli(params.nodePartialOutageProb)) {
      // Partial outage: all links dark except a surviving few.
      const int alive = static_cast<int>(shapeRng.uniformInt(
          params.outageAliveLinksMin, params.outageAliveLinksMax));
      double severity = 1.0;
      util::SimTime latencyPenalty = 0;
      if (shapeRng.bernoulli(params.latencyEventProb)) {
        severity = 0.0;
        latencyPenalty = static_cast<util::SimTime>(shapeRng.uniform(
            static_cast<double>(params.latencyPenaltyMin),
            static_cast<double>(params.latencyPenaltyMax)));
      }
      events.push_back(makeNodeOutageEvent(graph, node, start, length,
                                                  alive, severity,
                                                  latencyPenalty, shapeRng));  // dgcheck: ok(R6): shapeRng is a dedicated forked stream; the event list fixes draw order by design
    } else {
      // Site degradation: every link impaired, moderately, possibly
      // intermittently.
      const double activity =
          shapeRng.bernoulli(params.nodeSteadyProb)
              ? 1.0
              : shapeRng.uniform(params.nodeFlutterActivityMin,
                                 params.nodeFlutterActivityMax);
      const double severity =
          shapeRng.uniform(params.lossSeverityMin, params.lossSeverityMax);
      events.push_back(makeNodeEvent(graph, node, start, length,
                                            /*coverage=*/1.0, activity,
                                            severity, 0, shapeRng));
    }
  }

  // --- Isolated link events -------------------------------------------
  const std::size_t linkEvents =
      poisson(params.linkEventsPerDay * durationDays, placementRng);
  for (std::size_t i = 0; i < linkEvents; ++i) {
    const auto edge = static_cast<graph::EdgeId>(
        placementRng.uniformInt(graph.edgeCount()));
    const std::size_t start = static_cast<std::size_t>(
        placementRng.uniformInt(intervalCount));
    const std::size_t length = durationIntervals(
        params.linkEventMedianSeconds, params.linkEventSigma,
        params.intervalLength, shapeRng);  // dgcheck: ok(R6): shapeRng is a dedicated forked stream; the event list fixes draw order by design
    const double activity =
        shapeRng.uniform(params.linkActivityMin, params.linkActivityMax);
    double severity = 0.0;
    util::SimTime latencyPenalty = 0;
    if (shapeRng.bernoulli(params.latencyEventProb)) {
      latencyPenalty = static_cast<util::SimTime>(shapeRng.uniform(
          static_cast<double>(params.latencyPenaltyMin),
          static_cast<double>(params.latencyPenaltyMax)));
    } else {
      severity =
          shapeRng.uniform(params.lossSeverityMin, params.lossSeverityMax);
    }
    events.push_back(
        makeLinkEvent(graph, edge, start, length, activity, severity,
                      latencyPenalty));
  }

  std::sort(events.begin(), events.end(),
            [](const ProblemEvent& a, const ProblemEvent& b) {
              if (a.startInterval != b.startInterval)
                return a.startInterval < b.startInterval;
              return a.intervalCount < b.intervalCount;
            });
  return events;
}

/// One scheduled benign blip, pre-drawn in the batch path's exact order
/// (edge-major, then draw index) so the streaming sweep can fold blips
/// with bit-equal results.
struct ScheduledBlip {
  std::size_t interval = 0;
  graph::EdgeId edge = 0;
  double loss = 0.0;
};

std::vector<ScheduledBlip> generateBlipSchedule(
    const graph::Graph& graph, const GeneratorParams& params,
    std::size_t intervalCount, util::Rng& blipRng) {
  const double durationDays = util::toSeconds(params.duration) / 86'400.0;
  const double blipMean = params.blipsPerLinkPerDay * durationDays;
  std::vector<ScheduledBlip> schedule;
  for (graph::EdgeId e = 0; e < graph.edgeCount(); ++e) {
    const std::size_t blips = poisson(blipMean, blipRng);  // dgcheck: ok(R6): blipRng is a dedicated forked stream; per-edge draw order is the trace format contract
    for (std::size_t i = 0; i < blips; ++i) {
      ScheduledBlip blip;
      blip.interval = static_cast<std::size_t>(
          blipRng.uniformInt(intervalCount));
      blip.edge = e;
      blip.loss = blipRng.uniform(params.blipLossMin, params.blipLossMax);
      schedule.push_back(blip);
    }
  }
  return schedule;
}

}  // namespace

SyntheticTrace generateSyntheticTrace(const graph::Graph& graph,
                                      const GeneratorParams& params) {
  const std::size_t intervalCount = resolveIntervalCount(params);

  util::Rng master(params.seed);
  util::Rng placementRng = master.fork();
  util::Rng shapeRng = master.fork();
  util::Rng activityRng = master.fork();
  util::Rng blipRng = master.fork();

  SyntheticTrace result{
      Trace(params.intervalLength, intervalCount,
            healthyBaseline(graph, params.residualLoss)),
      generateEventList(graph, params, intervalCount, placementRng,
                        shapeRng)};

  for (const ProblemEvent& event : result.events) {
    applyEvent(result.trace, graph, event, activityRng,  // dgcheck: ok(R6): activityRng is a dedicated forked stream; event order fixes draw order by design
               params.boundaryActivityFactor);
  }

  // --- Benign single-interval blips ------------------------------------
  // Applied after events; they combine multiplicatively where they overlap.
  // Drawn through the same schedule helper the streaming path uses (the
  // helper consumes blipRng exactly as the historical inline loop did).
  for (const ScheduledBlip& blip :
       generateBlipSchedule(graph, params, intervalCount, blipRng)) {  // dgcheck: ok(R6): blipRng is a dedicated forked stream; per-edge draw order is the trace format contract
    LinkConditions impairment;
    impairment.lossRate = blip.loss;
    impairment.latency = result.trace.baseline(blip.edge).latency;
    result.trace.applyImpairment(blip.edge, blip.interval, impairment);
  }

  DG_LOG(Info) << "synthetic trace: " << intervalCount << " intervals, "
               << result.events.size() << " events";
  return result;
}

std::vector<ProblemEvent> streamSyntheticTrace(
    const graph::Graph& graph, const GeneratorParams& params,
    TraceSink& sink, StreamGenerationStats* stats) {
  const std::size_t intervalCount = resolveIntervalCount(params);

  util::Rng master(params.seed);
  util::Rng placementRng = master.fork();
  util::Rng shapeRng = master.fork();
  util::Rng activityRng = master.fork();
  util::Rng blipRng = master.fork();

  const std::vector<LinkConditions> baseline =
      healthyBaseline(graph, params.residualLoss);
  const std::vector<ProblemEvent> events = generateEventList(
      graph, params, intervalCount, placementRng, shapeRng);
  std::vector<ScheduledBlip> blips =
      generateBlipSchedule(graph, params, intervalCount, blipRng);
  // Stable by interval: preserves the batch path's (edge, draw index)
  // application order within an interval. Blips on different edges never
  // interact, so this reproduces the batch fold exactly.
  std::stable_sort(blips.begin(), blips.end(),
                   [](const ScheduledBlip& a, const ScheduledBlip& b) {
                     return a.interval < b.interval;
                   });

  StreamGenerationStats local;
  local.events = events.size();
  local.blips = blips.size();

  // Impairments drawn ahead of the sweep, keyed by interval. Holds only
  // the active-event window: an event's draws happen in full when the
  // sweep reaches its start interval and drain as the sweep passes.
  struct PendingOp {
    graph::EdgeId edge = 0;
    LinkConditions impairment;
  };
  std::map<std::size_t, std::vector<PendingOp>> pending;
  std::size_t pendingOps = 0;

  sink.begin(params.intervalLength, intervalCount, baseline);

  std::size_t nextEvent = 0;
  std::size_t nextBlip = 0;
  std::map<graph::EdgeId, LinkConditions> combined;
  std::vector<Deviation> deviations;
  for (std::size_t t = 0; t < intervalCount; ++t) {
    // Draw every event starting here, in list order -- events are
    // start-sorted, so this consumes activityRng in exactly the order
    // the batch path's applyEvent loop does.
    while (nextEvent < events.size() &&
           events[nextEvent].startInterval <= t) {
      drawEventImpairments(
          graph, events[nextEvent], activityRng,  // dgcheck: ok(R6): activityRng consumption mirrors the batch path draw-for-draw; order is the contract
          params.boundaryActivityFactor, intervalCount, baseline,
          [&pending, &pendingOps](std::size_t interval, graph::EdgeId edge,
                                  const LinkConditions& impairment) {
            pending[interval].push_back(PendingOp{edge, impairment});
            ++pendingOps;
          });
      ++nextEvent;
      local.peakPendingOps = std::max(local.peakPendingOps, pendingOps);
      local.peakPendingIntervals =
          std::max(local.peakPendingIntervals, pending.size());
    }

    // Fold this interval's ops in the batch order: events (as enqueued,
    // which is event order), then blips. combineConditions applied in
    // the same sequence on the same values is bit-reproducible.
    combined.clear();
    const auto fold = [&combined, &baseline](
                          graph::EdgeId edge,
                          const LinkConditions& impairment) {
      const auto it = combined.find(edge);
      const LinkConditions& current =
          it != combined.end() ? it->second : baseline[edge];
      const LinkConditions next = combineConditions(current, impairment);
      if (it != combined.end()) {
        it->second = next;
      } else {
        combined.emplace(edge, next);
      }
    };
    if (const auto it = pending.find(t); it != pending.end()) {
      for (const PendingOp& op : it->second) fold(op.edge, op.impairment);
      pendingOps -= it->second.size();
      pending.erase(it);
    }
    for (; nextBlip < blips.size() && blips[nextBlip].interval == t;
         ++nextBlip) {
      LinkConditions impairment;
      impairment.lossRate = blips[nextBlip].loss;
      impairment.latency = baseline[blips[nextBlip].edge].latency;
      fold(blips[nextBlip].edge, impairment);
    }
    if (combined.empty()) continue;
    deviations.assign(combined.begin(), combined.end());
    sink.interval(t, deviations);
    ++local.emittedIntervals;
    local.emittedDeviations += deviations.size();
  }
  sink.end();

  DG_LOG(Info) << "streamed synthetic trace: " << intervalCount
               << " intervals, " << local.events << " events, peak pending "
               << local.peakPendingOps << " impairments";
  if (stats) *stats = local;
  return events;
}

}  // namespace dg::trace
