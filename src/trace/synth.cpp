#include "trace/synth.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/logging.hpp"

namespace dg::trace {

namespace {

/// Draws the number of events for a Poisson process with the given mean
/// (inversion by sequential search; means here are small).
std::size_t poisson(double mean, util::Rng& rng) {
  if (mean <= 0) return 0;
  const double limit = std::exp(-mean);
  double product = rng.uniform();
  std::size_t count = 0;
  while (product > limit) {
    ++count;
    product *= rng.uniform();
  }
  return count;
}

std::size_t durationIntervals(double medianSeconds, double sigma,
                              util::SimTime intervalLength, util::Rng& rng) {
  const double seconds = rng.lognormalMedian(medianSeconds, sigma);
  const double intervals =
      seconds / util::toSeconds(intervalLength);
  return std::max<std::size_t>(1, static_cast<std::size_t>(
                                      std::llround(intervals)));
}

}  // namespace

void applyEvent(Trace& trace, const graph::Graph& graph,
                const ProblemEvent& event, util::Rng& rng,
                double boundaryActivityFactor) {
  // Group the affected directed edges into undirected links so both
  // directions share one activity draw per interval (a congested or
  // failing site degrades a link in both directions at once).
  std::vector<std::pair<graph::EdgeId, graph::EdgeId>> links;
  std::vector<char> used(graph.edgeCount(), 0);
  for (const graph::EdgeId e : event.affectedEdges) {
    if (used[e]) continue;
    used[e] = 1;
    graph::EdgeId reverse = graph::kInvalidEdge;
    if (const auto r = graph.reverseEdge(e); r.has_value() && !used[*r]) {
      const bool reverseAffected =
          std::find(event.affectedEdges.begin(), event.affectedEdges.end(),
                    *r) != event.affectedEdges.end();
      if (reverseAffected) {
        reverse = *r;
        used[*r] = 1;
      }
    }
    links.emplace_back(e, reverse);
  }

  const std::size_t end =
      std::min(event.endInterval(), trace.intervalCount());
  for (std::size_t interval = event.startInterval; interval < end;
       ++interval) {
    const bool boundary =
        interval == event.startInterval || interval + 1 == end;
    const double activity =
        boundary ? event.activity * boundaryActivityFactor : event.activity;
    for (const auto& [forward, reverse] : links) {
      if (!rng.bernoulli(activity)) continue;
      LinkConditions impairment;
      if (event.impairment == ProblemEvent::Impairment::Loss) {
        impairment.lossRate = event.severity;
        impairment.latency = trace.baseline(forward).latency;
      } else {
        impairment.lossRate = 0.0;
        impairment.latency =
            trace.baseline(forward).latency + event.latencyPenalty;
      }
      trace.applyImpairment(forward, interval, impairment);
      if (reverse != graph::kInvalidEdge) {
        LinkConditions reverseImpairment = impairment;
        if (event.impairment == ProblemEvent::Impairment::Latency) {
          reverseImpairment.latency =
              trace.baseline(reverse).latency + event.latencyPenalty;
        } else {
          reverseImpairment.latency = trace.baseline(reverse).latency;
        }
        trace.applyImpairment(reverse, interval, reverseImpairment);
      }
    }
  }
}

ProblemEvent makeNodeEvent(const graph::Graph& graph, graph::NodeId node,
                           std::size_t startInterval,
                           std::size_t intervalCount, double coverage,
                           double activity, double severity,
                           util::SimTime latencyPenalty, util::Rng& rng) {
  ProblemEvent event;
  event.kind = ProblemEvent::Kind::Node;
  event.impairment = latencyPenalty > 0 ? ProblemEvent::Impairment::Latency
                                        : ProblemEvent::Impairment::Loss;
  event.node = node;
  event.startInterval = startInterval;
  event.intervalCount = intervalCount;
  event.severity = severity;
  event.latencyPenalty = latencyPenalty;
  event.activity = activity;

  // Select affected undirected links with probability `coverage` each;
  // force at least one so the event is never a no-op.
  std::vector<graph::EdgeId> candidates(graph.outEdges(node).begin(),
                                        graph.outEdges(node).end());
  for (const graph::EdgeId e : candidates) {
    if (!rng.bernoulli(coverage)) continue;
    event.affectedEdges.push_back(e);
    if (const auto r = graph.reverseEdge(e)) event.affectedEdges.push_back(*r);
  }
  if (event.affectedEdges.empty() && !candidates.empty()) {
    const graph::EdgeId e =
        candidates[rng.uniformInt(candidates.size())];
    event.affectedEdges.push_back(e);
    if (const auto r = graph.reverseEdge(e)) event.affectedEdges.push_back(*r);
  }
  std::sort(event.affectedEdges.begin(), event.affectedEdges.end());
  return event;
}

ProblemEvent makeNodeOutageEvent(const graph::Graph& graph,
                                 graph::NodeId node,
                                 std::size_t startInterval,
                                 std::size_t intervalCount, int aliveLinks,
                                 double severity,
                                 util::SimTime latencyPenalty,
                                 util::Rng& rng) {
  ProblemEvent event;
  event.kind = ProblemEvent::Kind::Node;
  event.impairment = latencyPenalty > 0 ? ProblemEvent::Impairment::Latency
                                        : ProblemEvent::Impairment::Loss;
  event.node = node;
  event.startInterval = startInterval;
  event.intervalCount = intervalCount;
  event.severity = severity;
  event.latencyPenalty = latencyPenalty;
  event.activity = 1.0;

  // Spare `aliveLinks` random undirected links; affect all others.
  std::vector<graph::EdgeId> links(graph.outEdges(node).begin(),
                                   graph.outEdges(node).end());
  // Fisher-Yates partial shuffle: the first `spared` entries survive.
  const std::size_t spared = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(0, aliveLinks)),
      links.empty() ? 0 : links.size() - 1);
  for (std::size_t i = 0; i < spared; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniformInt(links.size() - i));
    std::swap(links[i], links[j]);
  }
  for (std::size_t i = spared; i < links.size(); ++i) {
    event.affectedEdges.push_back(links[i]);
    if (const auto r = graph.reverseEdge(links[i]))
      event.affectedEdges.push_back(*r);
  }
  std::sort(event.affectedEdges.begin(), event.affectedEdges.end());
  return event;
}

ProblemEvent makeLinkEvent(const graph::Graph& graph, graph::EdgeId edge,
                           std::size_t startInterval,
                           std::size_t intervalCount, double activity,
                           double severity, util::SimTime latencyPenalty) {
  ProblemEvent event;
  event.kind = ProblemEvent::Kind::Link;
  event.impairment = latencyPenalty > 0 ? ProblemEvent::Impairment::Latency
                                        : ProblemEvent::Impairment::Loss;
  event.link = edge;
  event.startInterval = startInterval;
  event.intervalCount = intervalCount;
  event.severity = severity;
  event.latencyPenalty = latencyPenalty;
  event.activity = activity;
  event.affectedEdges.push_back(edge);
  if (const auto r = graph.reverseEdge(edge))
    event.affectedEdges.push_back(*r);
  std::sort(event.affectedEdges.begin(), event.affectedEdges.end());
  return event;
}

SyntheticTrace generateSyntheticTrace(const graph::Graph& graph,
                                      const GeneratorParams& params) {
  if (params.duration <= 0 || params.intervalLength <= 0)
    throw std::invalid_argument("generateSyntheticTrace: bad durations");
  const auto intervalCount = static_cast<std::size_t>(
      params.duration / params.intervalLength);
  if (intervalCount == 0)
    throw std::invalid_argument(
        "generateSyntheticTrace: duration shorter than one interval");

  util::Rng master(params.seed);
  util::Rng placementRng = master.fork();
  util::Rng shapeRng = master.fork();
  util::Rng activityRng = master.fork();
  util::Rng blipRng = master.fork();

  SyntheticTrace result{
      Trace(params.intervalLength, intervalCount,
            healthyBaseline(graph, params.residualLoss)),
      {}};

  const double durationDays =
      util::toSeconds(params.duration) / 86'400.0;

  // --- Node (data-center) events -------------------------------------
  // Placement weights: degree^-exponent (edge sites over core POPs).
  std::vector<double> nodeWeights(graph.nodeCount(), 1.0);
  if (params.nodePlacementDegreeExponent != 0.0) {
    for (graph::NodeId n = 0; n < graph.nodeCount(); ++n) {
      const double degree =
          std::max<double>(1.0, static_cast<double>(graph.outDegree(n)));
      nodeWeights[n] =
          std::pow(degree, -params.nodePlacementDegreeExponent);
    }
  }
  const std::size_t nodeEvents =
      poisson(params.nodeEventsPerDay * durationDays, placementRng);
  for (std::size_t i = 0; i < nodeEvents; ++i) {
    const auto node =
        static_cast<graph::NodeId>(placementRng.weightedIndex(nodeWeights));
    const std::size_t start = static_cast<std::size_t>(
        placementRng.uniformInt(intervalCount));
    const std::size_t length = durationIntervals(
        params.nodeEventMedianSeconds, params.nodeEventSigma,
        params.intervalLength, shapeRng);

    const bool blackout = shapeRng.bernoulli(params.nodeBlackoutProb);
    if (blackout) {
      // Hard full-site outage: nothing survives.
      result.events.push_back(makeNodeEvent(graph, node, start, length,
                                            /*coverage=*/1.0,
                                            /*activity=*/1.0,
                                            /*severity=*/1.0, 0, shapeRng));
    } else if (shapeRng.bernoulli(params.nodePartialOutageProb)) {
      // Partial outage: all links dark except a surviving few.
      const int alive = static_cast<int>(shapeRng.uniformInt(
          params.outageAliveLinksMin, params.outageAliveLinksMax));
      double severity = 1.0;
      util::SimTime latencyPenalty = 0;
      if (shapeRng.bernoulli(params.latencyEventProb)) {
        severity = 0.0;
        latencyPenalty = static_cast<util::SimTime>(shapeRng.uniform(
            static_cast<double>(params.latencyPenaltyMin),
            static_cast<double>(params.latencyPenaltyMax)));
      }
      result.events.push_back(makeNodeOutageEvent(graph, node, start, length,
                                                  alive, severity,
                                                  latencyPenalty, shapeRng));
    } else {
      // Site degradation: every link impaired, moderately, possibly
      // intermittently.
      const double activity =
          shapeRng.bernoulli(params.nodeSteadyProb)
              ? 1.0
              : shapeRng.uniform(params.nodeFlutterActivityMin,
                                 params.nodeFlutterActivityMax);
      const double severity =
          shapeRng.uniform(params.lossSeverityMin, params.lossSeverityMax);
      result.events.push_back(makeNodeEvent(graph, node, start, length,
                                            /*coverage=*/1.0, activity,
                                            severity, 0, shapeRng));
    }
  }

  // --- Isolated link events -------------------------------------------
  const std::size_t linkEvents =
      poisson(params.linkEventsPerDay * durationDays, placementRng);
  for (std::size_t i = 0; i < linkEvents; ++i) {
    const auto edge = static_cast<graph::EdgeId>(
        placementRng.uniformInt(graph.edgeCount()));
    const std::size_t start = static_cast<std::size_t>(
        placementRng.uniformInt(intervalCount));
    const std::size_t length = durationIntervals(
        params.linkEventMedianSeconds, params.linkEventSigma,
        params.intervalLength, shapeRng);
    const double activity =
        shapeRng.uniform(params.linkActivityMin, params.linkActivityMax);
    double severity = 0.0;
    util::SimTime latencyPenalty = 0;
    if (shapeRng.bernoulli(params.latencyEventProb)) {
      latencyPenalty = static_cast<util::SimTime>(shapeRng.uniform(
          static_cast<double>(params.latencyPenaltyMin),
          static_cast<double>(params.latencyPenaltyMax)));
    } else {
      severity =
          shapeRng.uniform(params.lossSeverityMin, params.lossSeverityMax);
    }
    result.events.push_back(
        makeLinkEvent(graph, edge, start, length, activity, severity,
                      latencyPenalty));
  }

  std::sort(result.events.begin(), result.events.end(),
            [](const ProblemEvent& a, const ProblemEvent& b) {
              if (a.startInterval != b.startInterval)
                return a.startInterval < b.startInterval;
              return a.intervalCount < b.intervalCount;
            });
  for (const ProblemEvent& event : result.events) {
    applyEvent(result.trace, graph, event, activityRng,
               params.boundaryActivityFactor);
  }

  // --- Benign single-interval blips ------------------------------------
  // Applied after events; they combine multiplicatively where they overlap.
  const double blipMean = params.blipsPerLinkPerDay * durationDays;
  for (graph::EdgeId e = 0; e < graph.edgeCount(); ++e) {
    const std::size_t blips = poisson(blipMean, blipRng);
    for (std::size_t i = 0; i < blips; ++i) {
      const std::size_t interval = static_cast<std::size_t>(
          blipRng.uniformInt(intervalCount));
      LinkConditions impairment;
      impairment.lossRate =
          blipRng.uniform(params.blipLossMin, params.blipLossMax);
      impairment.latency = result.trace.baseline(e).latency;
      result.trace.applyImpairment(e, interval, impairment);
    }
  }

  DG_LOG(Info) << "synthetic trace: " << intervalCount << " intervals, "
               << result.events.size() << " events";
  return result;
}

}  // namespace dg::trace
