#include "trace/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace dg::trace {

Trace::Trace(util::SimTime intervalLength, std::size_t intervalCount,
             std::vector<LinkConditions> baseline)
    : intervalLength_(intervalLength),
      baseline_(std::move(baseline)),
      intervals_(intervalCount) {
  if (intervalLength <= 0)
    throw std::invalid_argument("Trace: interval length must be positive");
  if (intervalCount == 0)
    throw std::invalid_argument("Trace: interval count must be positive");
}

std::size_t Trace::intervalAt(util::SimTime t) const {
  if (t < 0 || intervals_.empty()) return 0;
  const auto idx = static_cast<std::size_t>(t / intervalLength_);
  return std::min(idx, intervals_.size() - 1);
}

void Trace::setCondition(graph::EdgeId edge, std::size_t interval,
                         LinkConditions conditions) {
  auto& devs = intervals_[interval];
  const auto it = std::lower_bound(
      devs.begin(), devs.end(), edge,
      [](const auto& pair, graph::EdgeId id) { return pair.first < id; });
  if (it != devs.end() && it->first == edge) {
    it->second = conditions;
  } else {
    devs.insert(it, {edge, conditions});
  }
}

void Trace::applyImpairment(graph::EdgeId edge, std::size_t interval,
                            const LinkConditions& impairment) {
  // The impairment is combined with the *current* condition: latency
  // penalties are expressed as absolute link latency, loss multiplies in.
  const LinkConditions current = at(edge, interval);
  setCondition(edge, interval, combineConditions(current, impairment));
}

const LinkConditions& Trace::at(graph::EdgeId edge,
                                std::size_t interval) const {
  const auto& devs = intervals_[interval];
  const auto it = std::lower_bound(
      devs.begin(), devs.end(), edge,
      [](const auto& pair, graph::EdgeId id) { return pair.first < id; });
  if (it != devs.end() && it->first == edge) return it->second;
  return baseline_[edge];
}

// dgcheck: cold: non-cursor fallback; conditionCursor runs (the hot configuration) never materialize per-interval vectors
std::vector<util::SimTime> Trace::latenciesAt(std::size_t interval) const {
  std::vector<util::SimTime> out;
  out.reserve(baseline_.size());
  for (const LinkConditions& c : baseline_) out.push_back(c.latency);
  for (const auto& [edge, conditions] : intervals_[interval])
    out[edge] = conditions.latency;
  return out;
}

// dgcheck: cold: non-cursor fallback; conditionCursor runs (the hot configuration) never materialize per-interval vectors
std::vector<double> Trace::lossRatesAt(std::size_t interval) const {
  std::vector<double> out;
  out.reserve(baseline_.size());
  for (const LinkConditions& c : baseline_) out.push_back(c.lossRate);
  for (const auto& [edge, conditions] : intervals_[interval])
    out[edge] = conditions.lossRate;
  return out;
}

std::string Trace::toString() const {
  std::ostringstream out;
  out << "trace " << intervalLength_ << ' ' << intervals_.size() << ' '
      << baseline_.size() << '\n';
  for (std::size_t e = 0; e < baseline_.size(); ++e) {
    out << "base " << e << ' ' << baseline_[e].lossRate << ' '
        << baseline_[e].latency << '\n';
  }
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    for (const auto& [edge, c] : intervals_[i]) {
      out << "dev " << i << ' ' << edge << ' ' << c.lossRate << ' '
          << c.latency << '\n';
    }
  }
  return out.str();
}

Trace Trace::fromString(std::string_view text) {
  std::optional<Trace> trace;
  std::size_t lineNo = 0;
  for (const auto& rawLine : util::split(text, '\n')) {
    ++lineNo;
    const std::string_view line = util::trim(rawLine);
    if (line.empty() || line.front() == '#') continue;
    const auto fields = util::splitWhitespace(line);
    const auto fail = [&](const std::string& why) {
      throw std::runtime_error("Trace line " + std::to_string(lineNo) + ": " +
                               why);
    };
    if (fields[0] == "trace") {
      if (trace) fail("duplicate header");
      if (fields.size() != 4) fail("expected: trace INTERVAL COUNT EDGES");
      std::int64_t intervalUs = 0, count = 0, edges = 0;
      if (!util::parseInt64(fields[1], intervalUs) ||
          !util::parseInt64(fields[2], count) ||
          !util::parseInt64(fields[3], edges) || count <= 0 || edges <= 0)
        fail("bad header values");
      trace.emplace(intervalUs, static_cast<std::size_t>(count),
                    std::vector<LinkConditions>(
                        static_cast<std::size_t>(edges)));
    } else if (fields[0] == "base") {
      if (!trace) fail("base before header");
      if (fields.size() != 4) fail("expected: base EDGE LOSS LATENCY");
      std::int64_t edge = 0, latency = 0;
      double loss = 0;
      if (!util::parseInt64(fields[1], edge) ||
          !util::parseDouble(fields[2], loss) ||
          !util::parseInt64(fields[3], latency) || edge < 0 ||
          static_cast<std::size_t>(edge) >= trace->baseline_.size())
        fail("bad base record");
      trace->baseline_[static_cast<std::size_t>(edge)] =
          LinkConditions{loss, latency};
    } else if (fields[0] == "dev") {
      if (!trace) fail("dev before header");
      if (fields.size() != 5) fail("expected: dev INTERVAL EDGE LOSS LATENCY");
      std::int64_t interval = 0, edge = 0, latency = 0;
      double loss = 0;
      if (!util::parseInt64(fields[1], interval) ||
          !util::parseInt64(fields[2], edge) ||
          !util::parseDouble(fields[3], loss) ||
          !util::parseInt64(fields[4], latency) || interval < 0 ||
          static_cast<std::size_t>(interval) >= trace->intervals_.size() ||
          edge < 0 ||
          static_cast<std::size_t>(edge) >= trace->baseline_.size())
        fail("bad dev record");
      trace->setCondition(static_cast<graph::EdgeId>(edge),
                          static_cast<std::size_t>(interval),
                          LinkConditions{loss, latency});
    } else {
      fail("unknown directive " + fields[0]);
    }
  }
  if (!trace) throw std::runtime_error("Trace: missing header");
  return std::move(*trace);
}

void Trace::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Trace: cannot write " + path);
  out << toString();
}

Trace Trace::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Trace: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return fromString(buffer.str());
}

std::vector<LinkConditions> healthyBaseline(const graph::Graph& graph,
                                            double residualLoss) {
  std::vector<LinkConditions> baseline;
  baseline.reserve(graph.edgeCount());
  for (graph::EdgeId e = 0; e < graph.edgeCount(); ++e) {
    baseline.push_back(LinkConditions{residualLoss, graph.edge(e).latency});
  }
  return baseline;
}

}  // namespace dg::trace
