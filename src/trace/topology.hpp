// Overlay topology: named geographic sites plus the directed overlay
// graph connecting them, with propagation latencies derived from
// great-circle distances over fiber.
//
// Three builtins ship with the library: `ltn12()` (a synthetic stand-in
// for the 12-data-center commercial overlay the paper evaluated on --
// same node count, same 64-directed-edge scale, and comparable
// transcontinental latency structure, so the paper's 65 ms one-way
// budget is binding for cross-US flows exactly as in the original
// evaluation), the sparser `abilene11()` backbone, and the compact
// `mesh5()` used by localhost live-fleet soaks. Larger parameterized
// overlays come from the generator families in src/topogen/.
//
// Construction enforces the invariants every consumer assumes: unique,
// whitespace-free site names with in-range coordinates; no self-loops;
// no duplicate links; strictly positive latencies; and links added
// bidirectionally so a forward edge id is always even with its reverse
// at forward + 1.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "util/sim_time.hpp"

namespace dg::trace {

/// A data-center site hosting one overlay node.
struct Site {
  std::string name;      ///< short code, e.g. "NYC"
  double latitudeDeg = 0.0;
  double longitudeDeg = 0.0;
};

/// Great-circle distance between two coordinates, in kilometres.
double haversineKm(double lat1Deg, double lon1Deg, double lat2Deg,
                   double lon2Deg);

/// One-way propagation latency of a fiber route covering `km`
/// great-circle kilometres: light in fiber travels ~200,000 km/s and real
/// routes are longer than great circles by `inflation` (default 1.4).
util::SimTime fiberLatency(double km, double inflation = 1.4);

class Topology {
 public:
  /// Adds a site; names must be unique. Returns the overlay node id.
  graph::NodeId addSite(Site site);

  /// Connects two sites bidirectionally with geo-derived latency.
  /// Returns the forward edge id (backward is forward + 1). Throws
  /// std::invalid_argument on self-loops, duplicate links (either
  /// direction) and non-positive latencies.
  graph::EdgeId connect(std::string_view a, std::string_view b);

  /// Connects two sites bidirectionally with an explicit latency; same
  /// validation as connect().
  graph::EdgeId connectWithLatency(std::string_view a, std::string_view b,
                                   util::SimTime latency);

  const graph::Graph& graph() const { return graph_; }
  std::size_t siteCount() const { return sites_.size(); }
  const Site& site(graph::NodeId id) const { return sites_[id]; }
  const std::string& name(graph::NodeId id) const { return sites_[id].name; }
  std::optional<graph::NodeId> byName(std::string_view name) const;
  /// byName or throws std::out_of_range with the name in the message.
  graph::NodeId at(std::string_view name) const;

  /// Human-readable edge description "NYC->CHI".
  std::string edgeName(graph::EdgeId id) const;

  /// The LTN-like builtin: 12 sites (10 US, 2 EU), 32 undirected /
  /// 64 directed links.
  static Topology ltn12();

  /// The classic Internet2 Abilene backbone: 11 US sites, 14 undirected
  /// links. Much sparser than ltn12 (several flows have only one or two
  /// node-disjoint paths), useful for studying the schemes when
  /// redundancy is scarce and for testing on a second real-world shape.
  static Topology abilene11();

  /// A compact 5-site US mesh (NYC, CHI, DFW, DEN, SJC; 8 undirected /
  /// 16 directed links) sized for localhost live-fleet soaks: one
  /// process per site is cheap, NYC->SJC still has two node-disjoint
  /// paths (via DEN and via DFW) under the 65 ms deadline, and 16 edges
  /// sit comfortably inside the 64-bit stamped graph mask.
  static Topology mesh5();

  /// Parses the text format produced by toString():
  ///   site NAME LAT LON
  ///   link NAME_A NAME_B [LATENCY_US]
  /// '#' starts a comment. Throws std::runtime_error on malformed input.
  static Topology fromString(std::string_view text);
  static Topology fromFile(const std::string& path);
  std::string toString() const;

 private:
  /// Shared invariant enforcement behind both connect flavours.
  graph::EdgeId connectChecked(graph::NodeId a, graph::NodeId b,
                               util::SimTime latency);

  graph::Graph graph_;
  std::vector<Site> sites_;
  std::unordered_map<std::string, graph::NodeId> byName_;
};

}  // namespace dg::trace
