// Importer for externally collected link measurements.
//
// The evaluation in this repository runs on synthetic traces, but the
// pipeline is measurement-agnostic: anyone with real per-link probe data
// (as the paper's authors had from their commercial overlay) can import
// it here and replay the identical experiments. The input format is a
// plain CSV of individual measurement records:
//
//     # time_s, from_site, to_site, loss_rate, latency_us
//     0.0,  NYC, CHI, 0.0,   8991
//     10.0, NYC, CHI, 0.02,  9120
//     ...
//
// Records are bucketed into the trace's fixed intervals; multiple records
// for the same (link, interval) are averaged; intervals without records
// keep the link's healthy baseline (continuously probed deployments have
// no such gaps; sparse data degrades gracefully).
#pragma once

#include <string>
#include <string_view>

#include "trace/topology.hpp"
#include "trace/trace.hpp"

namespace dg::trace {

struct ImportOptions {
  util::SimTime intervalLength = util::seconds(10);
  /// Healthy residual loss assumed where no measurement exists.
  double residualLoss = 1e-4;
  /// Records before this time are dropped; interval 0 starts here.
  util::SimTime startTime = 0;
  /// Ignore records whose sites are unknown instead of failing (useful
  /// when importing a larger mesh than the overlay models).
  bool skipUnknownSites = false;
};

/// Parses CSV measurement text into a Trace over `topology`'s links.
/// Throws std::runtime_error with a line number on malformed input, on
/// unknown sites (unless skipUnknownSites), on links absent from the
/// topology, and on out-of-range values.
Trace importMeasurementsCsv(const Topology& topology, std::string_view csv,
                            const ImportOptions& options = {});

/// File variant of importMeasurementsCsv.
Trace importMeasurementsCsvFile(const Topology& topology,
                                const std::string& path,
                                const ImportOptions& options = {});

/// Exports a trace to the same CSV format (one record per deviation,
/// plus a baseline comment header) -- round-trips with the importer for
/// inspection and external tooling.
std::string exportMeasurementsCsv(const Topology& topology,
                                  const Trace& trace);

}  // namespace dg::trace
