// Allocation-free sequential access to a trace's per-interval conditions.
//
// Trace storage is sparse (baseline + per-interval deviation lists), but
// the playback hot loop wants dense per-edge loss/latency arrays every
// interval. Materializing fresh vectors per interval (Trace::lossRatesAt/
// latenciesAt) costs O(edges) allocation + copy per step; a
// ConditionTimeline cursor instead owns one pair of dense arrays and
// moves between intervals by undoing the old interval's deviations and
// applying the new one's -- O(changes) per step, zero allocation, with
// stable std::span views into the arrays.
//
// A ConditionIndex assigns every interval an exact *content id*: two
// intervals share an id iff their deviation lists are element-wise equal
// (id 0 is reserved for clean/baseline intervals). Content ids are dense
// small integers interned by full comparison -- never by hash alone -- so
// they are safe to use as exact memoization keys for "this network view
// has been decided/evaluated before".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/trace.hpp"

namespace dg::trace {

class ConditionIndex {
 public:
  /// Content id of every clean (deviation-free) interval.
  static constexpr std::uint32_t kCleanContent = 0;

  explicit ConditionIndex(const Trace& trace);

  std::size_t intervalCount() const { return ids_.size(); }

  /// Exact content id of an interval; equal ids imply element-wise equal
  /// deviation lists (and therefore identical dense condition arrays).
  std::uint32_t contentId(std::size_t interval) const {
    return ids_[interval];
  }

  /// Number of distinct contents seen (including the clean content).
  std::size_t distinctContents() const { return distinct_; }

 private:
  std::vector<std::uint32_t> ids_;
  std::size_t distinct_ = 1;
};

/// Abstract per-interval deviation feed for timeline cursors. Backed by
/// an in-memory Trace (adapter below) or by the packed-trace store's
/// chunked reader, which decodes on demand and hands out spans into a
/// reused workspace -- so a cursor can replay a multi-week packed trace
/// with memory bounded by one chunk, never the whole trace.
class ConditionSource {
 public:
  virtual ~ConditionSource() = default;

  virtual std::size_t intervalCount() const = 0;
  virtual std::size_t edgeCount() const = 0;
  /// Healthy per-edge conditions; valid for the source's lifetime.
  virtual std::span<const LinkConditions> baseline() const = 0;
  /// Edge-sorted deviation list of one interval. The span is only
  /// guaranteed valid until the next deviationsAt() call (chunked
  /// sources reuse their decode workspace); callers that need the
  /// previous interval's list across a call must copy it.
  virtual std::span<const std::pair<graph::EdgeId, LinkConditions>>
  deviationsAt(std::size_t interval) = 0;
};

class ConditionTimeline {
 public:
  static constexpr std::size_t kUnpositioned = static_cast<std::size_t>(-1);

  explicit ConditionTimeline(const Trace& trace);
  /// Source-backed cursor: identical semantics, deviations pulled from
  /// `source` (which must outlive the cursor). Used for streaming
  /// playback over packed traces without materializing a Trace.
  explicit ConditionTimeline(ConditionSource& source);

  std::size_t interval() const { return interval_; }
  bool positioned() const { return interval_ != kUnpositioned; }

  /// Moves the cursor to `interval` by undoing the current interval's
  /// deviations and applying the target's: O(deviations of the two
  /// intervals), independent of seek distance. Throws std::out_of_range
  /// past the trace end.
  void seek(std::size_t interval);

  /// Dense per-edge views of the current interval's conditions. The spans
  /// stay valid (and their contents current) across seek() calls.
  std::span<const double> lossRates() const { return loss_; }
  std::span<const util::SimTime> latencies() const { return latency_; }

  /// The backing trace. Only valid for trace-backed cursors (the
  /// playback engine's); source-backed cursors have no Trace.
  const Trace& trace() const { return *trace_; }

 private:
  const Trace* trace_ = nullptr;       ///< null when source-backed
  ConditionSource* source_ = nullptr;  ///< null when trace-backed
  std::size_t interval_ = kUnpositioned;
  std::vector<double> loss_;
  std::vector<util::SimTime> latency_;
  /// Source-backed mode: copy of the current interval's deviations (the
  /// source's span may die at the next deviationsAt call, but seek()
  /// needs it to undo). Reuses capacity, so steady-state seeks stay
  /// allocation-free.
  std::vector<std::pair<graph::EdgeId, LinkConditions>> current_;
};

}  // namespace dg::trace
