#include "trace/topology.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <numbers>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace dg::trace {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kFiberKmPerSecond = 200'000.0;  // ~2/3 c
}  // namespace

double haversineKm(double lat1Deg, double lon1Deg, double lat2Deg,
                   double lon2Deg) {
  const auto rad = [](double deg) { return deg * std::numbers::pi / 180.0; };
  const double dLat = rad(lat2Deg - lat1Deg);
  const double dLon = rad(lon2Deg - lon1Deg);
  const double a = std::sin(dLat / 2) * std::sin(dLat / 2) +
                   std::cos(rad(lat1Deg)) * std::cos(rad(lat2Deg)) *
                       std::sin(dLon / 2) * std::sin(dLon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(a)));
}

util::SimTime fiberLatency(double km, double inflation) {
  const double seconds = km * inflation / kFiberKmPerSecond;
  return static_cast<util::SimTime>(std::llround(seconds * 1e6));
}

graph::NodeId Topology::addSite(Site site) {
  if (site.name.empty())
    throw std::invalid_argument("Topology: empty site name");
  for (const char c : site.name) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '#')
      throw std::invalid_argument(
          "Topology: site name would break the text format: " + site.name);
  }
  if (!(site.latitudeDeg >= -90.0 && site.latitudeDeg <= 90.0) ||
      !(site.longitudeDeg >= -180.0 && site.longitudeDeg <= 180.0))
    throw std::invalid_argument("Topology: coordinates out of range for " +
                                site.name);
  if (byName_.count(site.name) > 0)
    throw std::invalid_argument("Topology: duplicate site " + site.name);
  const graph::NodeId id = graph_.addNode();
  byName_[site.name] = id;
  sites_.push_back(std::move(site));
  return id;
}

graph::EdgeId Topology::connect(std::string_view a, std::string_view b) {
  const graph::NodeId na = at(a);
  const graph::NodeId nb = at(b);
  const double km =
      haversineKm(sites_[na].latitudeDeg, sites_[na].longitudeDeg,
                  sites_[nb].latitudeDeg, sites_[nb].longitudeDeg);
  return connectChecked(na, nb, fiberLatency(km));
}

graph::EdgeId Topology::connectWithLatency(std::string_view a,
                                           std::string_view b,
                                           util::SimTime latency) {
  return connectChecked(at(a), at(b), latency);
}

graph::EdgeId Topology::connectChecked(graph::NodeId a, graph::NodeId b,
                                       util::SimTime latency) {
  if (a == b)
    throw std::invalid_argument("Topology: self-loop on site " +
                                sites_[a].name);
  if (graph_.findEdge(a, b).has_value() || graph_.findEdge(b, a).has_value())
    throw std::invalid_argument("Topology: duplicate link " + sites_[a].name +
                                " -- " + sites_[b].name);
  if (latency <= 0)
    throw std::invalid_argument("Topology: non-positive latency on link " +
                                sites_[a].name + " -- " + sites_[b].name);
  return graph_.addBidirectional(a, b, latency);
}

std::optional<graph::NodeId> Topology::byName(std::string_view name) const {
  const auto it = byName_.find(std::string(name));
  if (it == byName_.end()) return std::nullopt;
  return it->second;
}

graph::NodeId Topology::at(std::string_view name) const {
  const auto id = byName(name);
  if (!id) throw std::out_of_range("Topology: unknown site " +
                                   std::string(name));
  return *id;
}

std::string Topology::edgeName(graph::EdgeId id) const {
  const graph::Edge& e = graph_.edge(id);
  return sites_[e.from].name + "->" + sites_[e.to].name;
}

Topology Topology::ltn12() {
  Topology t;
  // Ten US sites plus London and Frankfurt -- a 12-data-center global
  // overlay in the mould of the commercial network the paper measured.
  t.addSite({"NYC", 40.71, -74.01});
  t.addSite({"JHU", 39.33, -76.62});  // Baltimore (Johns Hopkins)
  t.addSite({"WAS", 38.91, -77.04});
  t.addSite({"ATL", 33.75, -84.39});
  t.addSite({"CHI", 41.88, -87.63});
  t.addSite({"DFW", 32.78, -96.80});
  t.addSite({"DEN", 39.74, -104.99});
  t.addSite({"LAX", 34.05, -118.24});
  t.addSite({"SJC", 37.34, -121.89});
  t.addSite({"SEA", 47.61, -122.33});
  t.addSite({"LON", 51.51, -0.13});
  t.addSite({"FRA", 50.11, 8.68});

  // 32 undirected links = 64 directed overlay edges.
  // East-coast mesh.
  t.connect("NYC", "JHU");
  t.connect("NYC", "WAS");
  t.connect("JHU", "WAS");
  t.connect("NYC", "ATL");
  t.connect("JHU", "ATL");
  t.connect("WAS", "ATL");
  // East <-> middle.
  t.connect("NYC", "CHI");
  t.connect("JHU", "CHI");
  t.connect("WAS", "CHI");
  t.connect("ATL", "CHI");
  t.connect("ATL", "DFW");
  t.connect("ATL", "DEN");
  // Middle mesh.
  t.connect("CHI", "DEN");
  t.connect("CHI", "DFW");
  t.connect("DFW", "DEN");
  t.connect("CHI", "SEA");
  // West-coast mesh.
  t.connect("DEN", "SEA");
  t.connect("DEN", "SJC");
  t.connect("DEN", "LAX");
  t.connect("DFW", "LAX");
  t.connect("DFW", "SJC");
  t.connect("LAX", "SJC");
  t.connect("SJC", "SEA");
  t.connect("LAX", "SEA");
  // Southern transcontinental shortcut.
  t.connect("ATL", "LAX");
  // Transatlantic and Europe.
  t.connect("NYC", "LON");
  t.connect("WAS", "LON");
  t.connect("JHU", "LON");
  t.connect("NYC", "FRA");
  t.connect("WAS", "FRA");
  t.connect("LON", "FRA");
  t.connect("CHI", "LON");
  return t;
}

Topology Topology::abilene11() {
  Topology t;
  t.addSite({"SEA", 47.61, -122.33});
  t.addSite({"SNV", 37.37, -122.04});  // Sunnyvale
  t.addSite({"LAX", 34.05, -118.24});
  t.addSite({"DEN", 39.74, -104.99});
  t.addSite({"KSC", 39.10, -94.58});   // Kansas City
  t.addSite({"HOU", 29.76, -95.37});
  t.addSite({"CHI", 41.88, -87.63});
  t.addSite({"IPL", 39.77, -86.16});   // Indianapolis
  t.addSite({"ATL", 33.75, -84.39});
  t.addSite({"WDC", 38.91, -77.04});
  t.addSite({"NYC", 40.71, -74.01});

  // The 14 Abilene backbone links.
  t.connect("SEA", "SNV");
  t.connect("SEA", "DEN");
  t.connect("SNV", "LAX");
  t.connect("SNV", "DEN");
  t.connect("LAX", "HOU");
  t.connect("DEN", "KSC");
  t.connect("KSC", "HOU");
  t.connect("KSC", "IPL");
  t.connect("HOU", "ATL");
  t.connect("IPL", "CHI");
  t.connect("IPL", "ATL");
  t.connect("CHI", "NYC");
  t.connect("ATL", "WDC");
  t.connect("NYC", "WDC");
  return t;
}

Topology Topology::mesh5() {
  Topology t;
  t.addSite({"NYC", 40.71, -74.01});
  t.addSite({"CHI", 41.88, -87.63});
  t.addSite({"DFW", 32.78, -96.80});
  t.addSite({"DEN", 39.74, -104.99});
  t.addSite({"SJC", 37.34, -121.89});

  // 8 undirected links = 16 directed overlay edges.
  t.connect("NYC", "CHI");
  t.connect("NYC", "DFW");
  t.connect("NYC", "DEN");
  t.connect("CHI", "DFW");
  t.connect("CHI", "DEN");
  t.connect("DFW", "DEN");
  t.connect("DFW", "SJC");
  t.connect("DEN", "SJC");
  return t;
}

Topology Topology::fromString(std::string_view text) {
  Topology t;
  std::size_t lineNo = 0;
  for (const auto& rawLine : util::split(text, '\n')) {
    ++lineNo;
    const std::string_view line = util::trim(rawLine);
    if (line.empty() || line.front() == '#') continue;
    const auto fields = util::splitWhitespace(line);
    const auto fail = [&](const std::string& why) {
      throw std::runtime_error("Topology line " + std::to_string(lineNo) +
                               ": " + why);
    };
    if (fields[0] == "site") {
      if (fields.size() != 4) fail("expected: site NAME LAT LON");
      double lat = 0, lon = 0;
      if (!util::parseDouble(fields[2], lat) ||
          !util::parseDouble(fields[3], lon))
        fail("bad coordinates");
      t.addSite({fields[1], lat, lon});
    } else if (fields[0] == "link") {
      if (fields.size() != 3 && fields.size() != 4)
        fail("expected: link A B [LATENCY_US]");
      if (!t.byName(fields[1]) || !t.byName(fields[2]))
        fail("unknown site in link");
      if (fields.size() == 4) {
        std::int64_t latency = 0;
        if (!util::parseInt64(fields[3], latency) || latency < 0)
          fail("bad latency");
        t.connectWithLatency(fields[1], fields[2], latency);
      } else {
        t.connect(fields[1], fields[2]);
      }
    } else {
      fail("unknown directive " + fields[0]);
    }
  }
  return t;
}

Topology Topology::fromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Topology: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return fromString(buffer.str());
}

std::string Topology::toString() const {
  std::ostringstream out;
  for (const Site& s : sites_) {
    out << "site " << s.name << ' ' << s.latitudeDeg << ' ' << s.longitudeDeg
        << '\n';
  }
  // Emit each undirected pair once (forward edge only, assuming the
  // addBidirectional forward/backward adjacency produced by this class).
  for (graph::EdgeId id = 0; id < graph_.edgeCount(); id += 2) {
    const graph::Edge& e = graph_.edge(id);
    out << "link " << sites_[e.from].name << ' ' << sites_[e.to].name << ' '
        << e.latency << '\n';
  }
  return out.str();
}

}  // namespace dg::trace
