// Synthetic network-condition trace generator.
//
// Substitutes for the proprietary multi-week measurements of the
// commercial overlay used in the paper. The generator is calibrated to
// the problem taxonomy the paper reports from that data:
//   - most serious problems are *data-center local*: site degradations
//     (all links moderately lossy, steadily or intermittently) and
//     partial outages (all links but one or two completely dark),
//     concentrated at edge sites rather than core transit POPs;
//   - a minority are isolated middle-link problems;
//   - durations are heavy-tailed (tens of seconds to many minutes) and
//     events rarely align with measurement-interval boundaries;
//   - a few events are full-site blackouts (unavoidable by any scheme)
//     or latency inflations that push links past the deadline.
// The default parameters were calibrated (see EXPERIMENTS.md) so that
// the schemes' relative behaviour reproduces the paper's headline
// gap-coverage structure. Everything is derived deterministically from
// one seed.
#pragma once

#include <cstdint>

#include "trace/events.hpp"
#include "trace/stream.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace dg::trace {

struct GeneratorParams {
  std::uint64_t seed = 1;
  util::SimTime duration = util::days(28);
  util::SimTime intervalLength = util::seconds(10);

  /// Healthy residual loss on every link.
  double residualLoss = 1e-4;

  /// Expected number of events per day across the whole network.
  double nodeEventsPerDay = 6.0;
  double linkEventsPerDay = 0.5;
  /// Short benign single-interval loss blips, per link per day.
  double blipsPerLinkPerDay = 2.0;

  /// Event durations: lognormal(median, sigma of underlying normal), in
  /// seconds, clamped to at least one interval.
  double nodeEventMedianSeconds = 480.0;
  double nodeEventSigma = 0.8;
  double linkEventMedianSeconds = 300.0;
  double linkEventSigma = 1.2;

  /// Node events come in two empirically-motivated classes.
  ///
  /// (1) *Site degradation*: something at the data center (uplink
  /// congestion, router stress) degrades ALL of its overlay links with a
  /// moderate loss rate. No reroute escapes it -- every path out of the
  /// site is impaired -- but redundancy width mitigates it: each extra
  /// simultaneously-used link multiplies another (loss^2) recovery-
  /// residual factor into the miss probability.
  ///
  /// (2) *Partial outage*: the site loses all but a handful of its
  /// links -- they go completely dark (hard loss, or latency beyond any
  /// deadline). Think "all uplinks but one provider failed". Adaptive
  /// schemes escape via the surviving links after one monitoring
  /// interval; static schemes whose fixed links are down stay down.
  ///
  /// Fraction of node events that are partial outages:
  double nodePartialOutageProb = 0.3;
  /// Number of undirected links that survive a partial outage (uniform
  /// in [min, max], clamped below the node's degree).
  int outageAliveLinksMin = 1;
  int outageAliveLinksMax = 1;

  /// Class 1 (site degradation) -- loss severity while active:
  double lossSeverityMin = 0.8;
  double lossSeverityMax = 0.95;
  /// Fraction of degradation events that are *steady* (continuously
  /// degraded; adaptive schemes at least know what they are dealing
  /// with). The rest are *fluttering*: each link is degraded only
  /// intermittently, which defeats reroute-chasing but not broad
  /// redundancy.
  double nodeSteadyProb = 0.9;
  /// Per-interval activity of fluttering degradation events.
  double nodeFlutterActivityMin = 0.35;
  double nodeFlutterActivityMax = 0.6;

  /// Fraction of node events that are hard full-site outages (all links,
  /// 100% loss). These defeat every scheme including flooding.
  double nodeBlackoutProb = 0.02;
  /// Node-event placement weight is degree^-exponent: poorly connected
  /// edge sites suffer proportionally more problems than core transit
  /// POPs, reproducing the paper's finding that serious problems cluster
  /// around flow endpoints. 0 = uniform.
  double nodePlacementDegreeExponent = 4.0;

  /// Link events: steadier activity.
  double linkActivityMin = 0.7;
  double linkActivityMax = 1.0;

  /// Events rarely start or stop exactly on a 10-second measurement
  /// boundary; the first and last interval of an event carry this
  /// fraction of its activity (partial-interval aggregation).
  double boundaryActivityFactor = 0.5;
  /// Fraction of (non-blackout) events that inflate latency instead of
  /// dropping packets.
  double latencyEventProb = 0.25;
  util::SimTime latencyPenaltyMin = util::milliseconds(30);
  util::SimTime latencyPenaltyMax = util::milliseconds(200);

  /// Benign blips: loss range.
  double blipLossMin = 0.005;
  double blipLossMax = 0.05;
};

struct SyntheticTrace {
  Trace trace;
  std::vector<ProblemEvent> events;  ///< ground truth, start-sorted
};

/// Materializes `event` into `trace`: for every interval of the event and
/// every affected undirected link, with probability `event.activity` the
/// link (both directions) is impaired during that interval (scaled by
/// `boundaryActivityFactor` in the event's first and last interval).
/// `rng` drives the activity sampling only (the event itself is already
/// resolved).
void applyEvent(Trace& trace, const graph::Graph& graph,
                const ProblemEvent& event, util::Rng& rng,
                double boundaryActivityFactor = 1.0);

/// Builds a fully-resolved node event (selects affected links with the
/// given per-link coverage probability; at least one link is selected).
ProblemEvent makeNodeEvent(const graph::Graph& graph, graph::NodeId node,
                           std::size_t startInterval,
                           std::size_t intervalCount, double coverage,
                           double activity, double severity,
                           util::SimTime latencyPenalty, util::Rng& rng);

/// Builds a partial-outage node event: all of the node's undirected links
/// except `aliveLinks` randomly-spared ones are affected (at least one
/// link is always affected).
ProblemEvent makeNodeOutageEvent(const graph::Graph& graph,
                                 graph::NodeId node,
                                 std::size_t startInterval,
                                 std::size_t intervalCount, int aliveLinks,
                                 double severity,
                                 util::SimTime latencyPenalty,
                                 util::Rng& rng);

/// Builds a fully-resolved link event (the edge and its reverse).
ProblemEvent makeLinkEvent(const graph::Graph& graph, graph::EdgeId edge,
                           std::size_t startInterval,
                           std::size_t intervalCount, double activity,
                           double severity, util::SimTime latencyPenalty);

/// Generates a trace plus its ground-truth event log.
SyntheticTrace generateSyntheticTrace(const graph::Graph& graph,
                                      const GeneratorParams& params);

/// Workspace accounting of a streaming generation run, for the
/// bounded-memory evidence in tests and bench_trace_store: the peak
/// counters are functions of event density and duration *distribution*,
/// not of the trace length.
struct StreamGenerationStats {
  std::size_t events = 0;          ///< ground-truth events drawn
  std::size_t blips = 0;           ///< benign blips drawn (schedule size)
  std::size_t peakPendingOps = 0;  ///< max buffered event impairments
  std::size_t peakPendingIntervals = 0;  ///< max intervals with buffers
  std::size_t emittedIntervals = 0;      ///< non-clean intervals streamed
  std::size_t emittedDeviations = 0;
};

/// Streams the synthetic trace into `sink` interval by interval instead
/// of materializing it. The streamed trace and the returned ground-truth
/// event list are BIT-IDENTICAL to generateSyntheticTrace with the same
/// params: events are start-sorted, so sweeping intervals in order and
/// drawing each event's full activity the moment the sweep reaches its
/// start consumes the shared activity RNG in exactly the batch order,
/// while only the active-event window (plus the tiny event/blip
/// schedule) is ever buffered -- never the per-interval trace itself.
std::vector<ProblemEvent> streamSyntheticTrace(
    const graph::Graph& graph, const GeneratorParams& params,
    TraceSink& sink, StreamGenerationStats* stats = nullptr);

}  // namespace dg::trace
