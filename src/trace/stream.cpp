#include "trace/stream.hpp"

#include <stdexcept>

namespace dg::trace {

void TraceBuilder::begin(util::SimTime intervalLength,
                         std::size_t intervalCount,
                         std::span<const LinkConditions> baseline) {
  if (trace_) throw std::logic_error("TraceBuilder: begin() called twice");
  trace_.emplace(intervalLength, intervalCount,
                 std::vector<LinkConditions>(baseline.begin(),
                                             baseline.end()));
}

void TraceBuilder::interval(std::size_t index,
                            std::span<const Deviation> deviations) {
  if (!trace_)
    throw std::logic_error("TraceBuilder: interval() before begin()");
  if (index >= trace_->intervalCount())
    throw std::out_of_range("TraceBuilder: interval index out of range");
  for (const Deviation& deviation : deviations)
    trace_->setCondition(deviation.first, index, deviation.second);
}

void TraceBuilder::end() { ended_ = true; }

Trace TraceBuilder::take() {
  if (!trace_ || !ended_)
    throw std::logic_error("TraceBuilder: take() before a complete stream");
  Trace out = std::move(*trace_);
  trace_.reset();
  ended_ = false;
  return out;
}

void streamTrace(const Trace& trace, TraceSink& sink) {
  sink.begin(trace.intervalLength(), trace.intervalCount(),
             trace.baselines());
  for (std::size_t i = 0; i < trace.intervalCount(); ++i) {
    if (!trace.hasDeviation(i)) continue;
    sink.interval(i, trace.deviationsAt(i));
  }
  sink.end();
}

}  // namespace dg::trace
