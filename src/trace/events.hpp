// Ground-truth problem events underlying a synthetic trace.
//
// The paper's empirical analysis of weeks of real overlay data found that
// the problems that defeat two disjoint paths overwhelmingly cluster
// *around a source or destination data center*, with a minority of
// isolated mid-network link problems. The synthetic generator reproduces
// that taxonomy; the ground-truth events are retained so that the
// problem-classification experiment (E4) can compare the detector's
// output against what actually happened.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/sim_time.hpp"

namespace dg::trace {

struct ProblemEvent {
  /// Where the problem lives.
  enum class Kind {
    Node,  ///< a data-center problem affecting (some of) a node's links
    Link,  ///< an isolated problem on one overlay link
  };
  /// What the problem does to affected links while active.
  enum class Impairment {
    Loss,     ///< packet loss at `severity`
    Latency,  ///< latency inflated by `latencyPenalty`
  };

  Kind kind = Kind::Node;
  Impairment impairment = Impairment::Loss;

  /// Valid for Kind::Node.
  graph::NodeId node = graph::kInvalidNode;
  /// Valid for Kind::Link: the forward directed edge (its reverse is
  /// affected too).
  graph::EdgeId link = graph::kInvalidEdge;

  std::size_t startInterval = 0;
  std::size_t intervalCount = 0;

  /// Loss rate on an affected link while the event is active on it.
  double severity = 0.0;
  /// Latency added on an affected link while active (Impairment::Latency).
  util::SimTime latencyPenalty = 0;

  /// Per-interval probability that the event is actually degrading a
  /// given affected link ("fluttering"): real problems are intermittent,
  /// which is what makes chasing the momentarily-best path ineffective.
  double activity = 1.0;

  /// Node events: the undirected adjacent links selected as affected
  /// (stored as directed edge ids, both directions present). Link events:
  /// the link and its reverse.
  std::vector<graph::EdgeId> affectedEdges;

  bool operator==(const ProblemEvent&) const = default;

  std::size_t endInterval() const { return startInterval + intervalCount; }
  bool activeDuring(std::size_t interval) const {
    return interval >= startInterval && interval < endInterval();
  }
};

}  // namespace dg::trace
