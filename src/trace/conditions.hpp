// Per-link network conditions over one measurement interval.
//
// This mirrors what the paper's data collection recorded on the
// commercial overlay: for every directed overlay link and every 10-second
// interval, an observed loss rate and one-way latency.
#pragma once

#include <algorithm>

#include "util/sim_time.hpp"

namespace dg::trace {

struct LinkConditions {
  /// Probability that a single transmission on this link is lost.
  double lossRate = 0.0;
  /// Current one-way latency of the link (propagation + queueing).
  util::SimTime latency = 0;

  bool operator==(const LinkConditions&) const = default;
};

/// Combines two independent impairments acting on the same link: losses
/// compose as independent Bernoulli events, latency penalties take the
/// larger of the two (concurrent congestion does not add linearly at
/// these magnitudes, and max keeps the model conservative).
inline LinkConditions combineConditions(const LinkConditions& a,
                                        const LinkConditions& b) {
  LinkConditions out;
  out.lossRate = 1.0 - (1.0 - a.lossRate) * (1.0 - b.lossRate);
  out.latency = std::max(a.latency, b.latency);
  return out;
}

}  // namespace dg::trace
