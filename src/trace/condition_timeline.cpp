#include "trace/condition_timeline.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace dg::trace {

namespace {

using DeviationList = std::vector<std::pair<graph::EdgeId, LinkConditions>>;

struct DeviationListLess {
  static int compare(const std::pair<graph::EdgeId, LinkConditions>& a,
                     const std::pair<graph::EdgeId, LinkConditions>& b) {
    if (a.first != b.first) return a.first < b.first ? -1 : 1;
    if (a.second.lossRate != b.second.lossRate)
      return a.second.lossRate < b.second.lossRate ? -1 : 1;
    if (a.second.latency != b.second.latency)
      return a.second.latency < b.second.latency ? -1 : 1;
    return 0;
  }
  bool operator()(const DeviationList& a, const DeviationList& b) const {
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
      const int c = compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

}  // namespace

ConditionIndex::ConditionIndex(const Trace& trace)
    : ids_(trace.intervalCount(), kCleanContent) {
  // Intern by full lexicographic comparison: hash collisions can never
  // alias two different contents, which is what makes content ids valid
  // exact memoization keys.
  std::map<DeviationList, std::uint32_t, DeviationListLess> interned;
  for (std::size_t i = 0; i < trace.intervalCount(); ++i) {
    if (!trace.hasDeviation(i)) continue;
    const auto devs = trace.deviationsAt(i);
    DeviationList key(devs.begin(), devs.end());
    const auto [it, inserted] = interned.emplace(
        std::move(key), static_cast<std::uint32_t>(interned.size() + 1));
    ids_[i] = it->second;
  }
  distinct_ = interned.size() + 1;
}

ConditionTimeline::ConditionTimeline(const Trace& trace) : trace_(&trace) {
  loss_.reserve(trace.edgeCount());
  latency_.reserve(trace.edgeCount());
  for (graph::EdgeId e = 0; e < trace.edgeCount(); ++e) {
    loss_.push_back(trace.baseline(e).lossRate);
    latency_.push_back(trace.baseline(e).latency);
  }
}

ConditionTimeline::ConditionTimeline(ConditionSource& source)
    : source_(&source) {
  const auto baseline = source.baseline();
  loss_.reserve(baseline.size());
  latency_.reserve(baseline.size());
  for (const LinkConditions& conditions : baseline) {
    loss_.push_back(conditions.lossRate);
    latency_.push_back(conditions.latency);
  }
}

// dgcheck: hot
void ConditionTimeline::seek(std::size_t interval) {
  const std::size_t count =
      trace_ ? trace_->intervalCount() : source_->intervalCount();
  if (interval >= count)
    throw std::out_of_range("ConditionTimeline::seek: interval out of range");
  if (interval == interval_) return;
  if (trace_) {
    if (interval_ != kUnpositioned) {
      for (const auto& [edge, conditions] : trace_->deviationsAt(interval_)) {
        loss_[edge] = trace_->baseline(edge).lossRate;
        latency_[edge] = trace_->baseline(edge).latency;
      }
    }
    for (const auto& [edge, conditions] : trace_->deviationsAt(interval)) {
      loss_[edge] = conditions.lossRate;
      latency_[edge] = conditions.latency;
    }
  } else {
    // Undo from the saved copy (the source's previous span may already
    // be gone), then apply and re-save the target interval's list.
    const auto baseline = source_->baseline();
    for (const auto& [edge, conditions] : current_) {
      loss_[edge] = baseline[edge].lossRate;
      latency_[edge] = baseline[edge].latency;
    }
    const auto deviations = source_->deviationsAt(interval);
    for (const auto& [edge, conditions] : deviations) {
      loss_[edge] = conditions.lossRate;
      latency_[edge] = conditions.latency;
    }
    current_.assign(deviations.begin(), deviations.end());
  }
  interval_ = interval;
}

}  // namespace dg::trace
