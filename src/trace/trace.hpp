// A recorded (or synthesized) network-condition trace: per directed
// overlay link, per fixed-length interval, the observed loss rate and
// latency.
//
// Storage is sparse: almost all intervals on almost all links are
// healthy, so the trace stores a per-link baseline plus per-interval
// deviation lists. This keeps multi-week 64-link traces in a few
// megabytes and gives the playback engine an O(1) "is anything wrong in
// this interval?" fast path.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "trace/conditions.hpp"
#include "util/sim_time.hpp"

namespace dg::trace {

class Trace {
 public:
  /// `baseline[e]` is the healthy condition of edge e (its propagation
  /// latency and residual loss).
  Trace(util::SimTime intervalLength, std::size_t intervalCount,
        std::vector<LinkConditions> baseline);

  util::SimTime intervalLength() const { return intervalLength_; }
  std::size_t intervalCount() const { return intervals_.size(); }
  std::size_t edgeCount() const { return baseline_.size(); }
  util::SimTime duration() const {
    return intervalLength_ * static_cast<util::SimTime>(intervals_.size());
  }

  const LinkConditions& baseline(graph::EdgeId edge) const {
    return baseline_[edge];
  }

  /// All per-edge baselines as one borrowed span (streaming writers).
  std::span<const LinkConditions> baselines() const { return baseline_; }

  /// Interval index containing time t (clamped to the trace range).
  std::size_t intervalAt(util::SimTime t) const;

  /// Overrides an edge's condition in one interval. Overwrites any
  /// previous override for the same (edge, interval).
  void setCondition(graph::EdgeId edge, std::size_t interval,
                    LinkConditions conditions);

  /// Combines (see combineConditions) an impairment into the current
  /// condition of (edge, interval); used when events overlap.
  void applyImpairment(graph::EdgeId edge, std::size_t interval,
                       const LinkConditions& impairment);

  /// Condition of edge in interval (baseline unless overridden).
  const LinkConditions& at(graph::EdgeId edge, std::size_t interval) const;

  /// Exact structural equality: same geometry, baseline and deviation
  /// lists (used by store round-trip and stream-equivalence tests).
  bool operator==(const Trace&) const = default;

  /// True if any edge deviates from baseline in the interval.
  bool hasDeviation(std::size_t interval) const {
    return !intervals_[interval].empty();
  }

  /// The deviating (edge, condition) pairs of an interval, edge-sorted.
  std::span<const std::pair<graph::EdgeId, LinkConditions>> deviationsAt(
      std::size_t interval) const {
    return intervals_[interval];
  }

  /// Latency weight vector for routing at an interval (every edge).
  std::vector<util::SimTime> latenciesAt(std::size_t interval) const;
  /// Loss-rate vector at an interval (every edge).
  std::vector<double> lossRatesAt(std::size_t interval) const;

  /// Text serialization:
  ///   trace INTERVAL_US INTERVAL_COUNT EDGE_COUNT
  ///   base EDGE LOSS LATENCY_US          (one per edge)
  ///   dev INTERVAL EDGE LOSS LATENCY_US  (one per deviation)
  std::string toString() const;
  static Trace fromString(std::string_view text);
  void save(const std::string& path) const;
  static Trace load(const std::string& path);

 private:
  util::SimTime intervalLength_;
  std::vector<LinkConditions> baseline_;
  std::vector<std::vector<std::pair<graph::EdgeId, LinkConditions>>>
      intervals_;
};

/// Builds the healthy baseline for a topology graph: each edge at its
/// propagation latency with the given residual loss rate.
std::vector<LinkConditions> healthyBaseline(const graph::Graph& graph,
                                            double residualLoss = 1e-4);

}  // namespace dg::trace
