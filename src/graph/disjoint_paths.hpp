// Minimum-total-latency disjoint path sets (Suurballe/Bhandari family,
// implemented via min-cost flow on a node-split transform).
//
// The paper's "two disjoint paths" schemes use *node*-disjoint paths:
// sharing an intermediate overlay node would let a single data-center
// problem take out both paths, which is exactly the failure mode the
// targeted-redundancy graphs are designed around.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace dg::graph {

struct DisjointPathsResult {
  /// Paths found, each a valid src->dst edge sequence; size <= requested k.
  /// Paths are sorted by ascending individual latency.
  std::vector<Path> paths;
  /// Sum of latencies of all returned paths.
  util::SimTime totalLatency = 0;
};

/// Finds up to k pairwise node-disjoint (interior nodes) src->dst paths
/// minimising total latency, under the given per-edge weights
/// (util::kNever excludes an edge). Fewer than k paths are returned when
/// the connectivity does not allow k.
DisjointPathsResult nodeDisjointPaths(const Graph& graph, NodeId src,
                                      NodeId dst,
                                      std::span<const util::SimTime> weights,
                                      int k);

/// Edge-disjoint variant (paths may share intermediate nodes). Kept for
/// ablation: the paper argues node-disjointness matters because problems
/// cluster at data centers.
DisjointPathsResult edgeDisjointPaths(const Graph& graph, NodeId src,
                                      NodeId dst,
                                      std::span<const util::SimTime> weights,
                                      int k);

/// Maximum number of node-disjoint src->dst paths (connectivity), via
/// max-flow on the node-split transform with unit capacities.
int maxNodeDisjointPaths(const Graph& graph, NodeId src, NodeId dst,
                         std::span<const util::SimTime> weights);

}  // namespace dg::graph
