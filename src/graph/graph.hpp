// Directed graph with latency-weighted edges.
//
// This is the structural substrate for the whole library: the overlay
// topology, routing computations and dissemination graphs are all
// expressed against it.  Nodes and edges are dense integer ids so that
// per-edge state (current loss/latency, membership bitsets, Monte-Carlo
// samples) can live in flat arrays.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/sim_time.hpp"

namespace dg::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// A directed edge with its base (uncongested) propagation latency.
struct Edge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  util::SimTime latency = 0;  ///< base one-way latency in microseconds
};

/// Directed multigraph-capable container (the overlay never needs
/// parallel edges, but nothing here forbids them).  Append-only: overlay
/// topologies are immutable once constructed.
class Graph {
 public:
  /// Adds an isolated node and returns its id (ids are dense, 0-based).
  NodeId addNode();

  /// Adds `count` nodes at once; returns the id of the first.
  NodeId addNodes(std::size_t count);

  /// Adds a directed edge; latency must be >= 0.
  EdgeId addEdge(NodeId from, NodeId to, util::SimTime latency);

  /// Adds a pair of antiparallel edges with the same latency; returns the
  /// id of the forward (from->to) edge. The backward edge id is always
  /// forward id + 1 when added through this call.
  EdgeId addBidirectional(NodeId a, NodeId b, util::SimTime latency);

  std::size_t nodeCount() const { return outEdges_.size(); }
  std::size_t edgeCount() const { return edges_.size(); }

  const Edge& edge(EdgeId id) const { return edges_[id]; }

  /// Out-edge / in-edge ids of a node, in insertion order.
  std::span<const EdgeId> outEdges(NodeId node) const {
    return outEdges_[node];
  }
  std::span<const EdgeId> inEdges(NodeId node) const { return inEdges_[node]; }

  std::size_t outDegree(NodeId node) const { return outEdges_[node].size(); }
  std::size_t inDegree(NodeId node) const { return inEdges_[node].size(); }

  /// Finds the first edge from->to, if any.
  std::optional<EdgeId> findEdge(NodeId from, NodeId to) const;

  /// Finds the reverse of an edge (an edge to->from), if any.
  std::optional<EdgeId> reverseEdge(EdgeId id) const;

  /// All base latencies as a flat weight vector (the "healthy network"
  /// weights); routing under current conditions copies and perturbs this.
  std::vector<util::SimTime> baseLatencies() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> outEdges_;
  std::vector<std::vector<EdgeId>> inEdges_;
};

/// A path is a sequence of edge ids where consecutive edges share the
/// intermediate node. An empty path means "src == dst" or "not found"
/// depending on context; prefer PathResult for search results.
using Path = std::vector<EdgeId>;

/// Total latency of a path under the given per-edge weights.
util::SimTime pathLatency(const Graph& graph, const Path& path,
                          std::span<const util::SimTime> weights);

/// The ordered node sequence visited by a path starting at `src`.
std::vector<NodeId> pathNodes(const Graph& graph, NodeId src,
                              const Path& path);

/// Validates that `path` is a connected src -> dst edge sequence.
bool isValidPath(const Graph& graph, NodeId src, NodeId dst,
                 const Path& path);

/// True if the two paths share any node other than src/dst.
bool pathsShareInteriorNode(const Graph& graph, NodeId src, NodeId dst,
                            const Path& a, const Path& b);

}  // namespace dg::graph
