// Structural fragility analysis of an overlay.
//
// Used by the operations tooling (see examples/overlay_audit) to answer
// "where is this overlay one failure away from violating its guarantees":
// articulation sites (a single data-center outage disconnects someone),
// bridge links, per-flow connectivity and minimum edge cuts, and
// deadline-constrained connectivity (how many disjoint *timely* routes a
// flow really has).
//
// All functions treat the directed overlay as its undirected support
// (links fail in both directions together -- the failure model of the
// paper's data and of dg::trace's generator).
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace dg::graph {

/// Nodes whose removal disconnects the undirected support of the graph.
std::vector<NodeId> articulationPoints(const Graph& graph);

/// Edges (forward directed id of each undirected link) whose removal
/// disconnects the undirected support.
std::vector<EdgeId> bridges(const Graph& graph);

/// True if the undirected support is connected (isolated nodes count as
/// disconnected unless the graph has fewer than two nodes).
bool isConnected(const Graph& graph);

/// A minimum set of directed edges whose removal disconnects src from
/// dst (unit capacities; computed via max-flow/min-cut).
std::vector<EdgeId> minimumEdgeCut(const Graph& graph, NodeId src,
                                   NodeId dst);

/// Maximum number of node-disjoint src->dst paths that each individually
/// meet `deadline` under `weights` -- the flow's *usable* redundancy,
/// which can be less than its graph-theoretic connectivity when detours
/// are too slow. Computed exactly for small k by incremental min-cost
/// flow: paths are added in cheapest-total order until the next path set
/// cannot keep every member within the deadline.
int timelyDisjointConnectivity(const Graph& graph, NodeId src, NodeId dst,
                               std::span<const util::SimTime> weights,
                               util::SimTime deadline, int maxPaths = 8);

/// Per-node fragility summary for reports.
struct NodeFragility {
  NodeId node = kInvalidNode;
  std::size_t degree = 0;
  bool articulation = false;
  /// Number of adjacent undirected links that are bridges.
  std::size_t adjacentBridges = 0;
};

std::vector<NodeFragility> fragilityReport(const Graph& graph);

}  // namespace dg::graph
