// Shortest-path primitives (Dijkstra) over per-edge weight vectors.
//
// Weights are passed explicitly (rather than read from the Graph) because
// routing always operates on *current* conditions: the monitor produces a
// fresh weight vector per decision interval, with util::kNever marking
// links considered unusable.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/sim_time.hpp"

namespace dg::graph {

struct PathResult {
  bool found = false;
  util::SimTime distance = util::kNever;
  Path edges;  ///< empty when !found or src == dst
};

/// Single-source shortest distances from `src` under `weights`.
/// Unreachable nodes get util::kNever. `weights[e] == util::kNever`
/// excludes edge e.
std::vector<util::SimTime> dijkstraDistances(
    const Graph& graph, NodeId src, std::span<const util::SimTime> weights);

/// Shortest path src -> dst; PathResult.found is false when disconnected.
PathResult shortestPath(const Graph& graph, NodeId src, NodeId dst,
                        std::span<const util::SimTime> weights);

/// Shortest path that avoids a set of edges and/or interior nodes
/// (src/dst are never excluded even if present in `excludedNodes`).
/// Pass empty spans for "no exclusions".
PathResult shortestPathExcluding(const Graph& graph, NodeId src, NodeId dst,
                                 std::span<const util::SimTime> weights,
                                 std::span<const EdgeId> excludedEdges,
                                 std::span<const NodeId> excludedNodes);

/// Shortest distance from every node TO `dst` (Dijkstra on the reverse
/// graph). Used for deadline-feasibility pruning: a node n can still make
/// the deadline iff arrival(n) + toDst[n] <= deadline.
std::vector<util::SimTime> dijkstraDistancesTo(
    const Graph& graph, NodeId dst, std::span<const util::SimTime> weights);

}  // namespace dg::graph
