#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace dg::graph {

NodeId Graph::addNode() {
  outEdges_.emplace_back();
  inEdges_.emplace_back();
  return static_cast<NodeId>(outEdges_.size() - 1);
}

NodeId Graph::addNodes(std::size_t count) {
  const NodeId first = static_cast<NodeId>(outEdges_.size());
  for (std::size_t i = 0; i < count; ++i) addNode();
  return first;
}

EdgeId Graph::addEdge(NodeId from, NodeId to, util::SimTime latency) {
  if (from >= nodeCount() || to >= nodeCount())
    throw std::out_of_range("Graph::addEdge: node id out of range");
  if (latency < 0)
    throw std::invalid_argument("Graph::addEdge: negative latency");
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{from, to, latency});
  outEdges_[from].push_back(id);
  inEdges_[to].push_back(id);
  return id;
}

EdgeId Graph::addBidirectional(NodeId a, NodeId b, util::SimTime latency) {
  const EdgeId forward = addEdge(a, b, latency);
  addEdge(b, a, latency);
  return forward;
}

std::optional<EdgeId> Graph::findEdge(NodeId from, NodeId to) const {
  for (const EdgeId id : outEdges_[from]) {
    if (edges_[id].to == to) return id;
  }
  return std::nullopt;
}

std::optional<EdgeId> Graph::reverseEdge(EdgeId id) const {
  const Edge& e = edges_[id];
  return findEdge(e.to, e.from);
}

std::vector<util::SimTime> Graph::baseLatencies() const {
  std::vector<util::SimTime> weights;
  weights.reserve(edges_.size());
  for (const Edge& e : edges_) weights.push_back(e.latency);
  return weights;
}

util::SimTime pathLatency(const Graph& graph, const Path& path,
                          std::span<const util::SimTime> weights) {
  (void)graph;
  util::SimTime total = 0;
  for (const EdgeId id : path) {
    const util::SimTime w = weights[id];
    if (w == util::kNever) return util::kNever;
    total += w;
  }
  return total;
}

std::vector<NodeId> pathNodes(const Graph& graph, NodeId src,
                              const Path& path) {
  std::vector<NodeId> nodes{src};
  for (const EdgeId id : path) nodes.push_back(graph.edge(id).to);
  return nodes;
}

bool isValidPath(const Graph& graph, NodeId src, NodeId dst,
                 const Path& path) {
  NodeId at = src;
  for (const EdgeId id : path) {
    if (id >= graph.edgeCount()) return false;
    const Edge& e = graph.edge(id);
    if (e.from != at) return false;
    at = e.to;
  }
  return at == dst;
}

bool pathsShareInteriorNode(const Graph& graph, NodeId src, NodeId dst,
                            const Path& a, const Path& b) {
  std::unordered_set<NodeId> interior;
  for (const NodeId n : pathNodes(graph, src, a)) {
    if (n != src && n != dst) interior.insert(n);
  }
  for (const NodeId n : pathNodes(graph, src, b)) {
    if (n != src && n != dst && interior.count(n) > 0) return true;
  }
  return false;
}

}  // namespace dg::graph
