#include "graph/analysis.hpp"

#include <algorithm>
#include <functional>
#include <queue>

#include "graph/disjoint_paths.hpp"
#include "graph/flow.hpp"

namespace dg::graph {

namespace {

/// Undirected adjacency: for each node, (neighbor, undirected link id)
/// where the link id is the smaller of the two directed edge ids.
struct UndirectedView {
  explicit UndirectedView(const Graph& graph)
      : adjacency(graph.nodeCount()) {
    std::vector<char> seen(graph.edgeCount(), 0);
    for (EdgeId e = 0; e < graph.edgeCount(); ++e) {
      if (seen[e]) continue;
      seen[e] = 1;
      EdgeId linkId = e;
      if (const auto r = graph.reverseEdge(e)) {
        seen[*r] = 1;
        linkId = std::min(e, *r);
      }
      const Edge& edge = graph.edge(e);
      adjacency[edge.from].push_back({edge.to, linkId});
      adjacency[edge.to].push_back({edge.from, linkId});
    }
  }
  std::vector<std::vector<std::pair<NodeId, EdgeId>>> adjacency;
};

/// Iterative Tarjan lowlink computation over the undirected view,
/// collecting articulation points and bridges in one pass.
struct LowlinkResult {
  std::vector<char> articulation;
  std::vector<EdgeId> bridges;
};

LowlinkResult lowlinkScan(const Graph& graph) {
  const UndirectedView view(graph);
  const std::size_t n = graph.nodeCount();
  LowlinkResult result;
  result.articulation.assign(n, 0);
  std::vector<int> depth(n, -1);
  std::vector<int> low(n, 0);

  struct Frame {
    NodeId node;
    NodeId parent;
    EdgeId parentLink;
    std::size_t nextChild;
    int rootChildren;
  };

  for (NodeId root = 0; root < n; ++root) {
    if (depth[root] != -1) continue;
    std::vector<Frame> stack;
    depth[root] = 0;
    low[root] = 0;
    stack.push_back({root, kInvalidNode, kInvalidEdge, 0, 0});
    int rootChildren = 0;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.nextChild < view.adjacency[frame.node].size()) {
        const auto [neighbor, link] =
            view.adjacency[frame.node][frame.nextChild++];
        if (link == frame.parentLink) continue;  // skip the tree edge back
        if (depth[neighbor] == -1) {
          depth[neighbor] = depth[frame.node] + 1;
          low[neighbor] = depth[neighbor];
          if (frame.node == root) ++rootChildren;
          stack.push_back({neighbor, frame.node, link, 0, 0});
        } else {
          low[frame.node] = std::min(low[frame.node], depth[neighbor]);
        }
      } else {
        // Post-order: propagate lowlink to the parent.
        const Frame done = frame;
        stack.pop_back();
        if (done.parent == kInvalidNode) continue;
        low[done.parent] = std::min(low[done.parent], low[done.node]);
        if (low[done.node] >= depth[done.parent] && done.parent != root) {
          result.articulation[done.parent] = 1;
        }
        if (low[done.node] > depth[done.parent]) {
          result.bridges.push_back(done.parentLink);
        }
      }
    }
    if (rootChildren > 1) result.articulation[root] = 1;
  }
  std::sort(result.bridges.begin(), result.bridges.end());
  return result;
}

}  // namespace

std::vector<NodeId> articulationPoints(const Graph& graph) {
  const auto scan = lowlinkScan(graph);
  std::vector<NodeId> out;
  for (NodeId n = 0; n < graph.nodeCount(); ++n) {
    if (scan.articulation[n]) out.push_back(n);
  }
  return out;
}

std::vector<EdgeId> bridges(const Graph& graph) {
  return lowlinkScan(graph).bridges;
}

bool isConnected(const Graph& graph) {
  const std::size_t n = graph.nodeCount();
  if (n < 2) return true;
  const UndirectedView view(graph);
  std::vector<char> seen(n, 0);
  std::queue<NodeId> frontier;
  seen[0] = 1;
  frontier.push(0);
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const auto& [v, link] : view.adjacency[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        ++visited;
        frontier.push(v);
      }
    }
  }
  return visited == n;
}

std::vector<EdgeId> minimumEdgeCut(const Graph& graph, NodeId src,
                                   NodeId dst) {
  // Unit-capacity max flow via Ford-Fulkerson over an explicit residual
  // (the overlay is tiny); the min cut is then the set of edges crossing
  // from the residual-reachable side to the rest.
  const std::size_t n = graph.nodeCount();
  std::vector<std::vector<std::pair<NodeId, std::size_t>>> radj(n);
  // radj[u] = (v, index into caps) both directions.
  std::vector<int> caps;
  caps.reserve(graph.edgeCount() * 2);
  for (EdgeId e = 0; e < graph.edgeCount(); ++e) {
    const Edge& edge = graph.edge(e);
    radj[edge.from].push_back({edge.to, caps.size()});
    caps.push_back(1);  // forward
    radj[edge.to].push_back({edge.from, caps.size()});
    caps.push_back(0);  // residual back-arc
  }
  // BFS augmenting paths.
  for (;;) {
    std::vector<std::pair<NodeId, std::size_t>> parent(
        n, {kInvalidNode, SIZE_MAX});
    std::queue<NodeId> frontier;
    frontier.push(src);
    std::vector<char> seen(n, 0);
    seen[src] = 1;
    while (!frontier.empty() && !seen[dst]) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (const auto& [v, capIndex] : radj[u]) {
        if (seen[v] || caps[capIndex] == 0) continue;
        seen[v] = 1;
        parent[v] = {u, capIndex};
        frontier.push(v);
      }
    }
    if (!seen[dst]) break;
    for (NodeId at = dst; at != src; at = parent[at].first) {
      const std::size_t capIndex = parent[at].second;
      caps[capIndex] -= 1;
      caps[capIndex ^ 1] += 1;  // paired back-arc
    }
  }
  // Final residual reachability.
  std::vector<char> reachable(n, 0);
  std::queue<NodeId> frontier;
  frontier.push(src);
  reachable[src] = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const auto& [v, capIndex] : radj[u]) {
      if (!reachable[v] && caps[capIndex] > 0) {
        reachable[v] = 1;
        frontier.push(v);
      }
    }
  }
  std::vector<EdgeId> cut;
  for (EdgeId e = 0; e < graph.edgeCount(); ++e) {
    const Edge& edge = graph.edge(e);
    if (reachable[edge.from] && !reachable[edge.to]) cut.push_back(e);
  }
  return cut;
}

int timelyDisjointConnectivity(const Graph& graph, NodeId src, NodeId dst,
                               std::span<const util::SimTime> weights,
                               util::SimTime deadline, int maxPaths) {
  int best = 0;
  for (int k = 1; k <= maxPaths; ++k) {
    const auto result = nodeDisjointPaths(graph, src, dst, weights, k);
    if (static_cast<int>(result.paths.size()) < k) break;
    // The min-cost pack of k paths maximizes slack on the slowest path
    // among... (not strictly, but the cheapest pack is the natural
    // certificate). Check every member against the deadline.
    bool allTimely = true;
    for (const Path& path : result.paths) {
      if (pathLatency(graph, path, weights) > deadline) {
        allTimely = false;
        break;
      }
    }
    if (!allTimely) break;
    best = k;
  }
  return best;
}

std::vector<NodeFragility> fragilityReport(const Graph& graph) {
  const auto scan = lowlinkScan(graph);
  std::vector<char> isBridge(graph.edgeCount(), 0);
  for (const EdgeId e : scan.bridges) isBridge[e] = 1;

  std::vector<NodeFragility> report;
  report.reserve(graph.nodeCount());
  for (NodeId n = 0; n < graph.nodeCount(); ++n) {
    NodeFragility entry;
    entry.node = n;
    entry.degree = graph.outDegree(n);
    entry.articulation = scan.articulation[n] != 0;
    for (const EdgeId e : graph.outEdges(n)) {
      EdgeId linkId = e;
      if (const auto r = graph.reverseEdge(e)) linkId = std::min(e, *r);
      if (isBridge[linkId]) ++entry.adjacentBridges;
    }
    report.push_back(entry);
  }
  return report;
}

}  // namespace dg::graph
