#include "graph/k_shortest.hpp"

#include <algorithm>
#include <set>

#include "graph/shortest_path.hpp"

namespace dg::graph {

namespace {

struct Candidate {
  util::SimTime latency;
  Path path;
  bool operator<(const Candidate& other) const {
    if (latency != other.latency) return latency < other.latency;
    return path < other.path;
  }
};

}  // namespace

std::vector<Path> kShortestPaths(const Graph& graph, NodeId src, NodeId dst,
                                 std::span<const util::SimTime> weights,
                                 std::size_t k) {
  std::vector<Path> result;
  if (k == 0 || src == dst) return result;

  const PathResult first = shortestPath(graph, src, dst, weights);
  if (!first.found) return result;
  result.push_back(first.edges);

  std::set<Candidate> candidates;
  while (result.size() < k) {
    const Path& previous = result.back();
    const std::vector<NodeId> prevNodes = pathNodes(graph, src, previous);

    // Branch at every spur node of the previous path.
    for (std::size_t i = 0; i < previous.size(); ++i) {
      const NodeId spurNode = prevNodes[i];
      const Path rootPath(previous.begin(),
                          previous.begin() + static_cast<std::ptrdiff_t>(i));

      // Edges leaving the spur node on any already-accepted path sharing
      // this root must be excluded to force a new continuation.
      std::vector<EdgeId> excludedEdges;
      for (const Path& accepted : result) {
        if (accepted.size() >= i &&
            std::equal(rootPath.begin(), rootPath.end(), accepted.begin())) {
          if (accepted.size() > i) excludedEdges.push_back(accepted[i]);
        }
      }
      // Nodes of the root path (except the spur node) are excluded to keep
      // paths loopless.
      std::vector<NodeId> excludedNodes(prevNodes.begin(),
                                        prevNodes.begin() +
                                            static_cast<std::ptrdiff_t>(i));

      // Temporarily treat excluded nodes as blocked even if they are
      // src/dst -- Yen requires excluding the true root prefix. We handle
      // the src case by noting the root prefix always starts at src; when
      // i == 0 the excluded set is empty so this is moot.
      const PathResult spur = shortestPathExcluding(
          graph, spurNode, dst, weights, excludedEdges, excludedNodes);
      if (!spur.found) continue;

      Path total = rootPath;
      total.insert(total.end(), spur.edges.begin(), spur.edges.end());
      // Reject if the spur revisits a root node (possible when a root node
      // equals src and shortestPathExcluding refused to block it).
      const std::vector<NodeId> totalNodes = pathNodes(graph, src, total);
      std::set<NodeId> seen;
      bool loops = false;
      for (const NodeId n : totalNodes) {
        if (!seen.insert(n).second) {
          loops = true;
          break;
        }
      }
      if (loops) continue;
      candidates.insert(
          Candidate{pathLatency(graph, total, weights), std::move(total)});
    }

    if (candidates.empty()) break;
    auto best = candidates.begin();
    // Skip candidates already accepted (can happen with equal-cost ties).
    while (best != candidates.end() &&
           std::find(result.begin(), result.end(), best->path) !=
               result.end()) {
      best = candidates.erase(best);
    }
    if (best == candidates.end()) break;
    result.push_back(best->path);
    candidates.erase(best);
  }
  return result;
}

}  // namespace dg::graph
