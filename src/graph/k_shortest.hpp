// Yen's algorithm for k loopless shortest paths.
//
// Used by analysis tooling (alternative-route inspection) and as a
// building block for deadline-feasible route enumeration in the targeted
// redundancy constructions.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace dg::graph {

/// Returns up to k loopless shortest paths src -> dst in nondecreasing
/// latency order. Ties are broken deterministically (lexicographically by
/// edge ids) so results are stable across runs.
std::vector<Path> kShortestPaths(const Graph& graph, NodeId src, NodeId dst,
                                 std::span<const util::SimTime> weights,
                                 std::size_t k);

}  // namespace dg::graph
