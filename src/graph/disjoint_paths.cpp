#include "graph/disjoint_paths.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/flow.hpp"

namespace dg::graph {

namespace {

// Node-split transform ids: in(v) = 2v, out(v) = 2v+1.
int inNode(NodeId v) { return static_cast<int>(2 * v); }
int outNode(NodeId v) { return static_cast<int>(2 * v + 1); }

/// Decomposes a unit flow into paths by repeatedly walking saturated arcs
/// from src. `arcFor[e]` maps each usable graph edge to its flow arc id.
std::vector<Path> decomposeUnitFlow(const Graph& graph, NodeId src,
                                    NodeId dst, const MinCostFlow& flow,
                                    const std::vector<int>& arcFor,
                                    std::int64_t pathCount) {
  // Remaining flow per edge; each path consumes one unit.
  std::vector<std::int64_t> remaining(graph.edgeCount(), 0);
  for (EdgeId e = 0; e < graph.edgeCount(); ++e) {
    if (arcFor[e] >= 0) remaining[e] = flow.flowOn(arcFor[e]);
  }
  std::vector<Path> paths;
  for (std::int64_t p = 0; p < pathCount; ++p) {
    Path path;
    NodeId at = src;
    while (at != dst) {
      bool advanced = false;
      for (const EdgeId e : graph.outEdges(at)) {
        if (remaining[e] > 0) {
          remaining[e] -= 1;
          path.push_back(e);
          at = graph.edge(e).to;
          advanced = true;
          break;
        }
      }
      if (!advanced) {
        throw std::logic_error(
            "disjoint paths: flow decomposition stuck (internal error)");
      }
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

DisjointPathsResult solveDisjoint(const Graph& graph, NodeId src, NodeId dst,
                                  std::span<const util::SimTime> weights,
                                  int k, bool nodeDisjoint) {
  if (src == dst || k <= 0) return {};
  const std::size_t n = graph.nodeCount();

  MinCostFlow flow(2 * n);
  // Internal arcs: capacity 1 for interior nodes enforces node
  // disjointness; src/dst (and everything in the edge-disjoint variant)
  // get capacity k.
  for (NodeId v = 0; v < n; ++v) {
    const bool limited = nodeDisjoint && v != src && v != dst;
    flow.addArc(inNode(v), outNode(v), limited ? 1 : k, 0);
  }
  std::vector<int> arcFor(graph.edgeCount(), -1);
  for (EdgeId e = 0; e < graph.edgeCount(); ++e) {
    const util::SimTime w = weights[e];
    if (w == util::kNever) continue;
    const Edge& edge = graph.edge(e);
    arcFor[e] = flow.addArc(outNode(edge.from), inNode(edge.to), 1, w);
  }

  const auto [sent, cost] = flow.solve(outNode(src), inNode(dst), k);
  (void)cost;
  DisjointPathsResult result;
  if (sent == 0) return result;
  result.paths = decomposeUnitFlow(graph, src, dst, flow, arcFor, sent);
  for (const Path& path : result.paths) {
    result.totalLatency += pathLatency(graph, path, weights);
  }
  std::sort(result.paths.begin(), result.paths.end(),
            [&](const Path& a, const Path& b) {
              return pathLatency(graph, a, weights) <
                     pathLatency(graph, b, weights);
            });
  return result;
}

}  // namespace

DisjointPathsResult nodeDisjointPaths(const Graph& graph, NodeId src,
                                      NodeId dst,
                                      std::span<const util::SimTime> weights,
                                      int k) {
  return solveDisjoint(graph, src, dst, weights, k, /*nodeDisjoint=*/true);
}

DisjointPathsResult edgeDisjointPaths(const Graph& graph, NodeId src,
                                      NodeId dst,
                                      std::span<const util::SimTime> weights,
                                      int k) {
  return solveDisjoint(graph, src, dst, weights, k, /*nodeDisjoint=*/false);
}

int maxNodeDisjointPaths(const Graph& graph, NodeId src, NodeId dst,
                         std::span<const util::SimTime> weights) {
  if (src == dst) return 0;
  const std::size_t n = graph.nodeCount();
  MaxFlow flow(2 * n);
  for (NodeId v = 0; v < n; ++v) {
    const bool limited = v != src && v != dst;
    flow.addArc(inNode(v), outNode(v),
                limited ? 1 : static_cast<std::int64_t>(n));
  }
  for (EdgeId e = 0; e < graph.edgeCount(); ++e) {
    if (weights[e] == util::kNever) continue;
    const Edge& edge = graph.edge(e);
    flow.addArc(outNode(edge.from), inNode(edge.to), 1);
  }
  return static_cast<int>(flow.solve(outNode(src), inNode(dst)));
}

}  // namespace dg::graph
