#include "graph/dissemination_graph.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

namespace dg::graph {

DisseminationGraph::DisseminationGraph(const Graph& graph, NodeId source,
                                       NodeId destination)
    : graph_(&graph),
      source_(source),
      destination_(destination),
      member_(graph.edgeCount(), 0),
      outEdges_(graph.nodeCount()) {}

void DisseminationGraph::addEdge(EdgeId id) {
  if (member_[id]) return;
  member_[id] = 1;
  edges_.insert(std::lower_bound(edges_.begin(), edges_.end(), id), id);
  auto& out = outEdges_[graph_->edge(id).from];
  out.insert(std::lower_bound(out.begin(), out.end(), id), id);
}

void DisseminationGraph::addPath(const Path& path) {
  for (const EdgeId id : path) addEdge(id);
}

void DisseminationGraph::unite(const DisseminationGraph& other) {
  for (const EdgeId id : other.edges_) addEdge(id);
}

std::vector<NodeId> DisseminationGraph::reachableNodes() const {
  std::vector<char> seen(graph_->nodeCount(), 0);
  std::queue<NodeId> frontier;
  seen[source_] = 1;
  frontier.push(source_);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const EdgeId id : outEdges_[u]) {
      const NodeId v = graph_->edge(id).to;
      if (!seen[v]) {
        seen[v] = 1;
        frontier.push(v);
      }
    }
  }
  std::vector<NodeId> nodes;
  for (NodeId n = 0; n < graph_->nodeCount(); ++n) {
    if (seen[n]) nodes.push_back(n);
  }
  return nodes;
}

bool DisseminationGraph::connectsFlow() const {
  const auto nodes = reachableNodes();
  return std::binary_search(nodes.begin(), nodes.end(), destination_);
}

std::vector<util::SimTime> DisseminationGraph::earliestArrival(
    std::span<const util::SimTime> weights) const {
  std::vector<util::SimTime> dist(graph_->nodeCount(), util::kNever);
  using Entry = std::pair<util::SimTime, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  dist[source_] = 0;
  queue.push({0, source_});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    for (const EdgeId id : outEdges_[u]) {
      const util::SimTime w = weights[id];
      if (w == util::kNever) continue;
      const NodeId v = graph_->edge(id).to;
      const util::SimTime nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        queue.push({nd, v});
      }
    }
  }
  return dist;
}

// dgcheck: cold: evaluation path; results ride the eval memo and the clean-interval cache, so steady-state intervals never reach it
util::SimTime DisseminationGraph::latencyToDestination(
    std::span<const util::SimTime> weights) const {
  return earliestArrival(weights)[destination_];
}

// dgcheck: cold: evaluation path; results are cached in the per-chunk eval memo, so steady-state intervals never reach it
int DisseminationGraph::cost(std::span<const util::SimTime> weights) const {
  // Determine each node's first-arrival predecessor under `weights`; the
  // no-echo rule suppresses the transmission back to that predecessor.
  std::vector<util::SimTime> dist(graph_->nodeCount(), util::kNever);
  std::vector<NodeId> pred(graph_->nodeCount(), kInvalidNode);
  using Entry = std::pair<util::SimTime, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  dist[source_] = 0;
  queue.push({0, source_});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    for (const EdgeId id : outEdges_[u]) {
      const util::SimTime w = weights[id];
      if (w == util::kNever) continue;
      const NodeId v = graph_->edge(id).to;
      const util::SimTime nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        pred[v] = u;
        queue.push({nd, v});
      }
    }
  }
  int transmissions = 0;
  for (NodeId u = 0; u < graph_->nodeCount(); ++u) {
    if (dist[u] == util::kNever) continue;  // node never receives the packet
    for (const EdgeId id : outEdges_[u]) {
      if (weights[id] == util::kNever) continue;
      const NodeId v = graph_->edge(id).to;
      if (u != source_ && v == pred[u]) continue;  // no-echo suppression
      ++transmissions;
    }
  }
  return transmissions;
}

// dgcheck: cold: evaluation path; results are cached in the per-chunk eval memo, so steady-state intervals never reach it
int DisseminationGraph::cost() const {
  const auto weights = graph_->baseLatencies();
  return cost(weights);
}

int DisseminationGraph::pruneDeadlineInfeasible(
    std::span<const util::SimTime> weights, util::SimTime deadline) {
  int removedTotal = 0;
  for (;;) {
    const auto arrival = earliestArrival(weights);
    // Shortest distance from each node to the destination *within* the
    // dissemination graph: Dijkstra on reversed member edges.
    std::vector<util::SimTime> toDst(graph_->nodeCount(), util::kNever);
    using Entry = std::pair<util::SimTime, NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    toDst[destination_] = 0;
    queue.push({0, destination_});
    while (!queue.empty()) {
      const auto [d, u] = queue.top();
      queue.pop();
      if (d > toDst[u]) continue;
      for (const EdgeId id : edges_) {
        const Edge& e = graph_->edge(id);
        if (e.to != u) continue;
        const util::SimTime w = weights[id];
        if (w == util::kNever) continue;
        const util::SimTime nd = d + w;
        if (nd < toDst[e.from]) {
          toDst[e.from] = nd;
          queue.push({nd, e.from});
        }
      }
    }

    std::vector<EdgeId> keep;
    keep.reserve(edges_.size());
    for (const EdgeId id : edges_) {
      const Edge& e = graph_->edge(id);
      const util::SimTime w = weights[id];
      const bool feasible =
          arrival[e.from] != util::kNever && w != util::kNever &&
          toDst[e.to] != util::kNever &&
          arrival[e.from] + w + toDst[e.to] <= deadline;
      if (feasible) keep.push_back(id);
    }
    const int removed = static_cast<int>(edges_.size() - keep.size());
    if (removed == 0) return removedTotal;
    removedTotal += removed;
    std::fill(member_.begin(), member_.end(), 0);
    for (auto& out : outEdges_) out.clear();
    edges_.clear();
    for (const EdgeId id : keep) addEdge(id);
  }
}

std::string DisseminationGraph::toDot(
    const std::function<std::string(NodeId)>& name) const {
  std::ostringstream out;
  out << "digraph dissemination {\n";
  out << "  rankdir=LR;\n";
  const auto nodes = reachableNodes();
  for (const NodeId n : nodes) {
    out << "  \"" << name(n) << "\"";
    if (n == source_) {
      out << " [shape=doublecircle,style=filled,fillcolor=lightblue]";
    } else if (n == destination_) {
      out << " [shape=doubleoctagon,style=filled,fillcolor=lightgreen]";
    }
    out << ";\n";
  }
  for (const EdgeId id : edges_) {
    const Edge& e = graph_->edge(id);
    out << "  \"" << name(e.from) << "\" -> \"" << name(e.to) << "\" [label=\""
        << util::formatDuration(e.latency) << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

DisseminationGraph singlePathGraph(const Graph& graph, NodeId src, NodeId dst,
                                   const Path& path) {
  DisseminationGraph dg(graph, src, dst);
  dg.addPath(path);
  return dg;
}

DisseminationGraph multiPathGraph(const Graph& graph, NodeId src, NodeId dst,
                                  std::span<const Path> paths) {
  DisseminationGraph dg(graph, src, dst);
  for (const Path& path : paths) dg.addPath(path);
  return dg;
}

DisseminationGraph floodingGraph(const Graph& graph, NodeId src, NodeId dst) {
  DisseminationGraph dg(graph, src, dst);
  for (EdgeId id = 0; id < graph.edgeCount(); ++id) dg.addEdge(id);
  return dg;
}

}  // namespace dg::graph
