// Flow algorithms used by the disjoint-path machinery and analysis tools:
//  - MinCostFlow: successive shortest paths with Johnson potentials
//    (costs must be non-negative), used to find k node-disjoint paths of
//    minimum total latency.
//  - MaxFlow (Dinic): used to measure connectivity (how many disjoint
//    paths exist at all) in analysis and as an independent oracle in
//    property tests.
#pragma once

#include <cstdint>
#include <vector>

namespace dg::graph {

/// Min-cost flow on a directed graph with integer capacities and
/// non-negative integer costs. Nodes are dense 0-based ids declared up
/// front. Arcs are addressed by the id returned from addArc.
class MinCostFlow {
 public:
  explicit MinCostFlow(std::size_t nodeCount);

  /// Adds a directed arc and its residual twin; returns the arc id.
  int addArc(int from, int to, std::int64_t capacity, std::int64_t cost);

  /// Sends up to `maxFlow` units from src to dst along successive
  /// cheapest augmenting paths. Returns (flow actually sent, total cost).
  std::pair<std::int64_t, std::int64_t> solve(int src, int dst,
                                              std::int64_t maxFlow);

  /// Flow currently on an arc (after solve).
  std::int64_t flowOn(int arc) const;

 private:
  struct Arc {
    int to;
    std::int64_t capacity;
    std::int64_t cost;
    int twin;  ///< index of the residual arc
  };
  std::vector<Arc> arcs_;
  std::vector<std::vector<int>> adjacency_;
  std::vector<std::int64_t> potential_;
  std::vector<std::int64_t> originalCapacity_;
};

/// Dinic max-flow with unit-friendly performance; integer capacities.
class MaxFlow {
 public:
  explicit MaxFlow(std::size_t nodeCount);
  int addArc(int from, int to, std::int64_t capacity);
  std::int64_t solve(int src, int dst);

 private:
  struct Arc {
    int to;
    std::int64_t capacity;
    int twin;
  };
  bool buildLevels(int src, int dst);
  std::int64_t push(int node, int dst, std::int64_t limit);

  std::vector<Arc> arcs_;
  std::vector<std::vector<int>> adjacency_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace dg::graph
