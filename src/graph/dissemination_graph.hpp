// Dissemination graphs: the paper's unified abstraction for routing.
//
// A dissemination graph for a flow (source, destination) is a subgraph of
// the overlay on which the packet is *flooded*: the source transmits on
// all of its subgraph out-edges, and every node that receives the first
// copy of a packet forwards it on all of its subgraph out-edges except
// back to the node it arrived from.  A single path, k disjoint paths and
// full overlay flooding are all special cases, which is what lets one
// forwarding engine implement every routing scheme in the paper.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace dg::graph {

class DisseminationGraph {
 public:
  /// Constructs an empty dissemination graph for flow source->destination
  /// over `graph`. The underlying graph must outlive this object.
  DisseminationGraph(const Graph& graph, NodeId source, NodeId destination);

  NodeId source() const { return source_; }
  NodeId destination() const { return destination_; }
  const Graph& overlay() const { return *graph_; }

  /// Adds one edge; duplicates are ignored.
  void addEdge(EdgeId id);
  /// Adds every edge of a path.
  void addPath(const Path& path);
  /// Adds every edge of another dissemination graph (same overlay/flow).
  void unite(const DisseminationGraph& other);

  bool contains(EdgeId id) const { return member_[id]; }
  std::size_t edgeCount() const { return edges_.size(); }
  /// Member edges in ascending id order (deterministic iteration).
  const std::vector<EdgeId>& edges() const { return edges_; }
  /// Member out-edges of a node, ascending id order.
  std::span<const EdgeId> outEdges(NodeId node) const {
    return outEdges_[node];
  }

  bool operator==(const DisseminationGraph& other) const {
    return source_ == other.source_ && destination_ == other.destination_ &&
           edges_ == other.edges_;
  }

  /// Nodes reachable from the source along member edges (includes the
  /// source itself), ascending id order.
  std::vector<NodeId> reachableNodes() const;

  /// True if the destination is reachable from the source at all.
  bool connectsFlow() const;

  /// Earliest arrival time at every node when the packet leaves the
  /// source at t=0 and each member edge e delivers after weights[e]
  /// (util::kNever = edge currently unusable). Unreached nodes get
  /// util::kNever.
  std::vector<util::SimTime> earliestArrival(
      std::span<const util::SimTime> weights) const;

  /// Earliest arrival at the destination; util::kNever if unreachable.
  util::SimTime latencyToDestination(
      std::span<const util::SimTime> weights) const;

  bool meetsDeadline(std::span<const util::SimTime> weights,
                     util::SimTime deadline) const {
    return latencyToDestination(weights) <= deadline;
  }

  /// Number of per-packet transmissions under the forwarding rule with no
  /// losses: every reachable node forwards on each member out-edge except
  /// back along the edge the first copy arrived on (first arrival order
  /// determined by the given weights). This is the paper's cost metric
  /// (edge traversals per packet).
  int cost(std::span<const util::SimTime> weights) const;

  /// Cost under the overlay's base latencies.
  int cost() const;

  /// Removes edges that can never contribute an on-time delivery: edge
  /// (u,v) is kept only if earliest(source->u) + w(e) + shortest(v->dst
  /// within the dissemination graph) <= deadline. Repeats to fixpoint.
  /// Returns the number of edges removed.
  int pruneDeadlineInfeasible(std::span<const util::SimTime> weights,
                              util::SimTime deadline);

  /// Graphviz rendering; `name` maps node ids to labels. Highlights
  /// source (doublecircle) and destination (doubleoctagon).
  std::string toDot(const std::function<std::string(NodeId)>& name) const;

 private:
  const Graph* graph_;
  NodeId source_;
  NodeId destination_;
  std::vector<EdgeId> edges_;           // sorted
  std::vector<char> member_;            // edge membership bitset
  std::vector<std::vector<EdgeId>> outEdges_;
};

/// Convenience constructors for the classic schemes.
DisseminationGraph singlePathGraph(const Graph& graph, NodeId src, NodeId dst,
                                   const Path& path);
DisseminationGraph multiPathGraph(const Graph& graph, NodeId src, NodeId dst,
                                  std::span<const Path> paths);
/// Full-overlay flooding graph (every directed edge).
DisseminationGraph floodingGraph(const Graph& graph, NodeId src, NodeId dst);

}  // namespace dg::graph
