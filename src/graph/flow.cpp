#include "graph/flow.hpp"

#include <limits>
#include <queue>
#include <stdexcept>

namespace dg::graph {

namespace {
constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
}

MinCostFlow::MinCostFlow(std::size_t nodeCount)
    : adjacency_(nodeCount), potential_(nodeCount, 0) {}

int MinCostFlow::addArc(int from, int to, std::int64_t capacity,
                        std::int64_t cost) {
  if (cost < 0) throw std::invalid_argument("MinCostFlow: negative cost");
  const int id = static_cast<int>(arcs_.size());
  arcs_.push_back(Arc{to, capacity, cost, id + 1});
  arcs_.push_back(Arc{from, 0, -cost, id});
  adjacency_[static_cast<std::size_t>(from)].push_back(id);
  adjacency_[static_cast<std::size_t>(to)].push_back(id + 1);
  originalCapacity_.push_back(capacity);
  originalCapacity_.push_back(0);
  return id;
}

std::pair<std::int64_t, std::int64_t> MinCostFlow::solve(
    int src, int dst, std::int64_t maxFlow) {
  const std::size_t n = adjacency_.size();
  std::int64_t flow = 0;
  std::int64_t totalCost = 0;
  std::fill(potential_.begin(), potential_.end(), 0);

  while (flow < maxFlow) {
    // Dijkstra on reduced costs.
    std::vector<std::int64_t> dist(n, kInf);
    std::vector<int> parentArc(n, -1);
    using Entry = std::pair<std::int64_t, int>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    dist[static_cast<std::size_t>(src)] = 0;
    queue.push({0, src});
    while (!queue.empty()) {
      const auto [d, u] = queue.top();
      queue.pop();
      if (d > dist[static_cast<std::size_t>(u)]) continue;
      for (const int arcId : adjacency_[static_cast<std::size_t>(u)]) {
        const Arc& arc = arcs_[static_cast<std::size_t>(arcId)];
        if (arc.capacity <= 0) continue;
        const std::int64_t reduced =
            d + arc.cost + potential_[static_cast<std::size_t>(u)] -
            potential_[static_cast<std::size_t>(arc.to)];
        if (reduced < dist[static_cast<std::size_t>(arc.to)]) {
          dist[static_cast<std::size_t>(arc.to)] = reduced;
          parentArc[static_cast<std::size_t>(arc.to)] = arcId;
          queue.push({reduced, arc.to});
        }
      }
    }
    if (dist[static_cast<std::size_t>(dst)] >= kInf) break;  // no more paths

    for (std::size_t i = 0; i < n; ++i) {
      if (dist[i] < kInf) potential_[i] += dist[i];
    }

    // Find bottleneck and augment by it (capacities here are small).
    std::int64_t bottleneck = maxFlow - flow;
    for (int v = dst; v != src;) {
      const Arc& arc = arcs_[static_cast<std::size_t>(parentArc[static_cast<std::size_t>(v)])];
      bottleneck = std::min(bottleneck, arc.capacity);
      v = arcs_[static_cast<std::size_t>(arc.twin)].to;
    }
    for (int v = dst; v != src;) {
      Arc& arc = arcs_[static_cast<std::size_t>(parentArc[static_cast<std::size_t>(v)])];
      arc.capacity -= bottleneck;
      arcs_[static_cast<std::size_t>(arc.twin)].capacity += bottleneck;
      totalCost += bottleneck * arc.cost;
      v = arcs_[static_cast<std::size_t>(arc.twin)].to;
    }
    flow += bottleneck;
  }
  return {flow, totalCost};
}

std::int64_t MinCostFlow::flowOn(int arc) const {
  return originalCapacity_[static_cast<std::size_t>(arc)] -
         arcs_[static_cast<std::size_t>(arc)].capacity;
}

MaxFlow::MaxFlow(std::size_t nodeCount)
    : adjacency_(nodeCount), level_(nodeCount), iter_(nodeCount) {}

int MaxFlow::addArc(int from, int to, std::int64_t capacity) {
  const int id = static_cast<int>(arcs_.size());
  arcs_.push_back(Arc{to, capacity, id + 1});
  arcs_.push_back(Arc{from, 0, id});
  adjacency_[static_cast<std::size_t>(from)].push_back(id);
  adjacency_[static_cast<std::size_t>(to)].push_back(id + 1);
  return id;
}

bool MaxFlow::buildLevels(int src, int dst) {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<int> queue;
  level_[static_cast<std::size_t>(src)] = 0;
  queue.push(src);
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop();
    for (const int arcId : adjacency_[static_cast<std::size_t>(u)]) {
      const Arc& arc = arcs_[static_cast<std::size_t>(arcId)];
      if (arc.capacity > 0 && level_[static_cast<std::size_t>(arc.to)] < 0) {
        level_[static_cast<std::size_t>(arc.to)] =
            level_[static_cast<std::size_t>(u)] + 1;
        queue.push(arc.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(dst)] >= 0;
}

std::int64_t MaxFlow::push(int node, int dst, std::int64_t limit) {
  if (node == dst) return limit;
  for (std::size_t& i = iter_[static_cast<std::size_t>(node)];
       i < adjacency_[static_cast<std::size_t>(node)].size(); ++i) {
    const int arcId = adjacency_[static_cast<std::size_t>(node)][i];
    Arc& arc = arcs_[static_cast<std::size_t>(arcId)];
    if (arc.capacity <= 0 || level_[static_cast<std::size_t>(arc.to)] !=
                                 level_[static_cast<std::size_t>(node)] + 1)
      continue;
    const std::int64_t pushed =
        push(arc.to, dst, std::min(limit, arc.capacity));
    if (pushed > 0) {
      arc.capacity -= pushed;
      arcs_[static_cast<std::size_t>(arc.twin)].capacity += pushed;
      return pushed;
    }
  }
  return 0;
}

std::int64_t MaxFlow::solve(int src, int dst) {
  std::int64_t flow = 0;
  while (buildLevels(src, dst)) {
    std::fill(iter_.begin(), iter_.end(), 0);
    while (true) {
      const std::int64_t pushed = push(src, dst, kInf);
      if (pushed == 0) break;
      flow += pushed;
    }
  }
  return flow;
}

}  // namespace dg::graph
