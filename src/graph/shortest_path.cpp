#include "graph/shortest_path.hpp"

#include <algorithm>
#include <queue>

namespace dg::graph {

namespace {

struct QueueEntry {
  util::SimTime dist;
  NodeId node;
  bool operator>(const QueueEntry& other) const {
    return dist > other.dist || (dist == other.dist && node > other.node);
  }
};

using MinQueue =
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>>;

}  // namespace

std::vector<util::SimTime> dijkstraDistances(
    const Graph& graph, NodeId src, std::span<const util::SimTime> weights) {
  std::vector<util::SimTime> dist(graph.nodeCount(), util::kNever);
  MinQueue queue;
  dist[src] = 0;
  queue.push({0, src});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    for (const EdgeId id : graph.outEdges(u)) {
      const util::SimTime w = weights[id];
      if (w == util::kNever) continue;
      const util::SimTime nd = d + w;
      const NodeId v = graph.edge(id).to;
      if (nd < dist[v]) {
        dist[v] = nd;
        queue.push({nd, v});
      }
    }
  }
  return dist;
}

std::vector<util::SimTime> dijkstraDistancesTo(
    const Graph& graph, NodeId dst, std::span<const util::SimTime> weights) {
  std::vector<util::SimTime> dist(graph.nodeCount(), util::kNever);
  MinQueue queue;
  dist[dst] = 0;
  queue.push({0, dst});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    for (const EdgeId id : graph.inEdges(u)) {
      const util::SimTime w = weights[id];
      if (w == util::kNever) continue;
      const util::SimTime nd = d + w;
      const NodeId v = graph.edge(id).from;
      if (nd < dist[v]) {
        dist[v] = nd;
        queue.push({nd, v});
      }
    }
  }
  return dist;
}

PathResult shortestPath(const Graph& graph, NodeId src, NodeId dst,
                        std::span<const util::SimTime> weights) {
  return shortestPathExcluding(graph, src, dst, weights, {}, {});
}

PathResult shortestPathExcluding(const Graph& graph, NodeId src, NodeId dst,
                                 std::span<const util::SimTime> weights,
                                 std::span<const EdgeId> excludedEdges,
                                 std::span<const NodeId> excludedNodes) {
  std::vector<bool> edgeBlocked(graph.edgeCount(), false);
  for (const EdgeId id : excludedEdges) edgeBlocked[id] = true;
  std::vector<bool> nodeBlocked(graph.nodeCount(), false);
  for (const NodeId n : excludedNodes) {
    if (n != src && n != dst) nodeBlocked[n] = true;
  }

  std::vector<util::SimTime> dist(graph.nodeCount(), util::kNever);
  std::vector<EdgeId> via(graph.nodeCount(), kInvalidEdge);
  MinQueue queue;
  dist[src] = 0;
  queue.push({0, src});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    for (const EdgeId id : graph.outEdges(u)) {
      if (edgeBlocked[id]) continue;
      const util::SimTime w = weights[id];
      if (w == util::kNever) continue;
      const NodeId v = graph.edge(id).to;
      if (nodeBlocked[v]) continue;
      const util::SimTime nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        via[v] = id;
        queue.push({nd, v});
      }
    }
  }

  PathResult result;
  if (dist[dst] == util::kNever) return result;
  result.found = true;
  result.distance = dist[dst];
  for (NodeId at = dst; at != src;) {
    const EdgeId id = via[at];
    result.edges.push_back(id);
    at = graph.edge(id).from;
  }
  std::reverse(result.edges.begin(), result.edges.end());
  return result;
}

}  // namespace dg::graph
