#include "routing/scheme.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "graph/disjoint_paths.hpp"
#include "graph/shortest_path.hpp"
#include "routing/decision_memo.hpp"
#include "routing/targeted_graphs.hpp"

namespace dg::routing {

std::string_view schemeName(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::StaticSinglePath: return "static-single";
    case SchemeKind::DynamicSinglePath: return "dynamic-single";
    case SchemeKind::StaticTwoDisjoint: return "static-two-disjoint";
    case SchemeKind::DynamicTwoDisjoint: return "dynamic-two-disjoint";
    case SchemeKind::TargetedRedundancy: return "targeted";
    case SchemeKind::TimeConstrainedFlooding: return "flooding";
  }
  return "unknown";
}

SchemeKind parseSchemeKind(std::string_view name) {
  for (const SchemeKind kind : allSchemeKinds()) {
    if (schemeName(kind) == name) return kind;
  }
  std::string valid;
  for (const SchemeKind kind : allSchemeKinds()) {
    if (!valid.empty()) valid += ", ";
    valid += schemeName(kind);
  }
  throw std::invalid_argument("unknown routing scheme: " + std::string(name) +
                              " (valid: " + valid + ")");
}

std::vector<SchemeKind> allSchemeKinds() {
  return {SchemeKind::StaticSinglePath,   SchemeKind::DynamicSinglePath,
          SchemeKind::StaticTwoDisjoint,  SchemeKind::DynamicTwoDisjoint,
          SchemeKind::TargetedRedundancy, SchemeKind::TimeConstrainedFlooding};
}

std::string flowProblemLabel(const FlowProblem& problem) {
  std::string label;
  const auto append = [&label](std::string_view flag) {
    if (!label.empty()) label += '+';
    label += flag;
  };
  if (problem.source) append("source");
  if (problem.destination) append("destination");
  if (problem.middle) append("middle");
  return label.empty() ? "none" : label;
}

void RoutingScheme::recordClassification(const FlowProblem& detected) {
  if (telemetry_ == nullptr) return;
  const std::size_t index = (detected.source ? 1u : 0u) |
                            (detected.destination ? 2u : 0u) |
                            (detected.middle ? 4u : 0u);
  telemetry::Counter*& counter = classificationCounters_[index];
  if (counter == nullptr) {
    counter = &telemetry_->metrics.counter(
        "dg_routing_classifications_total",
        {{"flow", flowLabel_},
         {"scheme", std::string(name())},
         {"class", flowProblemLabel(detected)}});
  }
  counter->inc();
  if (!haveRecorded_ || !(detected == lastRecorded_)) {
    telemetry_->trace.record(telemetry_->now,
                             telemetry::TraceEventKind::ProblemClassified,
                             -1, flow_.source, -1, 0.0,
                             flowProblemLabel(detected));
    lastRecorded_ = detected;
    haveRecorded_ = true;
  }
}

namespace {

using graph::DisseminationGraph;

/// Deadline-constrained path selection shared by the dynamic schemes.
///
/// Routing weights penalize lossy links, which can make a detour look
/// attractive even though its *actual* latency violates the deadline --
/// and a clean route that arrives late is strictly worse than a lossy
/// route that can still deliver (loss is probabilistic, lateness is
/// certain). So: compute up to k node-disjoint paths on the penalized
/// weights, keep only those whose true latency meets the deadline, and if
/// fewer than k survive, top up with deadline-feasible paths computed on
/// pure latencies (loss-blind), which is exactly what the static schemes
/// would use.
std::vector<graph::Path> timelyDisjointPaths(const graph::Graph& overlay,
                                             Flow flow,
                                             const NetworkView& view,
                                             const SchemeParams& params,
                                             int k) {
  const std::vector<util::SimTime> latencies(view.latencies().begin(),
                                             view.latencies().end());
  const auto feasible = [&](const graph::Path& path) {
    const util::SimTime latency = pathLatency(overlay, path, latencies);
    return latency != util::kNever && latency <= params.deadline;
  };

  std::vector<graph::Path> chosen;
  const auto penalized = view.routingWeights(params.view);
  for (graph::Path& path :
       graph::nodeDisjointPaths(overlay, flow.source, flow.destination,
                                penalized, k)
           .paths) {
    if (feasible(path)) chosen.push_back(std::move(path));
  }
  if (static_cast<int>(chosen.size()) < k) {
    for (graph::Path& path :
         graph::nodeDisjointPaths(overlay, flow.source, flow.destination,
                                  latencies, k)
             .paths) {
      if (static_cast<int>(chosen.size()) >= k) break;
      if (!feasible(path)) continue;
      if (std::find(chosen.begin(), chosen.end(), path) != chosen.end())
        continue;
      chosen.push_back(std::move(path));
    }
  }
  return chosen;
}

/// Shared helper state for schemes whose route computation is a pure
/// function of the view: a current graph, a same-view fast path, and the
/// shared decision memo.
///
/// The same-view fast path has two tiers. Fingerprinted views (the
/// playback cursor) compare content ids in O(1); unfingerprinted views
/// (the live monitor, tests) fall back to comparing the computed weight
/// vector, as before. On a fingerprint miss the shared DecisionMemo (when
/// attached) is consulted before recomputing: a hit replays the memoized
/// edge list -- or, for a memoized no-route decision, keeps the previous
/// graph, exactly as recomputation would. All three paths produce
/// bit-identical selections.
class CachedGraphScheme : public RoutingScheme {
 public:
  CachedGraphScheme(const graph::Graph& overlay, Flow flow,
                    SchemeParams params)
      : RoutingScheme(overlay, flow, params),
        current_(overlay, flow.source, flow.destination) {}

 public:
  /// Fixed point iff the last decision (initialize or select) was made on
  /// the fingerprinted clean-baseline view: selectDynamic's same-content
  /// fast path then returns current_ without touching any state, and the
  /// static variants never mutate state in select() at all. Dynamic
  /// schemes driven with unfingerprinted views report false (safe: the
  /// playback fast path only ever sees fingerprinted views).
  bool steadyOnBaseline() const override {
    return lastFingerprint_ == NetworkView::kBaselineFingerprint;
  }

 protected:
  DisseminationGraph current_;
  std::vector<util::SimTime> cachedWeights_;
  std::vector<util::SimTime> weightsScratch_;
  std::vector<graph::EdgeId> edgeScratch_;
  std::uint64_t lastFingerprint_ = NetworkView::kNoFingerprint;

  void noteDecision(const NetworkView& view) {
    lastFingerprint_ = view.fingerprint();
    view.routingWeightsInto(params_.view, cachedWeights_);
  }

  void rebuildCurrent(const std::vector<graph::EdgeId>& edges) {
    if (current_.edges() == edges) return;
    DisseminationGraph next(*overlay_, flow_.source, flow_.destination);
    for (const graph::EdgeId e : edges) next.addEdge(e);
    current_ = std::move(next);
  }

  /// Selection driver for dynamic schemes. `recompute(view)` must install
  /// the newly selected graph into current_ and return true, or return
  /// false when the view offers no timely route (keeping the previous
  /// graph -- sending on a possibly-degraded route beats sending on
  /// nothing).
  template <typename RecomputeFn>
  const DisseminationGraph& selectDynamic(const NetworkView& view,
                                          RecomputeFn&& recompute) {
    const std::uint64_t fp = view.fingerprint();
    if (fp != NetworkView::kNoFingerprint) {
      if (fp == lastFingerprint_) return current_;
      if (memo_ != nullptr) {
        if (const auto id = memo_->findDecision(memoContext_, fp)) {
          if (*id != DecisionMemo::kNoRoute) {
            memo_->edgeListInto(*id, edgeScratch_);
            rebuildCurrent(edgeScratch_);
          }
          cachedWeights_.clear();
          lastFingerprint_ = fp;
          return current_;
        }
      }
      const bool found = recompute(view);
      if (memo_ != nullptr) {
        memo_->storeDecision(memoContext_, fp,
                             found ? memo_->internEdgeList(current_.edges())
                                   : DecisionMemo::kNoRoute);
      }
      cachedWeights_.clear();
      lastFingerprint_ = fp;
      return current_;
    }
    // Unfingerprinted view: compare the computed weight vector.
    lastFingerprint_ = NetworkView::kNoFingerprint;
    view.routingWeightsInto(params_.view, weightsScratch_);
    if (weightsScratch_ == cachedWeights_ && !cachedWeights_.empty())
      return current_;
    std::swap(cachedWeights_, weightsScratch_);
    recompute(view);
    return current_;
  }
};

// ---------------------------------------------------------------------
// Single path.
// ---------------------------------------------------------------------

class SinglePathScheme : public CachedGraphScheme {
 public:
  SinglePathScheme(const graph::Graph& overlay, Flow flow,
                   SchemeParams params, bool dynamic)
      : CachedGraphScheme(overlay, flow, params), dynamic_(dynamic) {}

  std::string_view name() const override {
    return dynamic_ ? schemeName(SchemeKind::DynamicSinglePath)
                    : schemeName(SchemeKind::StaticSinglePath);
  }

  // dgcheck: cold: runs once per (flow, scheme, chunk) task before interval playback
  void initialize(const NetworkView& baselineView) override {
    recompute(baselineView);
    noteDecision(baselineView);
  }

  // dgcheck: cold: decision path; steady-state selects are fixed-point no-ops, re-planning is amortized by the decision memo
  const DisseminationGraph& select(const NetworkView& view) override {
    if (!dynamic_) return current_;
    return selectDynamic(view,
                         [this](const NetworkView& v) { return recompute(v); });
  }

 private:
  bool recompute(const NetworkView& view) {
    const auto paths =
        timelyDisjointPaths(*overlay_, flow_, view, params_, 1);
    // When the view offers no timely route, keep the previous graph:
    // sending on a possibly-degraded route beats sending on nothing.
    if (paths.empty()) return false;
    DisseminationGraph next(*overlay_, flow_.source, flow_.destination);
    next.addPath(paths.front());
    current_ = std::move(next);
    return true;
  }

  bool dynamic_;
};

// ---------------------------------------------------------------------
// k node-disjoint paths.
// ---------------------------------------------------------------------

class DisjointPathsScheme : public CachedGraphScheme {
 public:
  DisjointPathsScheme(const graph::Graph& overlay, Flow flow,
                      SchemeParams params, bool dynamic)
      : CachedGraphScheme(overlay, flow, params), dynamic_(dynamic) {}

  std::string_view name() const override {
    return dynamic_ ? schemeName(SchemeKind::DynamicTwoDisjoint)
                    : schemeName(SchemeKind::StaticTwoDisjoint);
  }

  // dgcheck: cold: runs once per (flow, scheme, chunk) task before interval playback
  void initialize(const NetworkView& baselineView) override {
    recompute(baselineView);
    noteDecision(baselineView);
  }

  // dgcheck: cold: decision path; steady-state selects are fixed-point no-ops, re-planning is amortized by the decision memo
  const DisseminationGraph& select(const NetworkView& view) override {
    if (!dynamic_) return current_;
    return selectDynamic(view,
                         [this](const NetworkView& v) { return recompute(v); });
  }

 private:
  bool recompute(const NetworkView& view) {
    const auto paths = timelyDisjointPaths(*overlay_, flow_, view, params_,
                                           params_.disjointPaths);
    if (paths.empty()) return false;  // keep previous graph
    DisseminationGraph next(*overlay_, flow_.source, flow_.destination);
    for (const graph::Path& path : paths) next.addPath(path);
    current_ = std::move(next);
    return true;
  }

  bool dynamic_;
};

// ---------------------------------------------------------------------
// Time-constrained flooding: every overlay edge that can contribute an
// on-time delivery under healthy propagation latencies. The structure is
// *static*: reacting to measurements could only remove edges that might
// turn out useful an instant later, and the point of this scheme is to be
// the never-wrong (but prohibitively expensive) upper bound.
// ---------------------------------------------------------------------

class FloodingScheme : public CachedGraphScheme {
 public:
  using CachedGraphScheme::CachedGraphScheme;

  std::string_view name() const override {
    return schemeName(SchemeKind::TimeConstrainedFlooding);
  }

  // dgcheck: cold: runs once per (flow, scheme, chunk) task before interval playback
  void initialize(const NetworkView& baselineView) override {
    // Pruning uses plain latencies (not loss-penalized weights): flooding
    // never avoids lossy links, it only refuses to pay for edges that
    // cannot possibly deliver in time.
    const std::vector<util::SimTime> latencies(
        baselineView.latencies().begin(), baselineView.latencies().end());
    current_ =
        graph::floodingGraph(*overlay_, flow_.source, flow_.destination);
    current_.pruneDeadlineInfeasible(latencies, params_.deadline);
  }

  // dgcheck: cold: static scheme; select never re-plans after initialize
  const DisseminationGraph& select(const NetworkView&) override {
    return current_;
  }

  // Flooding never looks at the view (initialize() does not call
  // noteDecision, so the inherited fingerprint check would wrongly say
  // "not steady").
  bool steadyOnBaseline() const override { return true; }
};

// ---------------------------------------------------------------------
// Targeted redundancy: precomputed graphs + problem-class switching.
// ---------------------------------------------------------------------

class TargetedScheme : public RoutingScheme {
 public:
  TargetedScheme(const graph::Graph& overlay, Flow flow, SchemeParams params)
      : RoutingScheme(overlay, flow, params),
        detector_(overlay, params.detector),
        graphs_{DisseminationGraph(overlay, flow.source, flow.destination),
                DisseminationGraph(overlay, flow.source, flow.destination),
                DisseminationGraph(overlay, flow.source, flow.destination),
                DisseminationGraph(overlay, flow.source, flow.destination)},
        dynamicFallback_(overlay, flow.source, flow.destination) {}

  std::string_view name() const override {
    return schemeName(SchemeKind::TargetedRedundancy);
  }

  // dgcheck: cold: runs once per (flow, scheme, chunk) task before interval playback
  void initialize(const NetworkView& baselineView) override {
    const auto weights = baselineView.routingWeights(params_.view);
    graphs_ = buildTargetedGraphs(*overlay_, flow_, weights,
                                  params_.deadline, params_.disjointPaths);
    dynamicFallback_ = graphs_.twoDisjoint;
    dynamicWeights_.clear();
    sourceHold_ = 0;
    destinationHold_ = 0;
    steadyOnBaseline_ = false;
  }

  bool steadyOnBaseline() const override { return steadyOnBaseline_; }

  // dgcheck: cold: decision path; steady-state selects are fixed-point no-ops, allocation only on classification change (amortized by the decision memo)
  const DisseminationGraph& select(const NetworkView& view) override {
    const FlowProblem detected =
        detector_.classify(view, flow_.source, flow_.destination);
    recordClassification(detected);
    // Flap damping: hold targeted graphs for holdDownIntervals further
    // decisions after the detector stops firing.
    FlowProblem problem = detected;
    problem.source = detected.source || sourceHold_ > 0;
    problem.destination = detected.destination || destinationHold_ > 0;
    if (detected.source) {
      sourceHold_ = params_.holdDownIntervals;
    } else if (sourceHold_ > 0) {
      --sourceHold_;
    }
    if (detected.destination) {
      destinationHold_ = params_.holdDownIntervals;
    } else if (destinationHold_ > 0) {
      --destinationHold_;
    }
    // Fixed point check for steadyOnBaseline(): on the baseline view the
    // detector's classification is a pure function of the view, so a
    // repeat select() returns the same graph and leaves state unchanged
    // exactly when no hold-down counter masked the detector this call
    // (problem == detected). That covers both moving parts: a draining
    // hold (problem true, detected false -- including the final drain
    // step, whose *returned* graph is still the targeted one) and the
    // pinned case (detector keeps re-arming the hold, problem ==
    // detected == true, selection stable). A middle problem is stable
    // too because dynamicWeights_ was just brought equal to this view's
    // weights below.
    steadyOnBaseline_ =
        view.fingerprint() == NetworkView::kBaselineFingerprint &&
        problem.source == detected.source &&
        problem.destination == detected.destination;
    lastProblem_ = problem;
    if (problem.source && problem.destination) return graphs_.robust;
    if (problem.source) return graphs_.sourceProblem;
    if (problem.destination) return graphs_.destinationProblem;
    if (problem.middle) {
      // A mid-network problem: recompute two disjoint paths around it
      // (classic dynamic behaviour; middle problems are the minority and
      // rarely hit both precomputed paths, but recomputing is cheap).
      const auto weights = view.routingWeights(params_.view);
      if (weights != dynamicWeights_) {
        dynamicWeights_ = weights;
        const auto paths = timelyDisjointPaths(*overlay_, flow_, view,
                                               params_,
                                               params_.disjointPaths);
        if (!paths.empty()) {
          DisseminationGraph next(*overlay_, flow_.source,
                                  flow_.destination);
          for (const graph::Path& path : paths) next.addPath(path);
          dynamicFallback_ = std::move(next);
        }
      }
      return dynamicFallback_;
    }
    return graphs_.twoDisjoint;
  }

  /// The classification used by the most recent select() (for analysis).
  FlowProblem lastProblem() const { return lastProblem_; }
  const TargetedGraphs& graphs() const { return graphs_; }

 private:
  ProblemDetector detector_;
  TargetedGraphs graphs_;
  DisseminationGraph dynamicFallback_;
  std::vector<util::SimTime> dynamicWeights_;
  FlowProblem lastProblem_;
  int sourceHold_ = 0;
  int destinationHold_ = 0;
  bool steadyOnBaseline_ = false;
};

}  // namespace

// dgcheck: cold: scheme factory; runs once per (flow, scheme, chunk) task
std::unique_ptr<RoutingScheme> makeScheme(SchemeKind kind,
                                          const graph::Graph& overlay,
                                          Flow flow,
                                          const SchemeParams& params) {
  switch (kind) {
    case SchemeKind::StaticSinglePath:
      return std::make_unique<SinglePathScheme>(overlay, flow, params,
                                                /*dynamic=*/false);
    case SchemeKind::DynamicSinglePath:
      return std::make_unique<SinglePathScheme>(overlay, flow, params,
                                                /*dynamic=*/true);
    case SchemeKind::StaticTwoDisjoint:
      return std::make_unique<DisjointPathsScheme>(overlay, flow, params,
                                                   /*dynamic=*/false);
    case SchemeKind::DynamicTwoDisjoint:
      return std::make_unique<DisjointPathsScheme>(overlay, flow, params,
                                                   /*dynamic=*/true);
    case SchemeKind::TargetedRedundancy:
      return std::make_unique<TargetedScheme>(overlay, flow, params);
    case SchemeKind::TimeConstrainedFlooding:
      return std::make_unique<FloodingScheme>(overlay, flow, params);
  }
  throw std::invalid_argument("makeScheme: unknown kind");
}

}  // namespace dg::routing
