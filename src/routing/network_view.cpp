#include "routing/network_view.hpp"

#include <cmath>
#include <stdexcept>

namespace dg::routing {

NetworkView::NetworkView(std::vector<double> lossRates,
                         std::vector<util::SimTime> latencies)
    : lossRates_(std::move(lossRates)), latencies_(std::move(latencies)) {
  if (lossRates_.size() != latencies_.size())
    throw std::invalid_argument("NetworkView: size mismatch");
}

NetworkView NetworkView::baseline(const trace::Trace& trace) {
  std::vector<double> loss;
  std::vector<util::SimTime> latency;
  loss.reserve(trace.edgeCount());
  latency.reserve(trace.edgeCount());
  for (graph::EdgeId e = 0; e < trace.edgeCount(); ++e) {
    loss.push_back(trace.baseline(e).lossRate);
    latency.push_back(trace.baseline(e).latency);
  }
  return NetworkView(std::move(loss), std::move(latency));
}

NetworkView NetworkView::atInterval(const trace::Trace& trace,
                                    std::size_t interval) {
  return NetworkView(trace.lossRatesAt(interval),
                     trace.latenciesAt(interval));
}

std::vector<util::SimTime> NetworkView::routingWeights(
    const ViewParams& params) const {
  std::vector<util::SimTime> weights(lossRates_.size());
  for (std::size_t e = 0; e < lossRates_.size(); ++e) {
    const double loss = lossRates_[e];
    if (loss >= params.unusableLoss) {
      weights[e] = util::kNever;
      continue;
    }
    double weight = static_cast<double>(latencies_[e]);
    if (loss >= params.degradedLoss) {
      weight *= 1.0 + params.lossPenaltyFactor * loss;
    }
    weights[e] = static_cast<util::SimTime>(std::llround(weight));
  }
  return weights;
}

}  // namespace dg::routing
