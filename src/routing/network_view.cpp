#include "routing/network_view.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace dg::routing {

NetworkView::NetworkView(std::vector<double> lossRates,
                         std::vector<util::SimTime> latencies)
    : ownedLossRates_(std::move(lossRates)),
      ownedLatencies_(std::move(latencies)) {
  if (ownedLossRates_.size() != ownedLatencies_.size())
    throw std::invalid_argument("NetworkView: size mismatch");
  rebindSpans();
}

NetworkView::NetworkView(const NetworkView& other)
    : ownedLossRates_(other.ownedLossRates_),
      ownedLatencies_(other.ownedLatencies_),
      lossRates_(other.lossRates_),
      latencies_(other.latencies_),
      fingerprint_(other.fingerprint_) {
  // An owning view's spans must point at *this* object's storage.
  if (other.lossRates_.data() == other.ownedLossRates_.data() &&
      other.latencies_.data() == other.ownedLatencies_.data()) {
    rebindSpans();
  }
}

NetworkView::NetworkView(NetworkView&& other) noexcept
    : ownedLossRates_(std::move(other.ownedLossRates_)),
      ownedLatencies_(std::move(other.ownedLatencies_)),
      lossRates_(other.lossRates_),
      latencies_(other.latencies_),
      fingerprint_(other.fingerprint_) {
  if (lossRates_.data() == ownedLossRates_.data() &&
      latencies_.data() == ownedLatencies_.data()) {
    // Moved vectors keep their heap buffers, so the spans stay valid;
    // rebinding anyway keeps the invariant obvious.
    rebindSpans();
  }
}

NetworkView& NetworkView::operator=(const NetworkView& other) {
  if (this == &other) return *this;
  NetworkView copy(other);
  *this = std::move(copy);
  return *this;
}

NetworkView& NetworkView::operator=(NetworkView&& other) noexcept {
  if (this == &other) return *this;
  const bool owned = other.lossRates_.data() == other.ownedLossRates_.data() &&
                     other.latencies_.data() == other.ownedLatencies_.data();
  ownedLossRates_ = std::move(other.ownedLossRates_);
  ownedLatencies_ = std::move(other.ownedLatencies_);
  lossRates_ = other.lossRates_;
  latencies_ = other.latencies_;
  fingerprint_ = other.fingerprint_;
  if (owned) rebindSpans();
  return *this;
}

// dgcheck: cold: materializes the baseline view once per chunk open
NetworkView NetworkView::baseline(const trace::Trace& trace) {
  std::vector<double> loss;
  std::vector<util::SimTime> latency;
  loss.reserve(trace.edgeCount());
  latency.reserve(trace.edgeCount());
  for (graph::EdgeId e = 0; e < trace.edgeCount(); ++e) {
    loss.push_back(trace.baseline(e).lossRate);
    latency.push_back(trace.baseline(e).latency);
  }
  NetworkView view(std::move(loss), std::move(latency));
  view.fingerprint_ = kBaselineFingerprint;
  return view;
}

NetworkView NetworkView::atInterval(const trace::Trace& trace,
                                    std::size_t interval) {
  return NetworkView(trace.lossRatesAt(interval),
                     trace.latenciesAt(interval));
}

NetworkView NetworkView::borrowing(const trace::ConditionTimeline& cursor,
                                   std::uint64_t fingerprint) {
  return NetworkView(cursor.lossRates(), cursor.latencies(), fingerprint);
}

std::vector<util::SimTime> NetworkView::routingWeights(
    const ViewParams& params) const {
  std::vector<util::SimTime> weights;
  routingWeightsInto(params, weights);
  return weights;
}

void NetworkView::routingWeightsInto(const ViewParams& params,
                                     std::vector<util::SimTime>& out) const {
  out.resize(lossRates_.size());
  for (std::size_t e = 0; e < lossRates_.size(); ++e) {
    const double loss = lossRates_[e];
    if (loss >= params.unusableLoss) {
      out[e] = util::kNever;
      continue;
    }
    double weight = static_cast<double>(latencies_[e]);
    if (loss >= params.degradedLoss) {
      weight *= 1.0 + params.lossPenaltyFactor * loss;
    }
    out[e] = static_cast<util::SimTime>(std::llround(weight));
  }
}

}  // namespace dg::routing
