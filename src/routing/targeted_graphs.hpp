// Targeted-redundancy dissemination graph construction.
//
// The paper's key contribution: because problems cluster around sources
// and destinations, a flow can precompute three dissemination graphs that
// add redundancy exactly where it will be needed --
//   * source-problem graph: the two disjoint paths, plus every
//     deadline-feasible way *out of the source* funneled into shortest
//     continuations, so the flow survives as long as any source link
//     works at each instant;
//   * destination-problem graph: symmetric, into the destination;
//   * robust source-destination graph: both at once.
// The graphs are computed once per flow on healthy conditions; at run
// time the scheme merely *selects* among them, which is why it reacts
// instantly once a problem area is identified, without path recomputation.
#pragma once

#include <span>

#include "graph/dissemination_graph.hpp"
#include "routing/scheme.hpp"

namespace dg::routing {

struct TargetedGraphs {
  graph::DisseminationGraph twoDisjoint;        ///< default (no problem)
  graph::DisseminationGraph sourceProblem;
  graph::DisseminationGraph destinationProblem;
  graph::DisseminationGraph robust;
};

/// Builds all four graphs for a flow under healthy-baseline weights.
/// `weights` are the routing weights (typically base latencies); paths
/// added for redundancy must meet `deadline` end-to-end to be included.
TargetedGraphs buildTargetedGraphs(const graph::Graph& overlay, Flow flow,
                                   std::span<const util::SimTime> weights,
                                   util::SimTime deadline,
                                   int disjointPaths = 2);

}  // namespace dg::routing
