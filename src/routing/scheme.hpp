// Routing scheme interface.
//
// Every routing approach in the paper -- single path, k disjoint paths,
// targeted-redundancy dissemination graphs, time-constrained flooding --
// is expressed the same way: given the current (stale) network view,
// produce the dissemination graph to flood the next packets on. The
// playback engine and the live transport service drive schemes through
// this one interface, which is what makes the head-to-head evaluation
// apples-to-apples.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/dissemination_graph.hpp"
#include "graph/graph.hpp"
#include "routing/network_view.hpp"
#include "routing/problem_detector.hpp"
#include "telemetry/telemetry.hpp"

namespace dg::routing {

/// A unidirectional communication flow between two overlay nodes.
struct Flow {
  graph::NodeId source = graph::kInvalidNode;
  graph::NodeId destination = graph::kInvalidNode;
  bool operator==(const Flow&) const = default;
};

enum class SchemeKind {
  StaticSinglePath,
  DynamicSinglePath,
  StaticTwoDisjoint,
  DynamicTwoDisjoint,
  TargetedRedundancy,
  TimeConstrainedFlooding,
};

/// Canonical short name ("static-single", "targeted", ...).
std::string_view schemeName(SchemeKind kind);
/// Parses a canonical name; throws std::invalid_argument on unknown.
SchemeKind parseSchemeKind(std::string_view name);
/// All kinds in evaluation order (single -> ... -> flooding).
std::vector<SchemeKind> allSchemeKinds();

struct SchemeParams {
  ViewParams view;
  DetectorParams detector;
  /// One-way delivery deadline (the paper's 65 ms for 130 ms RTT).
  util::SimTime deadline = util::milliseconds(65);
  /// Number of disjoint paths for the disjoint-path schemes.
  int disjointPaths = 2;
  /// Targeted redundancy: once a source/destination problem is detected,
  /// keep the targeted graph for this many further decision intervals
  /// after the detector stops firing (flap damping -- intermittent
  /// problems briefly look healthy between bursts, and falling back too
  /// eagerly forfeits the redundancy exactly when it is needed).
  int holdDownIntervals = 3;

  bool operator==(const SchemeParams&) const = default;
};

class DecisionMemo;

class RoutingScheme {
 public:
  RoutingScheme(const graph::Graph& overlay, Flow flow, SchemeParams params)
      : overlay_(&overlay), flow_(flow), params_(params) {}
  virtual ~RoutingScheme() = default;
  RoutingScheme(const RoutingScheme&) = delete;
  RoutingScheme& operator=(const RoutingScheme&) = delete;

  virtual std::string_view name() const = 0;

  /// Computes any precomputed structure from the healthy baseline view.
  /// Must be called before select().
  virtual void initialize(const NetworkView& baselineView) = 0;

  /// Returns the dissemination graph to use while `view` describes the
  /// believed network state. The reference stays valid until the next
  /// select()/initialize() call on this scheme.
  virtual const graph::DisseminationGraph& select(const NetworkView& view) = 0;

  /// True when the scheme has reached a fixed point under clean
  /// conditions: another select() on the fingerprinted baseline view
  /// would return the current selection unchanged and leave every
  /// decision-affecting state variable unchanged. The playback engine
  /// uses this to elide per-interval select() calls across clean steady
  /// spans (only while telemetry is detached -- classification counters
  /// must still tick per call when attached) and to bulk-skip clean
  /// prefixes during chunk-parallel warm-up replay. Schemes that cannot
  /// promise a fixed point return false (the default), which is always
  /// safe.
  virtual bool steadyOnBaseline() const { return false; }

  const graph::Graph& overlay() const { return *overlay_; }
  Flow flow() const { return flow_; }
  const SchemeParams& params() const { return params_; }

  /// Attaches telemetry (nullable). `flowLabel` identifies the flow in
  /// metric labels (the live service uses the flow id, the playback
  /// engine "src->dst"). Schemes stamp trace events with
  /// `telemetry->now`, which the driving layer keeps current.
  void setTelemetry(telemetry::Telemetry* telemetry, std::string flowLabel) {
    telemetry_ = telemetry;
    flowLabel_ = std::move(flowLabel);
    classificationCounters_.fill(nullptr);
  }
  telemetry::Telemetry* telemetry() const { return telemetry_; }

  /// Attaches a shared decision memo (nullable). `contextKey` must come
  /// from DecisionMemo::contextKey for this scheme's exact (kind, flow,
  /// params). Schemes whose selection is a pure function of the view
  /// consult the memo for fingerprinted views; stateful schemes (targeted
  /// redundancy) ignore it. Selection results are bit-identical with and
  /// without a memo attached.
  void setDecisionMemo(DecisionMemo* memo, std::uint64_t contextKey) {
    memo_ = memo;
    memoContext_ = contextKey;
  }

 protected:
  /// Counts a problem-detector classification under
  /// `dg_routing_classifications_total{flow,scheme,class}` and records a
  /// ProblemClassified trace event whenever the classification changes.
  void recordClassification(const FlowProblem& detected);

  const graph::Graph* overlay_;
  Flow flow_;
  SchemeParams params_;

  telemetry::Telemetry* telemetry_ = nullptr;
  std::string flowLabel_;

  DecisionMemo* memo_ = nullptr;
  std::uint64_t memoContext_ = 0;

 private:
  /// Lazily resolved counter per classification bitmask
  /// (source | destination<<1 | middle<<2).
  std::array<telemetry::Counter*, 8> classificationCounters_{};
  FlowProblem lastRecorded_;
  bool haveRecorded_ = false;
};

/// Human-readable classification label: "none", "source",
/// "source+destination", ... (flags joined in source/destination/middle
/// order).
std::string flowProblemLabel(const FlowProblem& problem);

/// Creates a scheme instance for one flow.
std::unique_ptr<RoutingScheme> makeScheme(SchemeKind kind,
                                          const graph::Graph& overlay,
                                          Flow flow,
                                          const SchemeParams& params);

}  // namespace dg::routing
