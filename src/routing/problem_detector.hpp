// Problem detection and classification.
//
// The targeted-redundancy approach rests on the paper's empirical
// observation that serious problems cluster around data centers: instead
// of chasing the momentarily-best path (hopeless against intermittent
// loss, because measurements lag reality), the detector answers the
// coarser -- and far more stable -- question "is there currently a
// problem around the source? around the destination? elsewhere?", and the
// scheme switches to a precomputed graph with redundancy in that area.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "routing/network_view.hpp"

namespace dg::routing {

struct DetectorParams {
  /// A directed link is problematic if its measured loss rate is at or
  /// above this...
  double problemLoss = 0.05;
  /// ...or its latency exceeds its healthy baseline by at least this.
  util::SimTime problemExtraLatency = util::milliseconds(15);
  /// A node has a problem when at least this many of its adjacent
  /// undirected links are problematic...
  int nodeMinLinks = 2;
  /// ...and at least this fraction of them.
  double nodeMinFraction = 0.3;

  bool operator==(const DetectorParams&) const = default;
};

/// Per-flow classification of the current situation.
struct FlowProblem {
  bool source = false;       ///< problem around the source node
  bool destination = false;  ///< problem around the destination node
  bool middle = false;       ///< problematic link(s) not adjacent to either

  bool any() const { return source || destination || middle; }
  bool operator==(const FlowProblem&) const = default;
};

class ProblemDetector {
 public:
  ProblemDetector(const graph::Graph& graph, DetectorParams params);

  const DetectorParams& params() const { return params_; }

  /// Per-directed-edge problem flags under the view.
  std::vector<char> problematicEdges(const NetworkView& view) const;

  /// True if `node` currently has a data-center-level problem.
  bool nodeProblem(const NetworkView& view, graph::NodeId node) const;
  bool nodeProblem(const std::vector<char>& edgeFlags,
                   graph::NodeId node) const;

  /// Classifies the situation for a flow. `middle` is set when any
  /// problematic link touches neither src nor dst.
  FlowProblem classify(const NetworkView& view, graph::NodeId src,
                       graph::NodeId dst) const;

 private:
  const graph::Graph* graph_;
  DetectorParams params_;
  std::vector<util::SimTime> baseLatency_;
};

}  // namespace dg::routing
