// Cross-job routing-decision memoization.
//
// A scheme's path selection for a given network view is (for every scheme
// whose decision is a pure function of the view) fully determined by
// (scheme kind, scheme params, flow, view content). The playback engine
// replays the same trace for every (flow, scheme) pair and across
// repeated runs (timelines, ablations, benches), so identical views recur
// constantly; this memo lets a scheme skip the Dijkstra / k-shortest /
// disjoint-path construction when the decision for its exact context and
// the view's exact content fingerprint has already been made.
//
// Exactness: every key component is interned by full value comparison --
// contexts by (kind, flow, params) equality, edge lists lexicographically,
// view fingerprints are trace::ConditionIndex content ids. Hashes are
// never trusted on their own, so a memo hit always reproduces bit-for-bit
// what the recomputation would have produced. Decisions that are *not*
// pure in the view (the targeted scheme's hold-down state machine) must
// simply not consult the memo.
//
// Thread safety: all methods are internally synchronized; the playback
// experiment runner shares one memo across its worker threads. Stored
// values are pure functions of their keys, so results are independent of
// which thread inserts first.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "routing/scheme.hpp"

namespace dg::routing {

class DecisionMemo {
 public:
  /// Edge-list id stored for "the view offered no timely route": the
  /// scheme keeps its previous graph (see CachedGraphScheme::recompute).
  static constexpr std::uint32_t kNoRoute = static_cast<std::uint32_t>(-1);

  DecisionMemo();
  ~DecisionMemo();
  DecisionMemo(const DecisionMemo&) = delete;
  DecisionMemo& operator=(const DecisionMemo&) = delete;

  /// Interns a decision context; equal (kind, flow, params) triples map
  /// to the same key. Called once per playback job, not per interval.
  std::uint64_t contextKey(SchemeKind kind, const Flow& flow,
                           const SchemeParams& params);

  /// Looks up the decision for (context, view fingerprint). Returns the
  /// interned edge-list id, kNoRoute for a memoized no-route decision,
  /// or nullopt on a miss.
  std::optional<std::uint32_t> findDecision(std::uint64_t contextKey,
                                            std::uint64_t viewFingerprint);

  void storeDecision(std::uint64_t contextKey, std::uint64_t viewFingerprint,
                     std::uint32_t edgeListId);

  /// Interns an edge list (sorted member edges of a dissemination graph);
  /// equal lists map to the same id.
  std::uint32_t internEdgeList(std::span<const graph::EdgeId> edges);

  /// Copies the interned list `id` into `out` (cleared first).
  void edgeListInto(std::uint32_t id, std::vector<graph::EdgeId>& out) const;

  struct Stats {
    std::uint64_t decisionHits = 0;
    std::uint64_t decisionMisses = 0;
    std::size_t decisions = 0;
    std::size_t edgeLists = 0;
    std::size_t contexts = 0;
  };
  Stats stats() const;

  /// Value-complete copy of the memo for the persistent sidecar cache
  /// (src/playback/memo_cache.*). Context keys and edge-list ids are
  /// process-local interning accidents, so the snapshot spells every
  /// context out by (kind, flow, params) value and references edge lists
  /// by index into its own table; absorb() re-interns both, which makes a
  /// round trip independent of the id assignment order of either process.
  struct Snapshot {
    struct ContextEntry {
      SchemeKind kind{};
      Flow flow;
      SchemeParams params;
      /// (view fingerprint, index into Snapshot::edgeLists) -- or
      /// kNoRoute for a memoized no-route decision.
      std::vector<std::pair<std::uint64_t, std::uint32_t>> decisions;
    };
    std::vector<std::vector<graph::EdgeId>> edgeLists;
    std::vector<ContextEntry> contexts;
  };

  /// Deterministic snapshot: contexts in interning order, decisions
  /// sorted by fingerprint (serializing twice yields identical bytes).
  Snapshot snapshot() const;

  /// Merges a snapshot in. Existing entries win on conflict (emplace
  /// semantics), which cannot change results -- every decision is a pure
  /// function of its key -- only hit rates.
  void absorb(const Snapshot& snapshot);

 private:
  struct Context;

  mutable std::mutex mutex_;
  std::vector<Context> contexts_;
  // (contextKey, fingerprint) -> edge-list id. Both components are dense
  // interned ids, so the packed key is exact.
  std::unordered_map<std::uint64_t, std::uint32_t> decisions_;
  std::map<std::vector<graph::EdgeId>, std::uint32_t> edgeListIndex_;
  std::vector<const std::vector<graph::EdgeId>*> edgeLists_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dg::routing
