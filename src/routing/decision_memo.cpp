#include "routing/decision_memo.hpp"

#include <algorithm>
#include <stdexcept>

#include "routing/scheme.hpp"

namespace dg::routing {

struct DecisionMemo::Context {
  SchemeKind kind;
  Flow flow;
  SchemeParams params;
};

DecisionMemo::DecisionMemo() = default;
DecisionMemo::~DecisionMemo() = default;

namespace {

std::uint64_t packKey(std::uint64_t contextKey, std::uint64_t fingerprint) {
  // Both components are dense interned ids, so 32 bits each is ample; the
  // packed key therefore stays exact (no lossy hashing).
  return (contextKey << 32) | (fingerprint & 0xFFFFFFFFULL);
}

}  // namespace

// dgcheck: cold: runs once per (flow, scheme, chunk) registration
std::uint64_t DecisionMemo::contextKey(SchemeKind kind, const Flow& flow,
                                       const SchemeParams& params) {
  const std::scoped_lock lock(mutex_);
  for (std::size_t i = 0; i < contexts_.size(); ++i) {
    const Context& c = contexts_[i];
    if (c.kind == kind && c.flow == flow && c.params == params) return i;
  }
  if (contexts_.size() >= 0xFFFFFFFFULL)
    throw std::length_error("DecisionMemo: too many contexts");
  contexts_.push_back(Context{kind, flow, params});
  return contexts_.size() - 1;
}

std::optional<std::uint32_t> DecisionMemo::findDecision(
    std::uint64_t contextKey, std::uint64_t viewFingerprint) {
  const std::scoped_lock lock(mutex_);
  const auto it = decisions_.find(packKey(contextKey, viewFingerprint));
  if (it == decisions_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void DecisionMemo::storeDecision(std::uint64_t contextKey,
                                 std::uint64_t viewFingerprint,
                                 std::uint32_t edgeListId) {
  const std::scoped_lock lock(mutex_);
  decisions_.emplace(packKey(contextKey, viewFingerprint), edgeListId);
}

// dgcheck: cold: runs only on a memo miss (new edge list); amortized to zero in steady state
std::uint32_t DecisionMemo::internEdgeList(
    std::span<const graph::EdgeId> edges) {
  const std::scoped_lock lock(mutex_);
  std::vector<graph::EdgeId> key(edges.begin(), edges.end());
  const auto [it, inserted] = edgeListIndex_.emplace(
      std::move(key), static_cast<std::uint32_t>(edgeLists_.size()));
  if (inserted) edgeLists_.push_back(&it->first);
  return it->second;
}

void DecisionMemo::edgeListInto(std::uint32_t id,
                                std::vector<graph::EdgeId>& out) const {
  const std::scoped_lock lock(mutex_);
  const std::vector<graph::EdgeId>& list = *edgeLists_.at(id);
  out.assign(list.begin(), list.end());
}

DecisionMemo::Snapshot DecisionMemo::snapshot() const {
  const std::scoped_lock lock(mutex_);
  Snapshot snap;
  snap.edgeLists.reserve(edgeLists_.size());
  for (const std::vector<graph::EdgeId>* list : edgeLists_)
    snap.edgeLists.push_back(*list);
  snap.contexts.resize(contexts_.size());
  for (std::size_t i = 0; i < contexts_.size(); ++i) {
    Snapshot::ContextEntry& entry = snap.contexts[i];
    entry.kind = contexts_[i].kind;
    entry.flow = contexts_[i].flow;
    entry.params = contexts_[i].params;
  }
  for (const auto& [packed, edgeListId] : decisions_) {
    const std::size_t context = static_cast<std::size_t>(packed >> 32);
    const std::uint64_t fingerprint = packed & 0xFFFFFFFFULL;
    snap.contexts.at(context).decisions.emplace_back(fingerprint, edgeListId);
  }
  for (Snapshot::ContextEntry& entry : snap.contexts) {
    std::sort(entry.decisions.begin(), entry.decisions.end());
  }
  return snap;
}

void DecisionMemo::absorb(const Snapshot& snapshot) {
  // Re-intern through the public API (it takes the lock itself): the
  // snapshot's ids are the donor process's interning order, not ours.
  std::vector<std::uint32_t> edgeListIds;
  edgeListIds.reserve(snapshot.edgeLists.size());
  for (const std::vector<graph::EdgeId>& list : snapshot.edgeLists)
    edgeListIds.push_back(internEdgeList(list));
  for (const Snapshot::ContextEntry& entry : snapshot.contexts) {
    const std::uint64_t context =
        contextKey(entry.kind, entry.flow, entry.params);
    for (const auto& [fingerprint, edgeListId] : entry.decisions) {
      const std::uint32_t mapped = edgeListId == kNoRoute
                                       ? kNoRoute
                                       : edgeListIds.at(edgeListId);
      storeDecision(context, fingerprint, mapped);
    }
  }
}

DecisionMemo::Stats DecisionMemo::stats() const {
  const std::scoped_lock lock(mutex_);
  Stats s;
  s.decisionHits = hits_;
  s.decisionMisses = misses_;
  s.decisions = decisions_.size();
  s.edgeLists = edgeLists_.size();
  s.contexts = contexts_.size();
  return s;
}

}  // namespace dg::routing
