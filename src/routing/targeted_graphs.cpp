#include "routing/targeted_graphs.hpp"

#include "graph/disjoint_paths.hpp"
#include "graph/shortest_path.hpp"

namespace dg::routing {

namespace {

/// Adds, for every out-edge (src -> n), the edge plus the shortest
/// continuation n -> dst, provided the whole detour meets the deadline.
void addSourceRedundancy(graph::DisseminationGraph& dg,
                         const graph::Graph& overlay, Flow flow,
                         std::span<const util::SimTime> weights,
                         util::SimTime deadline) {
  // Shortest distances from every node to the destination, once.
  const auto toDst =
      graph::dijkstraDistancesTo(overlay, flow.destination, weights);
  for (const graph::EdgeId out : overlay.outEdges(flow.source)) {
    const util::SimTime w = weights[out];
    if (w == util::kNever) continue;
    const graph::NodeId n = overlay.edge(out).to;
    if (n == flow.source) continue;
    if (toDst[n] == util::kNever || w + toDst[n] > deadline) continue;
    dg.addEdge(out);
    if (n == flow.destination) continue;
    const auto continuation =
        graph::shortestPath(overlay, n, flow.destination, weights);
    if (continuation.found) dg.addPath(continuation.edges);
  }
}

/// Symmetric: for every in-edge (n -> dst), the shortest approach
/// src -> n plus the edge, deadline permitting.
void addDestinationRedundancy(graph::DisseminationGraph& dg,
                              const graph::Graph& overlay, Flow flow,
                              std::span<const util::SimTime> weights,
                              util::SimTime deadline) {
  const auto fromSrc =
      graph::dijkstraDistances(overlay, flow.source, weights);
  for (const graph::EdgeId in : overlay.inEdges(flow.destination)) {
    const util::SimTime w = weights[in];
    if (w == util::kNever) continue;
    const graph::NodeId n = overlay.edge(in).from;
    if (n == flow.destination) continue;
    if (fromSrc[n] == util::kNever || fromSrc[n] + w > deadline) continue;
    dg.addEdge(in);
    if (n == flow.source) continue;
    const auto approach =
        graph::shortestPath(overlay, flow.source, n, weights);
    if (approach.found) dg.addPath(approach.edges);
  }
}

}  // namespace

TargetedGraphs buildTargetedGraphs(const graph::Graph& overlay, Flow flow,
                                   std::span<const util::SimTime> weights,
                                   util::SimTime deadline,
                                   int disjointPaths) {
  graph::DisseminationGraph base(overlay, flow.source, flow.destination);
  const auto disjoint = graph::nodeDisjointPaths(
      overlay, flow.source, flow.destination, weights, disjointPaths);
  for (const graph::Path& path : disjoint.paths) base.addPath(path);

  TargetedGraphs graphs{base, base, base, base};
  addSourceRedundancy(graphs.sourceProblem, overlay, flow, weights,
                      deadline);
  addDestinationRedundancy(graphs.destinationProblem, overlay, flow, weights,
                           deadline);
  graphs.robust.unite(graphs.sourceProblem);
  graphs.robust.unite(graphs.destinationProblem);
  return graphs;
}

}  // namespace dg::routing
