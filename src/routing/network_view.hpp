// The network state as seen by a routing decision.
//
// Routing never sees ground truth: it sees per-link loss/latency as
// measured over a *previous* monitoring interval (one-interval staleness
// by default -- loss statistics cannot be acted on before they are
// collected). A NetworkView is that snapshot, plus the policy that turns
// it into routing weights: links above the unusable-loss threshold are
// excluded and degraded links are latency-penalized so that path
// selection prefers clean routes.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "trace/trace.hpp"
#include "util/sim_time.hpp"

namespace dg::routing {

struct ViewParams {
  /// Loss rate at or above which a link is excluded from route
  /// computation entirely.
  double unusableLoss = 0.5;
  /// Loss rate above which a link is penalized in routing weights.
  double degradedLoss = 0.01;
  /// Weight multiplier: weight = latency * (1 + factor * lossRate) for
  /// degraded links.
  double lossPenaltyFactor = 10.0;
};

class NetworkView {
 public:
  /// View with every link at its healthy baseline.
  static NetworkView baseline(const trace::Trace& trace);

  /// View of one trace interval's measured conditions.
  static NetworkView atInterval(const trace::Trace& trace,
                                std::size_t interval);

  /// Direct construction from per-edge vectors (used by the live monitor
  /// in dg::core, which aggregates its own measurements).
  NetworkView(std::vector<double> lossRates,
              std::vector<util::SimTime> latencies);

  std::size_t edgeCount() const { return lossRates_.size(); }
  double lossRate(graph::EdgeId e) const { return lossRates_[e]; }
  util::SimTime latency(graph::EdgeId e) const { return latencies_[e]; }
  std::span<const util::SimTime> latencies() const { return latencies_; }
  std::span<const double> lossRates() const { return lossRates_; }

  /// Weights for path selection under `params` (util::kNever = excluded).
  std::vector<util::SimTime> routingWeights(const ViewParams& params) const;

 private:
  std::vector<double> lossRates_;
  std::vector<util::SimTime> latencies_;
};

}  // namespace dg::routing
