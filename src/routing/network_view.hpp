// The network state as seen by a routing decision.
//
// Routing never sees ground truth: it sees per-link loss/latency as
// measured over a *previous* monitoring interval (one-interval staleness
// by default -- loss statistics cannot be acted on before they are
// collected). A NetworkView is that snapshot, plus the policy that turns
// it into routing weights: links above the unusable-loss threshold are
// excluded and degraded links are latency-penalized so that path
// selection prefers clean routes.
//
// A view either *owns* its per-edge vectors (the live monitor, tests) or
// *borrows* spans from a trace::ConditionTimeline cursor -- the playback
// hot path, where materializing vectors per interval would dominate the
// replay cost. Borrowed views carry an exact content fingerprint (the
// cursor's interval content id) that downstream decision caches use as a
// memoization key; views without one report kNoFingerprint and are never
// memoized.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "trace/condition_timeline.hpp"
#include "trace/trace.hpp"
#include "util/sim_time.hpp"

namespace dg::routing {

struct ViewParams {
  /// Loss rate at or above which a link is excluded from route
  /// computation entirely.
  double unusableLoss = 0.5;
  /// Loss rate above which a link is penalized in routing weights.
  double degradedLoss = 0.01;
  /// Weight multiplier: weight = latency * (1 + factor * lossRate) for
  /// degraded links.
  double lossPenaltyFactor = 10.0;

  bool operator==(const ViewParams&) const = default;
};

class NetworkView {
 public:
  /// Sentinel: this view has no content fingerprint (decision caches
  /// must not memoize by it).
  static constexpr std::uint64_t kNoFingerprint =
      static_cast<std::uint64_t>(-1);
  /// Fingerprint of the clean/baseline content of a trace (matches
  /// trace::ConditionIndex::kCleanContent). Fingerprints are comparable
  /// only between views of the same trace.
  static constexpr std::uint64_t kBaselineFingerprint = 0;

  /// View with every link at its healthy baseline (fingerprinted as the
  /// clean content).
  static NetworkView baseline(const trace::Trace& trace);

  /// View of one trace interval's measured conditions (owning; no
  /// fingerprint -- use borrowing() with a cursor for the memoizable
  /// fast path).
  static NetworkView atInterval(const trace::Trace& trace,
                                std::size_t interval);

  /// Non-owning view over a cursor's current arrays, fingerprinted with
  /// the interval's exact content id. The cursor must outlive the view
  /// and must not be re-seeked while the view is in use.
  static NetworkView borrowing(const trace::ConditionTimeline& cursor,
                               std::uint64_t fingerprint);

  /// Direct construction from per-edge vectors (used by the live monitor
  /// in dg::core, which aggregates its own measurements).
  NetworkView(std::vector<double> lossRates,
              std::vector<util::SimTime> latencies);

  std::size_t edgeCount() const { return lossRates_.size(); }
  double lossRate(graph::EdgeId e) const { return lossRates_[e]; }
  util::SimTime latency(graph::EdgeId e) const { return latencies_[e]; }
  std::span<const util::SimTime> latencies() const { return latencies_; }
  std::span<const double> lossRates() const { return lossRates_; }

  /// Exact content fingerprint, or kNoFingerprint when unknown. Equal
  /// fingerprints (within one trace) imply element-wise equal contents;
  /// unequal fingerprints imply nothing.
  std::uint64_t fingerprint() const { return fingerprint_; }
  bool hasFingerprint() const { return fingerprint_ != kNoFingerprint; }

  /// Weights for path selection under `params` (util::kNever = excluded).
  std::vector<util::SimTime> routingWeights(const ViewParams& params) const;
  /// Allocation-free variant: writes the weights into `out` (resized).
  void routingWeightsInto(const ViewParams& params,
                          std::vector<util::SimTime>& out) const;

 private:
  NetworkView(std::span<const double> lossRates,
              std::span<const util::SimTime> latencies,
              std::uint64_t fingerprint)
      : lossRates_(lossRates),
        latencies_(latencies),
        fingerprint_(fingerprint) {}

  void rebindSpans() {
    lossRates_ = ownedLossRates_;
    latencies_ = ownedLatencies_;
  }

  // Owning views keep their data here; borrowed views leave these empty.
  std::vector<double> ownedLossRates_;
  std::vector<util::SimTime> ownedLatencies_;
  // The accessor spans: into the owned vectors, or into a cursor's
  // arrays. Copying/moving an owning view must rebind them (see the
  // out-of-line copy/move operations).
  std::span<const double> lossRates_;
  std::span<const util::SimTime> latencies_;
  std::uint64_t fingerprint_ = kNoFingerprint;

 public:
  NetworkView(const NetworkView& other);
  NetworkView(NetworkView&& other) noexcept;
  NetworkView& operator=(const NetworkView& other);
  NetworkView& operator=(NetworkView&& other) noexcept;
  ~NetworkView() = default;
};

}  // namespace dg::routing
