#include "routing/problem_detector.hpp"

#include <algorithm>
#include <cmath>

namespace dg::routing {

ProblemDetector::ProblemDetector(const graph::Graph& graph,
                                 DetectorParams params)
    : graph_(&graph), params_(params), baseLatency_(graph.baseLatencies()) {}

std::vector<char> ProblemDetector::problematicEdges(
    const NetworkView& view) const {
  std::vector<char> flags(graph_->edgeCount(), 0);
  for (graph::EdgeId e = 0; e < graph_->edgeCount(); ++e) {
    const bool lossy = view.lossRate(e) >= params_.problemLoss;
    const bool slow =
        view.latency(e) >= baseLatency_[e] + params_.problemExtraLatency;
    flags[e] = (lossy || slow) ? 1 : 0;
  }
  return flags;
}

bool ProblemDetector::nodeProblem(const NetworkView& view,
                                  graph::NodeId node) const {
  return nodeProblem(problematicEdges(view), node);
}

bool ProblemDetector::nodeProblem(const std::vector<char>& edgeFlags,
                                  graph::NodeId node) const {
  // Count adjacent *undirected* links with a problem in either direction.
  int problematic = 0;
  int total = 0;
  for (const graph::EdgeId out : graph_->outEdges(node)) {
    ++total;
    bool bad = edgeFlags[out] != 0;
    if (const auto r = graph_->reverseEdge(out)) bad = bad || edgeFlags[*r];
    if (bad) ++problematic;
  }
  if (total == 0) return false;
  const int required = std::max(
      params_.nodeMinLinks,
      static_cast<int>(std::ceil(params_.nodeMinFraction * total)));
  return problematic >= required;
}

FlowProblem ProblemDetector::classify(const NetworkView& view,
                                      graph::NodeId src,
                                      graph::NodeId dst) const {
  const std::vector<char> flags = problematicEdges(view);
  FlowProblem problem;
  problem.source = nodeProblem(flags, src);
  problem.destination = nodeProblem(flags, dst);
  for (graph::EdgeId e = 0; e < graph_->edgeCount(); ++e) {
    if (!flags[e]) continue;
    const graph::Edge& edge = graph_->edge(e);
    const bool touchesEndpoint = edge.from == src || edge.to == src ||
                                 edge.from == dst || edge.to == dst;
    if (!touchesEndpoint) {
      problem.middle = true;
      break;
    }
  }
  return problem;
}

}  // namespace dg::routing
