// Chaos impairment backend for the live UDP transport: a netem-like
// shim (no root required) that replays a ChaosSchedule as real
// socket-layer drops and delays.
//
// Semantics deliberately mirror chaos::compileToTrace so the live soak
// is an honest differential against the simulator: the per-edge baseline
// is {residualLoss, geo latency} and every active fault's impairment is
// folded in with trace::combineConditions (losses compose as independent
// Bernoulli trials, latencies take the max). The daemon consults
// decide(edge, soakTime) immediately before each sendto(): a drop means
// the datagram is never sent, a delay holds it on an event-loop timer.
#pragma once

#include <cstdint>
#include <vector>

#include "chaos/schedule.hpp"
#include "graph/graph.hpp"
#include "trace/conditions.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace dg::live {

struct ImpairmentDecision {
  bool drop = false;
  /// Link traversal latency (propagation plus any active penalty); the
  /// sender holds the datagram this long before the real sendto().
  util::SimTime delay = 0;
};

class ImpairmentPlan {
 public:
  /// Captures the schedule against `graph`. `seed` drives the per-edge
  /// loss streams (each directed edge gets an independent fork).
  ImpairmentPlan(const graph::Graph& graph,
                 const chaos::ChaosSchedule& schedule, std::uint64_t seed,
                 double residualLoss = 1e-4);

  /// Effective conditions of a directed edge at soak time `t`: baseline
  /// folded with every fault active at `t` that covers the edge.
  trace::LinkConditions conditionsAt(graph::EdgeId edge,
                                     util::SimTime t) const;

  /// Samples the fate of one datagram about to traverse `edge` at `t`.
  /// Mutates the edge's deterministic loss stream.
  ImpairmentDecision decide(graph::EdgeId edge, util::SimTime t);

  double residualLoss() const { return residualLoss_; }
  /// The edge's unimpaired propagation latency (the baseline the shim
  /// always emulates; anything above it is a fault's doing).
  util::SimTime baselineLatency(graph::EdgeId edge) const {
    return baseline_[edge].latency;
  }

 private:
  struct CompiledFault {
    chaos::ChaosFault fault;
    std::vector<graph::EdgeId> edges;  ///< affected, ascending
    trace::LinkConditions impairment;
  };

  std::vector<trace::LinkConditions> baseline_;  // per directed edge
  std::vector<CompiledFault> faults_;
  mutable std::vector<util::Rng> edgeRngs_;
  double residualLoss_;
};

}  // namespace dg::live
