#include "live/fleet.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <stdexcept>
#include <system_error>

#include "net/packet.hpp"
#include "playback/playback.hpp"
#include "routing/network_view.hpp"
#include "trace/trace.hpp"

namespace dg::live {
namespace {

/// Drives the soak protocol from a coordinator socket on `loop`. Works
/// identically whether the daemons share the loop (in-process) or are
/// child processes: everything goes over UDP.
class FleetCoordinator {
 public:
  FleetCoordinator(EventLoop& loop, const FleetParams& params)
      : loop_(&loop), socket_(0), params_(&params) {}

  /// The coordinator's own port (bound at construction, so daemons can
  /// be configured with it before run()).
  std::uint16_t port() const { return socket_.localPort(); }

  /// Must be called before run(), once the daemons' ports are known.
  void setDaemonPorts(std::vector<std::uint16_t> ports) {
    daemonPorts_ = std::move(ports);
  }

  /// Runs the whole protocol; returns when the soak finished or a phase
  /// timed out. After it returns, converged()/completed()/replies() hold
  /// the outcome.
  void run() {
    loop_->addFd(socket_.fd(), [this] { onReadable(); });
    convergeDeadline_ = loop_->now() + params_->convergeTimeout;
    pollConverge();
    loop_->run();
    loop_->removeFd(socket_.fd());
  }

  bool converged() const { return converged_; }
  bool completed() const { return completed_; }
  const std::map<graph::NodeId, Message>& replies() const {
    return finalReplies_;
  }

 private:
  static constexpr std::uint32_t kConvergeToken = 1;
  static constexpr std::uint32_t kFinalToken = 2;

  void broadcast(const Message& message) {
    const std::vector<std::byte> bytes = encodeMessage(message);
    for (const std::uint16_t port : daemonPorts_) {
      socket_.sendTo(port, bytes);
    }
  }

  void requestStats(std::uint32_t token) {
    Message request;
    request.type = MessageType::StatsRequest;
    request.sender = graph::kInvalidNode;
    request.token = token;
    broadcast(request);
  }

  void pollConverge() {
    if (goSent_) return;
    if (loop_->now() >= convergeDeadline_) {
      finish();  // convergence timeout: converged_ stays false
      return;
    }
    requestStats(kConvergeToken);
    loop_->scheduleAfter(params_->statsPollInterval,
                         [this] { pollConverge(); });
  }

  void sendGo() {
    goSent_ = true;
    Message go;
    go.type = MessageType::Go;
    go.sender = graph::kInvalidNode;
    go.horizon = params_->schedule.horizon();
    broadcast(go);
    broadcast(go);  // once more for safety; daemons ignore the duplicate
    loop_->scheduleAfter(params_->schedule.horizon() + params_->drain,
                         [this] {
                           collectDeadline_ =
                               loop_->now() + params_->collectTimeout;
                           pollFinal();
                         });
  }

  void pollFinal() {
    if (completed_) return;
    if (loop_->now() >= collectDeadline_) {
      finish();  // collection timeout: completed_ stays false
      return;
    }
    requestStats(kFinalToken);
    loop_->scheduleAfter(params_->statsPollInterval, [this] { pollFinal(); });
  }

  void finish() {
    Message shutdown;
    shutdown.type = MessageType::Shutdown;
    shutdown.sender = graph::kInvalidNode;
    broadcast(shutdown);
    loop_->stop();
  }

  void onReadable() {
    socket_.drain([this](std::span<const std::byte> datagram) {
      const auto message = decodeMessage(datagram);
      if (!message || message->type != MessageType::StatsReply) return;
      handleReply(*message);
    });
  }

  void handleReply(const Message& reply) {
    const std::size_t fleetSize = daemonPorts_.size();
    if (reply.token == kConvergeToken && !goSent_) {
      if (reply.counters.membershipAlive + 1 >= fleetSize) {
        convergedNodes_.insert(reply.sender);
      }
      if (convergedNodes_.size() == fleetSize) {
        converged_ = true;
        sendGo();
      }
      return;
    }
    if (reply.token == kFinalToken && !completed_) {
      finalReplies_[reply.sender] = reply;
      if (finalReplies_.size() == fleetSize) {
        completed_ = true;
        finish();
      }
    }
  }

  EventLoop* loop_;
  UdpSocket socket_;
  std::vector<std::uint16_t> daemonPorts_;
  const FleetParams* params_;

  util::SimTime convergeDeadline_ = 0;
  util::SimTime collectDeadline_ = 0;
  bool goSent_ = false;
  bool converged_ = false;
  bool completed_ = false;
  std::set<graph::NodeId> convergedNodes_;
  std::map<graph::NodeId, Message> finalReplies_;
};

/// Folds the per-daemon StatsReply messages and the playback prediction
/// into the differential result.
FleetResult assembleResult(const FleetParams& params,
                           const FleetCoordinator& coordinator) {
  FleetResult result;
  result.converged = coordinator.converged();
  result.completed = coordinator.completed();

  std::map<net::FlowId, FlowStatsEntry> totals;
  for (const auto& [node, reply] : coordinator.replies()) {
    result.nodeCounters[node] = reply.counters;
    for (const FlowStatsEntry& entry : reply.flowStats) {
      FlowStatsEntry& total = totals[entry.flow];
      total.flow = entry.flow;
      total.sent += entry.sent;
      total.deliveredOnTime += entry.deliveredOnTime;
      total.deliveredLate += entry.deliveredLate;
      total.transmissions += entry.transmissions;
      total.latencySumUs += entry.latencySumUs;
    }
  }

  // Predicted side: the schedule compiled to a trace and replayed by the
  // playback model -- exactly the simulator differential's model half.
  const trace::Trace compiled = chaos::compileToTrace(
      params.schedule, params.topology, params.residualLoss);
  playback::PlaybackParams pb;
  pb.delivery.deadline = params.schemeParams.deadline;
  pb.delivery.packetInterval = params.packetInterval;
  pb.delivery.recoveryEnabled = params.recoveryEnabled;
  pb.mcSamples = params.mcSamples;
  pb.seed = params.playbackSeed;
  const playback::PlaybackEngine engine(params.topology.graph(), compiled,
                                        pb);

  result.flows.reserve(params.flows.size());
  for (std::size_t i = 0; i < params.flows.size(); ++i) {
    const FleetFlowSpec& spec = params.flows[i];
    const auto id = static_cast<net::FlowId>(i);
    const routing::Flow flow{params.topology.at(spec.source),
                             params.topology.at(spec.destination)};
    const playback::FlowSchemeResult predicted =
        engine.runRange(flow, spec.scheme, params.schemeParams, 0,
                        params.schedule.intervalCount());

    FleetFlowResult entry;
    entry.spec = spec;
    entry.id = id;
    entry.predictedUnavailability = predicted.unavailability;
    entry.predictedCost = predicted.averageCost;
    const auto it = totals.find(id);
    if (it != totals.end()) {
      const FlowStatsEntry& total = it->second;
      entry.sent = total.sent;
      entry.deliveredOnTime = total.deliveredOnTime;
      entry.deliveredLate = total.deliveredLate;
      entry.transmissions = total.transmissions;
      entry.liveUnavailability =
          total.sent == 0
              ? 1.0
              : 1.0 - static_cast<double>(total.deliveredOnTime) /
                          static_cast<double>(total.sent);
      entry.liveCost = total.sent == 0
                           ? 0.0
                           : static_cast<double>(total.transmissions) /
                                 static_cast<double>(total.sent);
    } else {
      entry.liveUnavailability = 1.0;
    }
    result.flows.push_back(std::move(entry));
  }
  return result;
}

LiveFlow makeLiveFlow(const FleetParams& params, std::size_t index) {
  const FleetFlowSpec& spec = params.flows[index];
  LiveFlow flow;
  flow.id = static_cast<net::FlowId>(index);
  flow.source = params.topology.at(spec.source);
  flow.destination = params.topology.at(spec.destination);
  flow.deadline = params.schemeParams.deadline;
  flow.graphMask =
      selectLiveGraphMask(params.topology, spec.scheme, flow.source,
                          flow.destination, params.schemeParams,
                          params.residualLoss);
  return flow;
}

std::string writeScratchFile(const std::string& workDir,
                             const std::string& name,
                             const std::string& contents) {
  const std::string path = workDir + "/" + name;
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("fleet: cannot write " + path);
  out << contents;
  out.close();
  if (!out) throw std::runtime_error("fleet: cannot write " + path);
  return path;
}

}  // namespace

std::uint64_t selectLiveGraphMask(const trace::Topology& topology,
                                  routing::SchemeKind scheme,
                                  graph::NodeId source,
                                  graph::NodeId destination,
                                  const routing::SchemeParams& schemeParams,
                                  double residualLoss) {
  switch (scheme) {
    case routing::SchemeKind::StaticSinglePath:
    case routing::SchemeKind::StaticTwoDisjoint:
    case routing::SchemeKind::TimeConstrainedFlooding:
      break;
    default:
      throw std::invalid_argument(
          std::string("live flows require a static scheme; '") +
          std::string(routing::schemeName(scheme)) +
          "' needs live monitoring, which the daemon does not run yet");
  }
  const graph::Graph& overlay = topology.graph();
  const std::vector<trace::LinkConditions> healthy =
      trace::healthyBaseline(overlay, residualLoss);
  std::vector<double> lossRates;
  std::vector<util::SimTime> latencies;
  lossRates.reserve(healthy.size());
  latencies.reserve(healthy.size());
  for (const trace::LinkConditions& c : healthy) {
    lossRates.push_back(c.lossRate);
    latencies.push_back(c.latency);
  }
  const routing::NetworkView baseline(std::move(lossRates),
                                      std::move(latencies));
  const std::unique_ptr<routing::RoutingScheme> instance = routing::makeScheme(
      scheme, overlay, routing::Flow{source, destination}, schemeParams);
  instance->initialize(baseline);
  return net::graphMaskOf(instance->select(baseline));
}

FleetResult runFleetInProcess(const FleetParams& params,
                              telemetry::Telemetry* telemetry) {
  const graph::Graph& overlay = params.topology.graph();
  const std::size_t fleetSize = params.topology.siteCount();

  EventLoop loop;
  FleetCoordinator coordinator(loop, params);

  std::vector<std::unique_ptr<Daemon>> daemons;
  std::vector<std::uint16_t> ports;
  daemons.reserve(fleetSize);
  for (std::size_t i = 0; i < fleetSize; ++i) {
    DaemonConfig config;
    config.node = static_cast<graph::NodeId>(i);
    config.port = 0;  // ephemeral
    config.coordinatorPort = coordinator.port();
    config.incarnation = 1;
    config.recoveryEnabled = params.recoveryEnabled;
    config.membership = params.membership;
    config.packetInterval = params.packetInterval;
    auto daemon = std::make_unique<Daemon>(loop, overlay, config);
    daemon->enableImpairment(params.schedule, params.impairmentSeed,
                             params.residualLoss);
    daemon->setTelemetry(telemetry);
    // The coordinator owns the shared loop's lifetime.
    daemon->onShutdown([] {});
    ports.push_back(daemon->port());
    daemons.push_back(std::move(daemon));
  }
  for (std::size_t i = 0; i < fleetSize; ++i) {
    for (std::size_t j = 0; j < fleetSize; ++j) {
      if (i == j) continue;
      daemons[i]->seedPeer(static_cast<graph::NodeId>(j), ports[j]);
    }
  }
  for (std::size_t f = 0; f < params.flows.size(); ++f) {
    const LiveFlow flow = makeLiveFlow(params, f);
    daemons[flow.source]->addFlow(flow);
  }
  for (const auto& daemon : daemons) daemon->start();

  coordinator.setDaemonPorts(ports);
  coordinator.run();

  for (const auto& daemon : daemons) {
    daemon->stop();
    if (telemetry != nullptr) daemon->exportTelemetry(*telemetry);
  }
  return assembleResult(params, coordinator);
}

FleetResult runFleetProcesses(const FleetParams& params,
                              telemetry::Telemetry* telemetry) {
  if (params.dgnetBinary.empty())
    throw std::invalid_argument("fleet: dgnetBinary is required for "
                                "multi-process mode");
  const std::size_t fleetSize = params.topology.siteCount();
  const std::string topologyPath = writeScratchFile(
      params.workDir, "fleet-topology.txt", params.topology.toString());
  const std::string schedulePath = writeScratchFile(
      params.workDir, "fleet-schedule.txt", params.schedule.toString());

  EventLoop loop;
  FleetCoordinator coordinator(loop, params);
  {
    std::vector<std::uint16_t> ports;
    for (std::size_t i = 0; i < fleetSize; ++i)
      ports.push_back(static_cast<std::uint16_t>(params.portBase + 1 + i));
    coordinator.setDaemonPorts(std::move(ports));
  }

  // One child per site: dgnet daemon --node=i ...
  std::vector<pid_t> children;
  for (std::size_t i = 0; i < fleetSize; ++i) {
    std::vector<std::string> args = {
        params.dgnetBinary,
        "daemon",
        "--node=" + std::to_string(i),
        "--port=" + std::to_string(params.portBase + 1 + i),
        "--port-base=" + std::to_string(params.portBase),
        "--coordinator-port=" + std::to_string(coordinator.port()),
        "--topology=" + topologyPath,
        "--schedule=" + schedulePath,
        "--seed=" + std::to_string(params.impairmentSeed),
        "--residual-loss=" + std::to_string(params.residualLoss),
        "--recovery=" + std::string(params.recoveryEnabled ? "1" : "0"),
        "--packet-interval-us=" + std::to_string(params.packetInterval),
        "--heartbeat-us=" +
            std::to_string(params.membership.heartbeatInterval),
        "--deadline-us=" + std::to_string(params.schemeParams.deadline),
    };
    // One joined argument: util::Config keeps a single value per key, so
    // repeated --flow= flags would collapse to the last one.
    std::string flowsArg;
    for (std::size_t f = 0; f < params.flows.size(); ++f) {
      const FleetFlowSpec& spec = params.flows[f];
      if (params.topology.at(spec.source) != static_cast<graph::NodeId>(i))
        continue;
      if (!flowsArg.empty()) flowsArg += ',';
      flowsArg += std::to_string(f) + ":" + spec.source + ":" +
                  spec.destination + ":" +
                  std::string(routing::schemeName(spec.scheme));
    }
    if (!flowsArg.empty()) args.push_back("--flows=" + flowsArg);
    const pid_t pid = fork();
    if (pid < 0)
      throw std::system_error(errno, std::generic_category(), "fork");
    if (pid == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      execv(argv[0], argv.data());
      _exit(127);  // exec failed
    }
    children.push_back(pid);
  }

  FleetResult result;
  try {
    coordinator.run();
    result = assembleResult(params, coordinator);
  } catch (...) {
    for (const pid_t pid : children) kill(pid, SIGKILL);
    for (const pid_t pid : children) waitpid(pid, nullptr, 0);
    throw;
  }

  // Shutdown was broadcast by the coordinator; reap, escalating to
  // SIGKILL for any child that ignores it.
  for (const pid_t pid : children) {
    int status = 0;
    for (int attempt = 0;; ++attempt) {
      const pid_t done = waitpid(pid, &status, WNOHANG);
      if (done == pid || done < 0) break;
      if (attempt >= 200) {  // ~2 s of patience
        kill(pid, SIGKILL);
        waitpid(pid, &status, 0);
        break;
      }
      usleep(10000);
    }
  }
  (void)telemetry;  // child-process counters arrive via StatsReply only
  return result;
}

}  // namespace dg::live
