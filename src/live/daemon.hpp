// The live overlay daemon: one UDP socket, one LiveNode, membership and
// an optional chaos impairment shim, wired onto an EventLoop.
//
// Lifecycle (driven by a fleet coordinator over the same socket):
//   1. start(): joins the loop, begins heartbeating seeded peers.
//   2. Go: fixes the soak epoch and starts originating configured flows
//      every packetInterval until the horizon.
//   3. StatsRequest -> StatsReply: counters + per-flow delivery stats.
//   4. Shutdown: invokes the shutdown hook (default: stop the loop).
//
// The impairment shim sits on the *send* side: immediately before a
// datagram would leave on an overlay edge, the plan is consulted at
// current soak time -- a drop means no sendto() ever happens, and the
// link latency holds the datagram on a loop timer (loopback itself is
// ~free, so the shim IS the emulated propagation delay). Membership and
// control datagrams bypass the shim: they are the management plane.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "chaos/schedule.hpp"
#include "graph/graph.hpp"
#include "live/event_loop.hpp"
#include "live/impairment.hpp"
#include "live/live_node.hpp"
#include "live/membership.hpp"
#include "live/udp.hpp"
#include "live/wire.hpp"
#include "telemetry/telemetry.hpp"

namespace dg::live {

struct DaemonConfig {
  graph::NodeId node = graph::kInvalidNode;
  /// UDP port to bind (0 = kernel-assigned; read back via port()).
  std::uint16_t port = 0;
  /// Where StatsReply datagrams go (the coordinator's port).
  std::uint16_t coordinatorPort = 0;
  /// Bumped across restarts so peers can tell a restart from lag.
  std::uint64_t incarnation = 1;
  bool recoveryEnabled = false;
  std::size_t sendBufferPackets = 64;
  MembershipConfig membership;
  /// Origination cadence of this daemon's configured flows.
  util::SimTime packetInterval = util::milliseconds(5);
};

class Daemon : public LiveNodeSender {
 public:
  /// `overlay` must outlive the daemon. Binds the socket immediately;
  /// throws std::system_error when the port is taken.
  Daemon(EventLoop& loop, const graph::Graph& overlay, DaemonConfig config);

  graph::NodeId nodeId() const { return config_.node; }
  std::uint16_t port() const { return socket_.localPort(); }

  /// Replays `schedule` as socket-layer drops/delays, seeded per edge.
  void enableImpairment(const chaos::ChaosSchedule& schedule,
                        std::uint64_t seed, double residualLoss = 1e-4);

  /// Registers a flow this daemon originates after Go (flow.source must
  /// be this node).
  void addFlow(const LiveFlow& flow);

  /// Seeds a peer's address (static fleet configuration).
  void seedPeer(graph::NodeId peer, std::uint16_t peerPort);

  /// Joins the event loop and starts heartbeating.
  void start();
  /// Sends Bye to every peer and leaves the loop.
  void stop();

  /// Discovery hooks, forwarded from membership (the daemon also records
  /// telemetry churn events on these transitions).
  void onDiscover(Membership::PeerCallback callback) {
    userOnDiscover_ = std::move(callback);
  }
  void onDisappear(Membership::PeerCallback callback) {
    userOnDisappear_ = std::move(callback);
  }
  /// Invoked on a Shutdown datagram; defaults to stopping the loop.
  void onShutdown(std::function<void()> callback) {
    onShutdown_ = std::move(callback);
  }

  /// Attaches telemetry (nullable): membership churn trace events are
  /// recorded live; exportTelemetry() publishes the counter totals.
  void setTelemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
  }
  /// Publishes this daemon's counters into the registry under
  /// dg_live_* names labeled with the node id.
  void exportTelemetry(telemetry::Telemetry& telemetry) const;

  /// Aggregate counter snapshot (daemon + node + membership + loop).
  DaemonCounters counters() const;
  const Membership& membership() const { return membership_; }
  const LiveNode& node() const { return node_; }
  bool goReceived() const { return goReceived_; }

  /// Ascending-flow-id stats entries, exactly as a StatsReply carries.
  std::vector<FlowStatsEntry> flowStatsEntries() const;

  // LiveNodeSender: overlay-edge messages go through the impairment shim.
  void sendOnEdge(graph::EdgeId edge, const Message& message) override;

 private:
  struct FlowState {
    LiveFlow flow;
    net::SequenceNumber nextSequence = 0;
    util::SimTime nextDue = 0;  ///< soak time of the next origination
  };

  util::SimTime soakNow() const { return loop_->now() - soakStart_; }
  void onReadable();
  void dispatch(const Message& message);
  void handleGo(const Message& message);
  void handleShutdown();
  void sendStatsReply(std::uint32_t token);
  void originateTick(std::size_t flowIndex);
  void heartbeatTick();
  void transmit(std::uint16_t peerPort, const std::vector<std::byte>& bytes);
  /// Direct (unimpaired) management-plane send to a peer node.
  void sendControl(graph::NodeId peer, const Message& message);

  EventLoop* loop_;
  const graph::Graph* overlay_;
  DaemonConfig config_;
  UdpSocket socket_;
  Membership membership_;
  LiveNode node_;
  std::unique_ptr<ImpairmentPlan> impairment_;
  std::vector<FlowState> flows_;

  bool started_ = false;
  bool goReceived_ = false;
  /// Loop time of the soak epoch; -1 until the soak has started.
  util::SimTime soakStart_ = -1;
  util::SimTime horizon_ = 0;
  std::uint32_t helloSeq_ = 0;

  DaemonCounters counters_;  ///< socket/decode/impairment counters only

  Membership::PeerCallback userOnDiscover_;
  Membership::PeerCallback userOnDisappear_;
  std::function<void()> onShutdown_;
  telemetry::Telemetry* telemetry_ = nullptr;
};

}  // namespace dg::live
