#include "live/event_loop.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <system_error>

#include "util/wall_clock.hpp"

namespace dg::live {

EventLoop::EventLoop()
    : epochMicros_(util::nowMicros()), wheel_(kWheelSlots) {
  epollFd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epollFd_ < 0)
    throw std::system_error(errno, std::generic_category(), "epoll_create1");
}

EventLoop::~EventLoop() {
  if (epollFd_ >= 0) close(epollFd_);
}

util::SimTime EventLoop::now() const {
  return util::nowMicros() - epochMicros_;
}

void EventLoop::addFd(int fd, FdHandler onReadable) {
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = fd;
  if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &event) != 0)
    throw std::system_error(errno, std::generic_category(), "epoll_ctl(add)");
  fdHandlers_[fd] = std::move(onReadable);
}

void EventLoop::removeFd(int fd) {
  if (fdHandlers_.erase(fd) == 0) return;
  epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
}

TimerId EventLoop::scheduleAt(util::SimTime due, TimerHandler fn) {
  const TimerId id = nextTimerId_++;
  due = std::max(due, now());
  wheel_[slotOf(due)].push_back(TimerEntry{due, id, std::move(fn)});
  ++pendingTimers_;
  return id;
}

TimerId EventLoop::scheduleAfter(util::SimTime delay, TimerHandler fn) {
  return scheduleAt(now() + std::max<util::SimTime>(delay, 0), std::move(fn));
}

void EventLoop::cancelTimer(TimerId id) { cancelled_.insert(id); }

util::SimTime EventLoop::nextDue() const {
  // The wheel holds few entries (heartbeats, delayed datagrams, the soak
  // horizon), so a full scan beats maintaining a separate heap.
  util::SimTime best = -1;
  for (const auto& slot : wheel_)
    for (const TimerEntry& entry : slot)
      if (!cancelled_.contains(entry.id) && (best < 0 || entry.due < best))
        best = entry.due;
  return best;
}

void EventLoop::fireDueTimers(util::SimTime upTo) {
  // Collect due entries first: handlers may schedule new timers, which
  // must not be fired (or invalidated) inside this sweep.
  std::vector<TimerEntry> due;
  for (auto& slot : wheel_) {
    auto it = slot.begin();
    while (it != slot.end()) {
      if (cancelled_.contains(it->id)) {
        cancelled_.erase(it->id);
        --pendingTimers_;
        it = slot.erase(it);
      } else if (it->due <= upTo) {
        due.push_back(std::move(*it));
        --pendingTimers_;
        it = slot.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::sort(due.begin(), due.end(), [](const TimerEntry& a,
                                       const TimerEntry& b) {
    return a.due != b.due ? a.due < b.due : a.id < b.id;
  });
  for (TimerEntry& entry : due) {
    ++timersFired_;
    entry.fn();
    if (stopped_) return;
  }
}

void EventLoop::pollOnce(util::SimTime deadline) {
  util::SimTime waitUntil = deadline;
  const util::SimTime due = nextDue();
  if (due >= 0 && (waitUntil < 0 || due < waitUntil)) waitUntil = due;

  int timeoutMs = -1;  // block until an fd is readable
  if (waitUntil >= 0) {
    const util::SimTime gap = waitUntil - now();
    // Ceil to ms so we never wake before the earliest timer is due.
    timeoutMs = gap <= 0 ? 0 : static_cast<int>((gap + 999) / 1000);
  }

  epoll_event events[16];
  const int n = epoll_wait(epollFd_, events, 16, timeoutMs);
  ++wakeups_;
  if (n < 0) {
    if (errno == EINTR) return;
    throw std::system_error(errno, std::generic_category(), "epoll_wait");
  }
  for (int i = 0; i < n && !stopped_; ++i) {
    const auto it = fdHandlers_.find(events[i].data.fd);
    if (it == fdHandlers_.end()) continue;
    // Copy so a handler that removes its own fd cannot destroy the
    // std::function it is executing from.
    const FdHandler handler = it->second;
    handler();
  }
  if (!stopped_) fireDueTimers(now());
}

void EventLoop::run() {
  stopped_ = false;
  while (!stopped_) pollOnce(-1);
}

void EventLoop::runUntil(util::SimTime deadline) {
  stopped_ = false;
  while (!stopped_ && now() < deadline) pollOnce(deadline);
}

}  // namespace dg::live
