#include "live/wire.hpp"

#include <stdexcept>

namespace dg::live {
namespace {

// Node and edge ids travel as 16-bit values; the invalid sentinels map
// to 0xFFFF. Overlays here are tens of nodes, far below the cap.
constexpr std::uint16_t kInvalidId16 = 0xFFFF;

void put8(std::vector<std::byte>& out, std::uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}
void put16(std::vector<std::byte>& out, std::uint16_t v) {
  put8(out, static_cast<std::uint8_t>(v & 0xFF));
  put8(out, static_cast<std::uint8_t>(v >> 8));
}
void put32(std::vector<std::byte>& out, std::uint32_t v) {
  put16(out, static_cast<std::uint16_t>(v & 0xFFFF));
  put16(out, static_cast<std::uint16_t>(v >> 16));
}
void put64(std::vector<std::byte>& out, std::uint64_t v) {
  put32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFULL));
  put32(out, static_cast<std::uint32_t>(v >> 32));
}
void putI64(std::vector<std::byte>& out, std::int64_t v) {
  put64(out, static_cast<std::uint64_t>(v));
}

std::uint16_t nodeToWire(graph::NodeId id) {
  if (id == graph::kInvalidNode) return kInvalidId16;
  if (id >= kInvalidId16)
    throw std::length_error("wire: node id exceeds 16-bit wire width");
  return static_cast<std::uint16_t>(id);
}
std::uint16_t edgeToWire(graph::EdgeId id) {
  if (id == graph::kInvalidEdge) return kInvalidId16;
  if (id >= kInvalidId16)
    throw std::length_error("wire: edge id exceeds 16-bit wire width");
  return static_cast<std::uint16_t>(id);
}
graph::NodeId nodeFromWire(std::uint16_t v) {
  return v == kInvalidId16 ? graph::kInvalidNode
                           : static_cast<graph::NodeId>(v);
}
graph::EdgeId edgeFromWire(std::uint16_t v) {
  return v == kInvalidId16 ? graph::kInvalidEdge
                           : static_cast<graph::EdgeId>(v);
}

/// Bounds-checked sequential reader over one datagram.
class Cursor {
 public:
  explicit Cursor(std::span<const std::byte> bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return bytes_.size() - offset_; }

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(bytes_[offset_++]);
  }
  std::uint16_t u16() {
    const std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(u8())
                                            << 8));
  }
  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    return lo | (static_cast<std::uint32_t>(u16()) << 16);
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

 private:
  bool need(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    return true;
  }
  std::span<const std::byte> bytes_;
  std::size_t offset_ = 0;
  bool ok_ = true;
};

std::optional<Message> failDecode(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return std::nullopt;
}

void encodeDataBody(std::vector<std::byte>& out, const Message& m) {
  put16(out, edgeToWire(m.edge));
  put32(out, m.flow);
  put64(out, m.sequence);
  putI64(out, m.originTime);
  putI64(out, m.deadline);
  put64(out, m.graphMask);
  put16(out, nodeToWire(m.source));
  put16(out, nodeToWire(m.destination));
}

void decodeDataBody(Cursor& in, Message& m) {
  m.edge = edgeFromWire(in.u16());
  m.flow = in.u32();
  m.sequence = in.u64();
  m.originTime = in.i64();
  m.deadline = in.i64();
  m.graphMask = in.u64();
  m.source = nodeFromWire(in.u16());
  m.destination = nodeFromWire(in.u16());
}

void encodeCounters(std::vector<std::byte>& out, const DaemonCounters& c) {
  put64(out, c.socketSends);
  put64(out, c.socketReceives);
  put64(out, c.decodeErrors);
  put64(out, c.impairmentDrops);
  put64(out, c.impairmentDelays);
  put64(out, c.duplicatesDropped);
  put64(out, c.expiredDropped);
  put64(out, c.nacksSent);
  put64(out, c.retransmissionsSent);
  put64(out, c.nackRecoveries);
  put64(out, c.membershipDiscoveries);
  put64(out, c.membershipDisappearances);
  put64(out, c.eventLoopWakeups);
  put64(out, c.timersFired);
  put32(out, c.membershipAlive);
}

void decodeCounters(Cursor& in, DaemonCounters& c) {
  c.socketSends = in.u64();
  c.socketReceives = in.u64();
  c.decodeErrors = in.u64();
  c.impairmentDrops = in.u64();
  c.impairmentDelays = in.u64();
  c.duplicatesDropped = in.u64();
  c.expiredDropped = in.u64();
  c.nacksSent = in.u64();
  c.retransmissionsSent = in.u64();
  c.nackRecoveries = in.u64();
  c.membershipDiscoveries = in.u64();
  c.membershipDisappearances = in.u64();
  c.eventLoopWakeups = in.u64();
  c.timersFired = in.u64();
  c.membershipAlive = in.u32();
}

}  // namespace

std::string_view messageTypeName(MessageType type) {
  switch (type) {
    case MessageType::Data: return "data";
    case MessageType::Retransmission: return "retransmission";
    case MessageType::Nack: return "nack";
    case MessageType::Hello: return "hello";
    case MessageType::Bye: return "bye";
    case MessageType::Go: return "go";
    case MessageType::StatsRequest: return "stats-request";
    case MessageType::StatsReply: return "stats-reply";
    case MessageType::Shutdown: return "shutdown";
  }
  return "unknown";
}

// dgcheck: cold: per-send serialization into a scratch buffer; UDP syscall cost dominates and sends are paced by the packet interval
std::vector<std::byte> encodeMessage(const Message& m) {
  std::vector<std::byte> out;
  out.reserve(64);
  put16(out, kWireMagic);
  put8(out, kWireVersion);
  put8(out, static_cast<std::uint8_t>(m.type));
  put16(out, nodeToWire(m.sender));

  switch (m.type) {
    case MessageType::Data:
    case MessageType::Retransmission:
      encodeDataBody(out, m);
      break;
    case MessageType::Nack: {
      if (m.nackSequences.size() > kMaxNackSequences)
        throw std::length_error("wire: too many NACK sequences");
      put16(out, edgeToWire(m.edge));
      put32(out, m.flow);
      put16(out, static_cast<std::uint16_t>(m.nackSequences.size()));
      for (const net::SequenceNumber seq : m.nackSequences) put64(out, seq);
      break;
    }
    case MessageType::Hello:
    case MessageType::Bye:
      put64(out, m.incarnation);
      put32(out, m.helloSeq);
      break;
    case MessageType::Go:
      putI64(out, m.horizon);
      put32(out, m.token);
      break;
    case MessageType::StatsRequest:
    case MessageType::Shutdown:
      put32(out, m.token);
      break;
    case MessageType::StatsReply: {
      if (m.flowStats.size() > kMaxFlowStats)
        throw std::length_error("wire: too many flow-stat entries");
      put32(out, m.token);
      encodeCounters(out, m.counters);
      put16(out, static_cast<std::uint16_t>(m.flowStats.size()));
      for (const FlowStatsEntry& entry : m.flowStats) {
        put32(out, entry.flow);
        put64(out, entry.sent);
        put64(out, entry.deliveredOnTime);
        put64(out, entry.deliveredLate);
        put64(out, entry.transmissions);
        put64(out, entry.latencySumUs);
      }
      break;
    }
  }
  return out;
}

std::optional<Message> decodeMessage(std::span<const std::byte> datagram,
                                     std::string* error) {
  Cursor in(datagram);
  const std::uint16_t magic = in.u16();
  const std::uint8_t version = in.u8();
  const std::uint8_t rawType = in.u8();
  const std::uint16_t sender = in.u16();
  if (!in.ok())
    return failDecode(error, "datagram shorter than the 6-byte header");
  if (magic != kWireMagic) return failDecode(error, "bad wire magic");
  if (version != kWireVersion)
    return failDecode(error,
                      "unsupported wire version " + std::to_string(version));
  if (rawType < static_cast<std::uint8_t>(MessageType::Data) ||
      rawType > static_cast<std::uint8_t>(MessageType::Shutdown))
    return failDecode(error,
                      "unknown message type " + std::to_string(rawType));

  Message m;
  m.type = static_cast<MessageType>(rawType);
  m.sender = nodeFromWire(sender);

  switch (m.type) {
    case MessageType::Data:
    case MessageType::Retransmission:
      decodeDataBody(in, m);
      break;
    case MessageType::Nack: {
      m.edge = edgeFromWire(in.u16());
      m.flow = in.u32();
      const std::uint16_t count = in.u16();
      if (in.ok() && count > kMaxNackSequences)
        return failDecode(error, "NACK sequence list exceeds cap");
      if (in.ok() && in.remaining() < static_cast<std::size_t>(count) * 8)
        return failDecode(error, "truncated NACK sequence list");
      m.nackSequences.reserve(count);
      for (std::uint16_t i = 0; in.ok() && i < count; ++i)
        m.nackSequences.push_back(in.u64());
      break;
    }
    case MessageType::Hello:
    case MessageType::Bye:
      m.incarnation = in.u64();
      m.helloSeq = in.u32();
      break;
    case MessageType::Go:
      m.horizon = in.i64();
      m.token = in.u32();
      break;
    case MessageType::StatsRequest:
    case MessageType::Shutdown:
      m.token = in.u32();
      break;
    case MessageType::StatsReply: {
      m.token = in.u32();
      decodeCounters(in, m.counters);
      const std::uint16_t count = in.u16();
      if (in.ok() && count > kMaxFlowStats)
        return failDecode(error, "flow-stat list exceeds cap");
      if (in.ok() && in.remaining() < static_cast<std::size_t>(count) * 44)
        return failDecode(error, "truncated flow-stat list");
      m.flowStats.reserve(count);
      for (std::uint16_t i = 0; in.ok() && i < count; ++i) {
        FlowStatsEntry entry;
        entry.flow = in.u32();
        entry.sent = in.u64();
        entry.deliveredOnTime = in.u64();
        entry.deliveredLate = in.u64();
        entry.transmissions = in.u64();
        entry.latencySumUs = in.u64();
        m.flowStats.push_back(entry);
      }
      break;
    }
  }
  if (!in.ok())
    return failDecode(error, "truncated " +
                                 std::string(messageTypeName(m.type)) +
                                 " body");
  if (in.remaining() != 0)
    return failDecode(error,
                      std::to_string(in.remaining()) +
                          " trailing bytes after " +
                          std::string(messageTypeName(m.type)) + " body");
  return m;
}

}  // namespace dg::live
