// Wire format of the live overlay daemon ("Spines-lite").
//
// Every UDP datagram carries exactly one Message, encoded little-endian
// with fixed-width fields behind a 6-byte header (magic, version, type,
// sender). Three families share the format:
//   - edge messages (Data / Retransmission / Nack) travel along one
//     directed overlay edge and carry everything an intermediate node
//     needs to forward statelessly: the flow id, the stamped
//     dissemination-graph mask, the flow endpoints and the deadline --
//     the live analogue of net::Packet's stamped (distributed) mode;
//   - membership messages (Hello / Bye) implement join, heartbeat and
//     graceful leave;
//   - control messages (Go / StatsRequest / StatsReply / Shutdown) are
//     the fleet coordinator's soak protocol.
//
// Decoding is strict: every read is bounds-checked, unknown versions and
// types are rejected, list lengths are capped, and trailing bytes are an
// error -- a truncated or corrupted datagram never yields a Message.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "net/packet.hpp"
#include "util/sim_time.hpp"

namespace dg::live {

inline constexpr std::uint16_t kWireMagic = 0x4744;  // "DG" little-endian
inline constexpr std::uint8_t kWireVersion = 1;

/// Hard cap on sequences per Nack (bounds datagram size; the recovery
/// path re-requests anything beyond the cap on the next gap).
inline constexpr std::size_t kMaxNackSequences = 256;
/// Hard cap on per-flow stat entries in a StatsReply.
inline constexpr std::size_t kMaxFlowStats = 128;

enum class MessageType : std::uint8_t {
  Data = 1,         ///< application payload, flooded on the stamped graph
  Retransmission,   ///< per-hop recovery copy of a Data message
  Nack,             ///< per-hop recovery request (missing sequences)
  Hello,            ///< membership join / heartbeat
  Bye,              ///< graceful leave
  Go,               ///< coordinator: start the soak clock
  StatsRequest,     ///< coordinator: report your counters
  StatsReply,       ///< daemon: counter snapshot
  Shutdown,         ///< coordinator: exit after this datagram
};

/// Canonical lowercase-kebab type name ("data", "stats-reply", ...).
std::string_view messageTypeName(MessageType type);

/// One flow's delivery counters inside a StatsReply. Source daemons fill
/// sent/transmissions, destination daemons fill the delivery fields; the
/// coordinator sums entries across the fleet per flow id.
struct FlowStatsEntry {
  net::FlowId flow = 0;
  std::uint64_t sent = 0;
  std::uint64_t deliveredOnTime = 0;
  std::uint64_t deliveredLate = 0;
  std::uint64_t transmissions = 0;
  /// Sum of end-to-end latencies of delivered packets, microseconds.
  std::uint64_t latencySumUs = 0;

  bool operator==(const FlowStatsEntry&) const = default;
};

/// Daemon-level counters inside a StatsReply (the live telemetry set,
/// serialized so the coordinator can aggregate a multi-process fleet).
struct DaemonCounters {
  std::uint64_t socketSends = 0;
  std::uint64_t socketReceives = 0;
  std::uint64_t decodeErrors = 0;
  std::uint64_t impairmentDrops = 0;
  std::uint64_t impairmentDelays = 0;
  std::uint64_t duplicatesDropped = 0;
  std::uint64_t expiredDropped = 0;
  std::uint64_t nacksSent = 0;
  std::uint64_t retransmissionsSent = 0;
  std::uint64_t nackRecoveries = 0;
  std::uint64_t membershipDiscoveries = 0;
  std::uint64_t membershipDisappearances = 0;
  std::uint64_t eventLoopWakeups = 0;
  std::uint64_t timersFired = 0;
  std::uint32_t membershipAlive = 0;

  bool operator==(const DaemonCounters&) const = default;
};

/// One live-overlay message. Like net::Packet this is a single struct
/// with per-type fields (unused fields stay at their defaults and are
/// not serialized), which keeps encode/decode round-trip testing simple.
struct Message {
  MessageType type = MessageType::Data;
  /// Originating node of this datagram (all types).
  graph::NodeId sender = graph::kInvalidNode;

  // --- Edge messages (Data / Retransmission / Nack) -------------------
  /// Directed overlay edge the datagram traverses.
  graph::EdgeId edge = graph::kInvalidEdge;
  net::FlowId flow = 0;
  net::SequenceNumber sequence = 0;
  /// Soak-relative time the packet entered the overlay at the source.
  util::SimTime originTime = 0;
  /// One-way delivery deadline, carried in-band so intermediate nodes
  /// need no per-flow configuration (Data / Retransmission).
  util::SimTime deadline = 0;
  /// Stamped dissemination graph (bit e = directed edge e is a member).
  std::uint64_t graphMask = 0;
  /// Flow endpoints (Data / Retransmission).
  graph::NodeId source = graph::kInvalidNode;
  graph::NodeId destination = graph::kInvalidNode;
  /// Missing sequences requested (Nack).
  std::vector<net::SequenceNumber> nackSequences;

  // --- Membership (Hello / Bye) ---------------------------------------
  /// Process incarnation: increases across daemon restarts so peers can
  /// tell a restart from a late heartbeat.
  std::uint64_t incarnation = 0;
  std::uint32_t helloSeq = 0;

  // --- Control (Go / StatsRequest / StatsReply / Shutdown) ------------
  /// Soak horizon (Go): flows originate for [0, horizon) of soak time.
  util::SimTime horizon = 0;
  /// Coordinator token, echoed by StatsReply.
  std::uint32_t token = 0;
  DaemonCounters counters;                 // StatsReply
  std::vector<FlowStatsEntry> flowStats;   // StatsReply, ascending flow id

  bool operator==(const Message&) const = default;
};

/// Serializes a message. Throws std::length_error when a list exceeds
/// its cap or a node/edge id does not fit the wire width (16 bit).
std::vector<std::byte> encodeMessage(const Message& message);

/// Parses one datagram. Returns std::nullopt and sets `error` (when
/// non-null) on any malformed input: short header, bad magic, unknown
/// version or type, truncated body, over-cap list, trailing bytes.
std::optional<Message> decodeMessage(std::span<const std::byte> datagram,
                                     std::string* error = nullptr);

}  // namespace dg::live
