#include "live/impairment.hpp"

#include <algorithm>

namespace dg::live {

ImpairmentPlan::ImpairmentPlan(const graph::Graph& graph,
                               const chaos::ChaosSchedule& schedule,
                               std::uint64_t seed, double residualLoss)
    : residualLoss_(residualLoss) {
  baseline_.reserve(graph.edgeCount());
  for (graph::EdgeId e = 0; e < graph.edgeCount(); ++e)
    baseline_.push_back(
        trace::LinkConditions{residualLoss, graph.edge(e).latency});

  for (const chaos::ChaosFault& fault : schedule.faults()) {
    if (!fault.impairsConditions()) continue;
    faults_.push_back(CompiledFault{fault, chaos::affectedEdges(fault, graph),
                                    chaos::impairmentOf(fault)});
  }

  util::Rng master(seed);
  edgeRngs_.reserve(graph.edgeCount());
  for (graph::EdgeId e = 0; e < graph.edgeCount(); ++e)
    edgeRngs_.push_back(master.fork());
}

trace::LinkConditions ImpairmentPlan::conditionsAt(graph::EdgeId edge,
                                                   util::SimTime t) const {
  trace::LinkConditions conditions = baseline_[edge];
  for (const CompiledFault& compiled : faults_) {
    if (!chaos::faultActiveAt(compiled.fault, t)) continue;
    if (!std::binary_search(compiled.edges.begin(), compiled.edges.end(),
                            edge))
      continue;
    conditions = trace::combineConditions(conditions, compiled.impairment);
  }
  return conditions;
}

ImpairmentDecision ImpairmentPlan::decide(graph::EdgeId edge,
                                          util::SimTime t) {
  const trace::LinkConditions conditions = conditionsAt(edge, t);
  ImpairmentDecision decision;
  decision.drop = edgeRngs_[edge].bernoulli(conditions.lossRate);
  decision.delay = conditions.latency;
  return decision;
}

}  // namespace dg::live
