// The live overlay forwarding engine: dissemination-graph flooding with
// duplicate suppression plus the per-hop NACK recovery protocol, ported
// from core::OverlayNode onto real messages and a wall-clock timeline.
//
// Differences from the simulated node are strictly mechanical:
//   - packets are live::Message datagrams instead of net::Packet, and
//     leave through a LiveNodeSender instead of net::SimulatedNetwork;
//   - time is an explicit `now` argument (the daemon passes soak time);
//   - flow metadata (deadline, endpoints, graph mask) travels in-band,
//     so intermediate nodes need no flow directory -- only stamped
//     (distributed) mode exists live;
//   - state lives in std::map (src/live/ is dglint ordered scope).
// The forwarding rule, duplicate suppression, expiry check, no-echo
// rule, gap detection and retransmission buffering are line-for-line
// the simulator's semantics -- that is what makes the live-vs-model
// differential meaningful.
#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "core/sequence_window.hpp"
#include "graph/graph.hpp"
#include "live/wire.hpp"
#include "net/packet.hpp"
#include "util/sim_time.hpp"

namespace dg::live {

/// Where the node's outbound messages go. The daemon's implementation
/// serializes onto UDP (through the impairment shim); tests use an
/// in-memory fan-out.
class LiveNodeSender {
 public:
  virtual ~LiveNodeSender() = default;
  /// `message.edge` is the directed overlay edge to traverse.
  virtual void sendOnEdge(graph::EdgeId edge, const Message& message) = 0;
};

/// A flow this node originates: metadata stamped into every packet.
struct LiveFlow {
  net::FlowId id = 0;
  graph::NodeId source = graph::kInvalidNode;
  graph::NodeId destination = graph::kInvalidNode;
  util::SimTime deadline = 0;
  /// Dissemination graph as an edge bitmask (net::graphMaskOf).
  std::uint64_t graphMask = 0;
};

struct LiveNodeConfig {
  bool recoveryEnabled = true;
  /// Retransmission buffer per (out-edge, flow), in packets.
  std::size_t sendBufferPackets = 64;
};

class LiveNode {
 public:
  LiveNode(graph::NodeId id, const graph::Graph& overlay,
           LiveNodeSender& sender, LiveNodeConfig config = {});

  graph::NodeId id() const { return id_; }

  /// Injects a fresh data packet (this node must be the flow source).
  void originate(const LiveFlow& flow, net::SequenceNumber sequence,
                 util::SimTime now);

  /// Entry point for received edge messages (Data / Retransmission /
  /// Nack); other message types are ignored. `now` is soak time.
  void handleMessage(const Message& message, util::SimTime now);

  /// Per-flow delivery stats observed at this node (sent at the source,
  /// deliveries at the destination, transmissions everywhere), keyed by
  /// flow id -- exactly the StatsReply payload.
  const std::map<net::FlowId, FlowStatsEntry>& flowStats() const {
    return flowStats_;
  }

  std::uint64_t duplicatesDropped() const { return duplicatesDropped_; }
  std::uint64_t expiredDropped() const { return expiredDropped_; }
  std::uint64_t nacksSent() const { return nacksSent_; }
  std::uint64_t retransmissionsSent() const { return retransmissionsSent_; }
  /// Retransmissions that arrived as the first (useful) copy.
  std::uint64_t nackRecoveries() const { return nackRecoveries_; }

 private:
  struct ReceiveState {
    net::SequenceNumber expected = 0;
    core::SequenceWindow requested{1024};  ///< each gap NACKed at most once
  };
  struct SendBuffer {
    std::deque<Message> packets;
  };
  static std::uint64_t key(graph::EdgeId edge, net::FlowId flow) {
    return (static_cast<std::uint64_t>(edge) << 32) | flow;
  }

  FlowStatsEntry& statsFor(net::FlowId flow);
  void handleData(const Message& message, util::SimTime now);
  void handleNack(const Message& message, util::SimTime now);
  void forward(const Message& message, graph::EdgeId arrivalEdge,
               util::SimTime now);
  void noteSequenceForRecovery(const Message& message, util::SimTime now);
  void bufferForRetransmit(graph::EdgeId outEdge, const Message& message);

  graph::NodeId id_;
  const graph::Graph* overlay_;
  LiveNodeSender* sender_;
  LiveNodeConfig config_;

  std::map<net::FlowId, core::SequenceWindow> seen_;
  std::map<std::uint64_t, ReceiveState> receive_;
  std::map<std::uint64_t, SendBuffer> sendBuffers_;
  std::map<net::FlowId, FlowStatsEntry> flowStats_;

  std::uint64_t duplicatesDropped_ = 0;
  std::uint64_t expiredDropped_ = 0;
  std::uint64_t nacksSent_ = 0;
  std::uint64_t retransmissionsSent_ = 0;
  std::uint64_t nackRecoveries_ = 0;
};

}  // namespace dg::live
