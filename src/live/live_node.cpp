#include "live/live_node.hpp"

#include <algorithm>

namespace dg::live {

LiveNode::LiveNode(graph::NodeId id, const graph::Graph& overlay,
                   LiveNodeSender& sender, LiveNodeConfig config)
    : id_(id), overlay_(&overlay), sender_(&sender), config_(config) {}

FlowStatsEntry& LiveNode::statsFor(net::FlowId flow) {
  FlowStatsEntry& entry = flowStats_[flow];
  entry.flow = flow;
  return entry;
}

void LiveNode::originate(const LiveFlow& flow, net::SequenceNumber sequence,
                         util::SimTime now) {
  Message message;
  message.type = MessageType::Data;
  message.sender = id_;
  message.flow = flow.id;
  message.sequence = sequence;
  message.originTime = now;
  message.deadline = flow.deadline;
  message.graphMask = flow.graphMask;
  message.source = flow.source;
  message.destination = flow.destination;
  ++statsFor(flow.id).sent;
  seen_.try_emplace(flow.id).first->second.insert(sequence);
  forward(message, graph::kInvalidEdge, now);
}

void LiveNode::handleMessage(const Message& message, util::SimTime now) {
  switch (message.type) {
    case MessageType::Data:
    case MessageType::Retransmission:
      handleData(message, now);
      return;
    case MessageType::Nack:
      handleNack(message, now);
      return;
    default:
      return;  // membership/control messages are the daemon's business
  }
}

void LiveNode::handleData(const Message& message, util::SimTime now) {
  // Per-hop recovery bookkeeping runs for every copy, even duplicates:
  // link sequencing is a property of the link, not of the flood.
  if (message.type == MessageType::Data && config_.recoveryEnabled &&
      message.edge != graph::kInvalidEdge) {
    noteSequenceForRecovery(message, now);
  }

  // First-copy suppression.
  auto& seen = seen_.try_emplace(message.flow).first->second;
  if (!seen.insert(message.sequence)) {
    ++duplicatesDropped_;
    return;
  }
  if (message.type == MessageType::Retransmission) ++nackRecoveries_;

  if (id_ == message.destination) {
    FlowStatsEntry& stats = statsFor(message.flow);
    const util::SimTime latency = now - message.originTime;
    if (latency <= message.deadline) {
      ++stats.deliveredOnTime;
    } else {
      ++stats.deliveredLate;
    }
    stats.latencySumUs +=
        static_cast<std::uint64_t>(std::max<util::SimTime>(latency, 0));
    // A destination can still have member out-edges (e.g. flooding); fall
    // through so the dissemination semantics stay uniform.
  }
  forward(message, message.edge, now);
}

// dgcheck: hot
void LiveNode::forward(const Message& message, graph::EdgeId arrivalEdge,
                       util::SimTime now) {
  if (message.graphMask == 0) return;  // live mode is always stamped
  const util::SimTime age = now - message.originTime;
  if (age >= message.deadline) {
    ++expiredDropped_;
    return;  // cannot be useful downstream anymore
  }
  const graph::NodeId arrivalNeighbor =
      arrivalEdge == graph::kInvalidEdge ? graph::kInvalidNode
                                         : overlay_->edge(arrivalEdge).from;
  for (const graph::EdgeId out : overlay_->outEdges(id_)) {
    if ((message.graphMask & (std::uint64_t{1} << out)) == 0) continue;
    if (overlay_->edge(out).to == arrivalNeighbor) continue;  // no echo
    Message copy = message;
    copy.type = MessageType::Data;
    copy.sender = id_;
    copy.edge = out;
    copy.nackSequences.clear();
    if (config_.recoveryEnabled) bufferForRetransmit(out, copy);
    ++statsFor(message.flow).transmissions;
    sender_->sendOnEdge(out, copy);
  }
}

void LiveNode::noteSequenceForRecovery(const Message& message,
                                       util::SimTime /*now*/) {
  ReceiveState& state = receive_[key(message.edge, message.flow)];
  if (message.sequence < state.expected) return;  // late fill, all good
  if (message.sequence == state.expected) {
    state.expected = message.sequence + 1;
    return;
  }
  // Gap: request every missing sequence exactly once. The wire caps a
  // Nack at kMaxNackSequences; sequences beyond the cap stay unmarked in
  // `requested` so a later gap can still claim them.
  Message nack;
  nack.type = MessageType::Nack;
  nack.sender = id_;
  nack.flow = message.flow;
  for (net::SequenceNumber missing = state.expected;
       missing < message.sequence; ++missing) {
    if (nack.nackSequences.size() >= kMaxNackSequences) break;
    if (state.requested.insert(missing)) {
      nack.nackSequences.push_back(missing);
    }
  }
  state.expected = message.sequence + 1;
  if (nack.nackSequences.empty()) return;
  const auto reverse = overlay_->reverseEdge(message.edge);
  if (!reverse) return;  // no reverse link: recovery impossible
  nack.edge = *reverse;
  ++nacksSent_;
  sender_->sendOnEdge(*reverse, nack);
}

void LiveNode::handleNack(const Message& message, util::SimTime /*now*/) {
  // The NACK arrived on the reverse of the data edge we sent on.
  if (message.edge == graph::kInvalidEdge) return;
  const auto dataEdge = overlay_->reverseEdge(message.edge);
  if (!dataEdge) return;
  const auto it = sendBuffers_.find(key(*dataEdge, message.flow));
  if (it == sendBuffers_.end()) return;
  // Linear scan: the buffer is small and recovered packets re-enter it
  // out of sequence order, so it is not sorted.
  const auto& buffer = it->second.packets;
  for (const net::SequenceNumber seq : message.nackSequences) {
    const auto found = std::find_if(
        buffer.begin(), buffer.end(),
        [seq](const Message& m) { return m.sequence == seq; });
    if (found == buffer.end()) continue;
    Message retransmission = *found;
    retransmission.type = MessageType::Retransmission;
    retransmission.sender = id_;
    retransmission.edge = *dataEdge;
    ++retransmissionsSent_;
    ++statsFor(message.flow).transmissions;
    sender_->sendOnEdge(*dataEdge, retransmission);
  }
}

void LiveNode::bufferForRetransmit(graph::EdgeId outEdge,
                                   const Message& message) {
  SendBuffer& buffer = sendBuffers_[key(outEdge, message.flow)];
  buffer.packets.push_back(message);  // dgcheck: ok(R5): retransmit ring reuses deque capacity; bounded by the recovery window and amortized to zero
  while (buffer.packets.size() > config_.sendBufferPackets) {
    buffer.packets.pop_front();
  }
}

}  // namespace dg::live
