// Nonblocking UDP socket on the loopback interface.
//
// The live overlay runs its fleets on 127.0.0.1, so an endpoint is just
// a port; the socket binds (port 0 = kernel-assigned, read back via
// localPort()) and sends datagrams to peer ports. Receive is drain-style
// for use from an EventLoop readable callback.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace dg::live {

class UdpSocket {
 public:
  /// Binds to 127.0.0.1:port (0 = ephemeral). Throws std::system_error.
  explicit UdpSocket(std::uint16_t port);
  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  int fd() const { return fd_; }
  std::uint16_t localPort() const { return localPort_; }

  /// Sends one datagram to 127.0.0.1:port. Returns false when the kernel
  /// refused it (e.g. full socket buffer) -- the overlay treats that as
  /// a network drop.
  bool sendTo(std::uint16_t port, std::span<const std::byte> datagram);

  /// Reads every queued datagram, invoking `sink` per datagram, until
  /// the socket would block. Returns the number of datagrams read.
  std::size_t drain(
      const std::function<void(std::span<const std::byte>)>& sink);

 private:
  int fd_ = -1;
  std::uint16_t localPort_ = 0;
  std::vector<std::byte> buffer_;
};

}  // namespace dg::live
