// Membership, discovery and lookup for the live overlay, modeled on the
// Overlay discover/lookup + on_discover/on_disappear surface.
//
// Peers are seeded into an address book (seed()) and become *alive* on
// their first Hello; a peer that misses `missedHeartbeatsDead`
// heartbeat intervals, or sends Bye, disappears. A Hello carrying a
// higher incarnation than the last one seen is a restart: the peer
// disappears and is immediately rediscovered, so listeners observe the
// churn. All state is synchronous and driven by explicit timestamps --
// the daemon feeds soak time in, tests feed synthetic times.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "graph/graph.hpp"
#include "util/sim_time.hpp"

namespace dg::live {

struct MembershipConfig {
  util::SimTime heartbeatInterval = util::milliseconds(500);
  /// Missed consecutive heartbeats before a peer is declared gone.
  int missedHeartbeatsDead = 3;
};

struct PeerInfo {
  graph::NodeId node = graph::kInvalidNode;
  std::uint16_t port = 0;
  std::uint64_t incarnation = 0;
  util::SimTime lastHeard = 0;
  bool alive = false;
};

class Membership {
 public:
  using PeerCallback = std::function<void(const PeerInfo&)>;

  Membership(graph::NodeId self, MembershipConfig config);

  /// Seeds the address book (static fleet configuration). Does not mark
  /// the peer alive -- only a Hello does that.
  void seed(graph::NodeId peer, std::uint16_t port);

  /// Endpoint (loopback port) of a known peer, dead or alive.
  std::optional<std::uint16_t> lookup(graph::NodeId peer) const;

  /// Fires when a peer transitions to alive (first Hello, or Hello after
  /// a disappearance/restart).
  void onDiscover(PeerCallback callback) { onDiscover_ = std::move(callback); }
  /// Fires when an alive peer leaves (Bye), times out, or restarts.
  void onDisappear(PeerCallback callback) {
    onDisappear_ = std::move(callback);
  }

  /// Processes a Hello heard at `now` (also refreshes the address book
  /// with the sender's observed port).
  void recordHello(graph::NodeId peer, std::uint16_t port,
                   std::uint64_t incarnation, util::SimTime now);
  /// Processes a graceful Bye.
  void recordBye(graph::NodeId peer, util::SimTime now);
  /// Expires peers whose last Hello is older than the dead deadline. Call
  /// periodically (the daemon ticks it off its heartbeat timer).
  void tick(util::SimTime now);

  const std::map<graph::NodeId, PeerInfo>& peers() const { return peers_; }
  std::uint32_t aliveCount() const;
  std::uint64_t discoveries() const { return discoveries_; }
  std::uint64_t disappearances() const { return disappearances_; }

 private:
  void markAlive(PeerInfo& peer, util::SimTime now);
  void markGone(PeerInfo& peer);

  graph::NodeId self_;
  MembershipConfig config_;
  std::map<graph::NodeId, PeerInfo> peers_;
  PeerCallback onDiscover_;
  PeerCallback onDisappear_;
  std::uint64_t discoveries_ = 0;
  std::uint64_t disappearances_ = 0;
};

}  // namespace dg::live
