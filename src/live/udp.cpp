#include "live/udp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace dg::live {
namespace {

sockaddr_in loopbackAddress(std::uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return address;
}

}  // namespace

UdpSocket::UdpSocket(std::uint16_t port) : buffer_(64 * 1024) {
  fd_ = socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0)
    throw std::system_error(errno, std::generic_category(), "socket");

  sockaddr_in address = loopbackAddress(port);
  if (bind(fd_, reinterpret_cast<const sockaddr*>(&address),
           sizeof(address)) != 0) {
    const int savedErrno = errno;
    close(fd_);
    fd_ = -1;
    throw std::system_error(savedErrno, std::generic_category(),
                            "bind 127.0.0.1:" + std::to_string(port));
  }

  sockaddr_in bound{};
  socklen_t boundLength = sizeof(bound);
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &boundLength) !=
      0) {
    const int savedErrno = errno;
    close(fd_);
    fd_ = -1;
    throw std::system_error(savedErrno, std::generic_category(),
                            "getsockname");
  }
  localPort_ = ntohs(bound.sin_port);
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) close(fd_);
}

bool UdpSocket::sendTo(std::uint16_t port,
                       std::span<const std::byte> datagram) {
  const sockaddr_in address = loopbackAddress(port);
  const ssize_t sent =
      sendto(fd_, datagram.data(), datagram.size(), 0,
             reinterpret_cast<const sockaddr*>(&address), sizeof(address));
  return sent == static_cast<ssize_t>(datagram.size());
}

std::size_t UdpSocket::drain(
    const std::function<void(std::span<const std::byte>)>& sink) {
  std::size_t count = 0;
  for (;;) {
    const ssize_t n = recv(fd_, buffer_.data(), buffer_.size(), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      throw std::system_error(errno, std::generic_category(), "recv");
    }
    ++count;
    sink(std::span<const std::byte>(buffer_.data(),
                                    static_cast<std::size_t>(n)));
  }
  return count;
}

}  // namespace dg::live
