#include "live/membership.hpp"

namespace dg::live {

Membership::Membership(graph::NodeId self, MembershipConfig config)
    : self_(self), config_(config) {}

void Membership::seed(graph::NodeId peer, std::uint16_t port) {
  if (peer == self_) return;
  PeerInfo& info = peers_[peer];
  info.node = peer;
  info.port = port;
}

std::optional<std::uint16_t> Membership::lookup(graph::NodeId peer) const {
  const auto it = peers_.find(peer);
  if (it == peers_.end()) return std::nullopt;
  return it->second.port;
}

void Membership::markAlive(PeerInfo& peer, util::SimTime now) {
  peer.alive = true;
  peer.lastHeard = now;
  ++discoveries_;
  if (onDiscover_) onDiscover_(peer);
}

void Membership::markGone(PeerInfo& peer) {
  peer.alive = false;
  ++disappearances_;
  if (onDisappear_) onDisappear_(peer);
}

void Membership::recordHello(graph::NodeId peer, std::uint16_t port,
                             std::uint64_t incarnation, util::SimTime now) {
  if (peer == self_) return;
  PeerInfo& info = peers_[peer];
  info.node = peer;
  if (port != 0) info.port = port;  // 0 = keep the seeded address
  if (info.alive && incarnation > info.incarnation) {
    // Restart: the old incarnation is gone, the new one just joined.
    markGone(info);
  }
  if (incarnation < info.incarnation) return;  // late pre-restart heartbeat
  info.incarnation = incarnation;
  info.lastHeard = now;
  if (!info.alive) markAlive(info, now);
}

void Membership::recordBye(graph::NodeId peer, util::SimTime now) {
  const auto it = peers_.find(peer);
  if (it == peers_.end() || !it->second.alive) return;
  it->second.lastHeard = now;
  markGone(it->second);
}

void Membership::tick(util::SimTime now) {
  const util::SimTime deadAfter =
      config_.heartbeatInterval * config_.missedHeartbeatsDead;
  for (auto& [node, info] : peers_) {
    if (info.alive && now - info.lastHeard > deadAfter) markGone(info);
  }
}

std::uint32_t Membership::aliveCount() const {
  std::uint32_t count = 0;
  for (const auto& [node, info] : peers_) {
    if (info.alive) ++count;
  }
  return count;
}

}  // namespace dg::live
