// Localhost fleet orchestration and the live-vs-model soak.
//
// A fleet is one daemon per topology site on 127.0.0.1, either sharing
// the caller's event loop (in-process; ephemeral ports) or as forked
// dgnet child processes (one loop each; portBase + node). A coordinator
// socket drives the soak over the same UDP wire the daemons use:
//
//   converge:  poll StatsRequest until every daemon reports
//              membershipAlive == n-1 (discovery done);
//   go:        broadcast Go{horizon} (twice; daemons ignore the dup) --
//              flows originate for [0, horizon) of soak time;
//   collect:   at horizon + drain, poll StatsRequest until every daemon
//              has answered with its final counters and flow stats;
//   shutdown:  broadcast Shutdown and reap.
//
// The result is differential: the same ChaosSchedule is compiled to a
// trace (chaos::compileToTrace) and replayed through the playback model,
// and each flow's live unavailability must match the prediction within
// chaos::differentialTolerance -- the identical bound the simulator's
// own chaos soak is held to.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chaos/bridge.hpp"
#include "chaos/schedule.hpp"
#include "live/daemon.hpp"
#include "live/wire.hpp"
#include "routing/scheme.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/topology.hpp"

namespace dg::live {

/// One flow of a fleet soak (site names, as in the chaos differential).
struct FleetFlowSpec {
  std::string source;
  std::string destination;
  routing::SchemeKind scheme = routing::SchemeKind::StaticTwoDisjoint;
};

struct FleetParams {
  trace::Topology topology = trace::Topology::mesh5();
  chaos::ChaosSchedule schedule;
  std::vector<FleetFlowSpec> flows;
  routing::SchemeParams schemeParams;
  util::SimTime packetInterval = util::milliseconds(5);
  /// Seeds the daemons' impairment loss streams.
  std::uint64_t impairmentSeed = 42;
  double residualLoss = 1e-4;
  /// Per-hop NACK recovery on the live side. Off by default: the tight
  /// differential tolerance is only honest without recovery (see
  /// chaos::DifferentialParams).
  bool recoveryEnabled = false;
  /// Wall time after the horizon for in-flight packets to land.
  util::SimTime drain = util::seconds(1);
  util::SimTime convergeTimeout = util::seconds(10);
  util::SimTime collectTimeout = util::seconds(5);
  util::SimTime statsPollInterval = util::milliseconds(200);
  MembershipConfig membership;
  /// Playback (predicted) side.
  int mcSamples = 4000;
  std::uint64_t playbackSeed = 7;
  /// Multi-process mode: daemon for node i binds portBase + 1 + i and
  /// the coordinator binds portBase (all must be free).
  std::uint16_t portBase = 47000;
  /// Path of the dgnet binary to exec for child daemons (multi-process
  /// mode); typically /proc/self/exe resolved by the CLI.
  std::string dgnetBinary;
  /// Scratch directory for the topology/schedule files handed to child
  /// daemons (multi-process mode).
  std::string workDir = "/tmp";
};

struct FleetFlowResult {
  FleetFlowSpec spec;
  net::FlowId id = 0;
  double liveUnavailability = 0.0;
  double predictedUnavailability = 0.0;
  double liveCost = 0.0;
  double predictedCost = 0.0;
  std::uint64_t sent = 0;
  std::uint64_t deliveredOnTime = 0;
  std::uint64_t deliveredLate = 0;
  std::uint64_t transmissions = 0;

  double unavailabilityDelta() const {
    return liveUnavailability - predictedUnavailability;
  }
  double tolerance() const {
    return chaos::differentialTolerance(predictedUnavailability, sent);
  }
  bool withinTolerance() const {
    return std::abs(unavailabilityDelta()) <= tolerance();
  }
};

struct FleetResult {
  std::vector<FleetFlowResult> flows;
  /// Final counter snapshot per node, keyed by node id.
  std::map<graph::NodeId, DaemonCounters> nodeCounters;
  /// Every daemon discovered all peers before the soak started.
  bool converged = false;
  /// Every daemon answered the final stats collection.
  bool completed = false;

  bool allWithinTolerance() const {
    for (const FleetFlowResult& flow : flows) {
      if (!flow.withinTolerance()) return false;
    }
    return true;
  }
  bool passed() const {
    return converged && completed && allWithinTolerance();
  }
};

/// Selects the dissemination graph a live flow is stamped with: the
/// scheme's choice on the healthy baseline view, as an edge mask. Only
/// static schemes are allowed live (static-single, static-two-disjoint,
/// flooding); dynamic/targeted schemes need live monitoring, which the
/// daemon does not run yet -- std::invalid_argument names the offender.
std::uint64_t selectLiveGraphMask(const trace::Topology& topology,
                                  routing::SchemeKind scheme,
                                  graph::NodeId source,
                                  graph::NodeId destination,
                                  const routing::SchemeParams& schemeParams,
                                  double residualLoss = 1e-4);

/// Runs the soak with every daemon in this process on one event loop
/// (ephemeral ports; portBase/dgnetBinary/workDir unused). `telemetry`
/// (nullable) receives live churn trace events and per-daemon counters.
FleetResult runFleetInProcess(const FleetParams& params,
                              telemetry::Telemetry* telemetry = nullptr);

/// Runs the soak with one forked dgnet child process per site.
FleetResult runFleetProcesses(const FleetParams& params,
                              telemetry::Telemetry* telemetry = nullptr);

}  // namespace dg::live
