#include "live/daemon.hpp"

#include <algorithm>
#include <utility>

namespace dg::live {

Daemon::Daemon(EventLoop& loop, const graph::Graph& overlay,
               DaemonConfig config)
    : loop_(&loop),
      overlay_(&overlay),
      config_(config),
      socket_(config.port),
      membership_(config.node, config.membership),
      node_(config.node, overlay, *this,
            LiveNodeConfig{config.recoveryEnabled, config.sendBufferPackets}) {
  onShutdown_ = [this] { loop_->stop(); };
  membership_.onDiscover([this](const PeerInfo& peer) {
    if (telemetry_ != nullptr) {
      telemetry_->trace.record(loop_->now(),
                               telemetry::TraceEventKind::PeerDiscovered, -1,
                               config_.node, -1,
                               static_cast<double>(peer.node));
    }
    if (userOnDiscover_) userOnDiscover_(peer);
  });
  membership_.onDisappear([this](const PeerInfo& peer) {
    if (telemetry_ != nullptr) {
      telemetry_->trace.record(loop_->now(),
                               telemetry::TraceEventKind::PeerDisappeared, -1,
                               config_.node, -1,
                               static_cast<double>(peer.node));
    }
    if (userOnDisappear_) userOnDisappear_(peer);
  });
}

void Daemon::enableImpairment(const chaos::ChaosSchedule& schedule,
                              std::uint64_t seed, double residualLoss) {
  impairment_ =
      std::make_unique<ImpairmentPlan>(*overlay_, schedule, seed,
                                       residualLoss);
}

void Daemon::addFlow(const LiveFlow& flow) {
  flows_.push_back(FlowState{flow, 0, 0});
}

void Daemon::seedPeer(graph::NodeId peer, std::uint16_t peerPort) {
  membership_.seed(peer, peerPort);
}

void Daemon::start() {
  if (started_) return;
  started_ = true;
  loop_->addFd(socket_.fd(), [this] { onReadable(); });
  heartbeatTick();
}

void Daemon::stop() {
  if (!started_) return;
  started_ = false;
  Message bye;
  bye.type = MessageType::Bye;
  bye.sender = config_.node;
  bye.incarnation = config_.incarnation;
  bye.helloSeq = helloSeq_;
  for (const auto& [peer, info] : membership_.peers()) {
    sendControl(peer, bye);
  }
  loop_->removeFd(socket_.fd());
}

void Daemon::onReadable() {
  socket_.drain([this](std::span<const std::byte> datagram) {
    ++counters_.socketReceives;
    auto message = decodeMessage(datagram);
    if (!message) {
      ++counters_.decodeErrors;
      return;
    }
    dispatch(*message);
  });
}

void Daemon::dispatch(const Message& message) {
  switch (message.type) {
    case MessageType::Data:
    case MessageType::Retransmission:
    case MessageType::Nack:
      // An edge message can beat our Go by the coordinator's fan-out
      // skew; the first one pins the soak epoch just as Go would.
      if (soakStart_ < 0) soakStart_ = loop_->now();
      node_.handleMessage(message, soakNow());
      return;
    case MessageType::Hello:
      membership_.recordHello(message.sender, 0, message.incarnation,
                              loop_->now());
      return;
    case MessageType::Bye:
      membership_.recordBye(message.sender, loop_->now());
      return;
    case MessageType::Go:
      handleGo(message);
      return;
    case MessageType::StatsRequest:
      sendStatsReply(message.token);
      return;
    case MessageType::StatsReply:
      return;  // coordinator traffic; daemons have nothing to do
    case MessageType::Shutdown:
      handleShutdown();
      return;
  }
}

void Daemon::handleGo(const Message& message) {
  if (goReceived_) return;  // the coordinator sends Go twice for safety
  goReceived_ = true;
  if (soakStart_ < 0) soakStart_ = loop_->now();
  horizon_ = message.horizon;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    flows_[i].nextDue = 0;
    originateTick(i);
  }
}

void Daemon::handleShutdown() {
  if (onShutdown_) onShutdown_();
}

void Daemon::originateTick(std::size_t flowIndex) {
  FlowState& state = flows_[flowIndex];
  const util::SimTime now = soakNow();
  if (now >= horizon_) return;  // the flow is done
  node_.originate(state.flow, state.nextSequence++, now);
  // Anchor the cadence to the grid (nextDue += interval, not now +
  // interval) so timer jitter cannot drift the total packet count.
  state.nextDue += config_.packetInterval;
  loop_->scheduleAt(state.nextDue + soakStart_,
                    [this, flowIndex] { originateTick(flowIndex); });
}

void Daemon::heartbeatTick() {
  Message hello;
  hello.type = MessageType::Hello;
  hello.sender = config_.node;
  hello.incarnation = config_.incarnation;
  hello.helloSeq = helloSeq_++;
  for (const auto& [peer, info] : membership_.peers()) {
    sendControl(peer, hello);
  }
  membership_.tick(loop_->now());
  loop_->scheduleAfter(config_.membership.heartbeatInterval,
                       [this] { heartbeatTick(); });
}

// dgcheck: cold: per-send serialization into the socket buffer; UDP syscall cost dominates and sends are paced by the packet interval
void Daemon::sendOnEdge(graph::EdgeId edge, const Message& message) {
  const util::SimTime now = soakStart_ < 0 ? 0 : soakNow();
  util::SimTime delay = 0;
  if (impairment_ != nullptr) {
    const ImpairmentDecision decision = impairment_->decide(edge, now);
    if (decision.drop) {
      ++counters_.impairmentDrops;
      return;
    }
    delay = decision.delay;
    if (delay > impairment_->baselineLatency(edge)) {
      ++counters_.impairmentDelays;
    }
  }
  const graph::NodeId to = overlay_->edge(edge).to;
  const auto peerPort = membership_.lookup(to);
  if (!peerPort || *peerPort == 0) return;  // peer address unknown
  std::vector<std::byte> bytes = encodeMessage(message);
  if (delay > 0) {
    loop_->scheduleAfter(
        delay, [this, port = *peerPort, bytes = std::move(bytes)] {
          transmit(port, bytes);
        });
  } else {
    transmit(*peerPort, bytes);
  }
}

void Daemon::transmit(std::uint16_t peerPort,
                      const std::vector<std::byte>& bytes) {
  if (socket_.sendTo(peerPort, bytes)) ++counters_.socketSends;
}

void Daemon::sendControl(graph::NodeId peer, const Message& message) {
  const auto peerPort = membership_.lookup(peer);
  if (!peerPort || *peerPort == 0) return;
  transmit(*peerPort, encodeMessage(message));
}

void Daemon::sendStatsReply(std::uint32_t token) {
  if (config_.coordinatorPort == 0) return;
  Message reply;
  reply.type = MessageType::StatsReply;
  reply.sender = config_.node;
  reply.token = token;
  reply.counters = counters();
  reply.flowStats = flowStatsEntries();
  transmit(config_.coordinatorPort, encodeMessage(reply));
}

std::vector<FlowStatsEntry> Daemon::flowStatsEntries() const {
  std::vector<FlowStatsEntry> entries;
  entries.reserve(node_.flowStats().size());
  for (const auto& [flow, entry] : node_.flowStats()) {
    if (entries.size() >= kMaxFlowStats) break;
    entries.push_back(entry);
  }
  return entries;
}

DaemonCounters Daemon::counters() const {
  DaemonCounters c = counters_;
  c.duplicatesDropped = node_.duplicatesDropped();
  c.expiredDropped = node_.expiredDropped();
  c.nacksSent = node_.nacksSent();
  c.retransmissionsSent = node_.retransmissionsSent();
  c.nackRecoveries = node_.nackRecoveries();
  c.membershipDiscoveries = membership_.discoveries();
  c.membershipDisappearances = membership_.disappearances();
  // With a shared in-process loop these are fleet-wide; per-process they
  // are this daemon's own.
  c.eventLoopWakeups = loop_->wakeups();
  c.timersFired = loop_->timersFired();
  c.membershipAlive = membership_.aliveCount();
  return c;
}

void Daemon::exportTelemetry(telemetry::Telemetry& telemetry) const {
  const DaemonCounters c = counters();
  const telemetry::Labels labels{{"node", std::to_string(config_.node)}};
  auto publish = [&](std::string_view name, std::uint64_t value) {
    telemetry.metrics.counter(name, labels).inc(value);
  };
  publish("dg_live_socket_sends_total", c.socketSends);
  publish("dg_live_socket_receives_total", c.socketReceives);
  publish("dg_live_decode_errors_total", c.decodeErrors);
  publish("dg_live_impairment_drops_total", c.impairmentDrops);
  publish("dg_live_impairment_delays_total", c.impairmentDelays);
  publish("dg_live_duplicates_dropped_total", c.duplicatesDropped);
  publish("dg_live_expired_dropped_total", c.expiredDropped);
  publish("dg_live_nacks_sent_total", c.nacksSent);
  publish("dg_live_retransmissions_sent_total", c.retransmissionsSent);
  publish("dg_live_nack_roundtrips_total", c.nackRecoveries);
  publish("dg_live_membership_discover_total", c.membershipDiscoveries);
  publish("dg_live_membership_disappear_total", c.membershipDisappearances);
  publish("dg_live_event_loop_wakeups_total", c.eventLoopWakeups);
  publish("dg_live_timers_fired_total", c.timersFired);
  telemetry.metrics.gauge("dg_live_membership_alive", labels)
      .high(static_cast<double>(c.membershipAlive));
}

}  // namespace dg::live
