// Single-threaded epoll event loop with a timer wheel.
//
// The live daemon is one thread around one epoll instance: readable file
// descriptors dispatch to registered callbacks, and deferred work runs
// off a single-level timer wheel (512 slots x 1 ms). All timestamps the
// loop hands out are SimTime-shaped microseconds relative to the loop's
// construction, derived from util::nowMicros() -- the only raw clock
// read, so dglint R1 stays confined to the wall-clock shim.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "util/sim_time.hpp"

namespace dg::live {

using TimerId = std::uint64_t;

class EventLoop {
 public:
  using FdHandler = std::function<void()>;
  using TimerHandler = std::function<void()>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Microseconds since this loop was constructed (monotonic).
  util::SimTime now() const;

  /// Registers a readable-fd callback. The fd must stay valid until
  /// removeFd(); the loop does not own it.
  void addFd(int fd, FdHandler onReadable);
  void removeFd(int fd);

  /// Schedules `fn` to run once at loop-time `due` (clamped to now).
  /// Returns an id usable with cancelTimer().
  TimerId scheduleAt(util::SimTime due, TimerHandler fn);
  TimerId scheduleAfter(util::SimTime delay, TimerHandler fn);
  void cancelTimer(TimerId id);

  /// Runs until stop() is called from a handler.
  void run();
  /// Runs until loop-time `deadline` (handlers may still call stop()).
  void runUntil(util::SimTime deadline);
  void stop() { stopped_ = true; }

  std::uint64_t wakeups() const { return wakeups_; }
  std::uint64_t timersFired() const { return timersFired_; }

 private:
  struct TimerEntry {
    util::SimTime due = 0;
    TimerId id = 0;
    TimerHandler fn;
  };
  static constexpr std::size_t kWheelSlots = 512;
  static constexpr util::SimTime kSlotMicros = 1000;  // 1 ms granularity

  std::size_t slotOf(util::SimTime due) const {
    return static_cast<std::size_t>((due / kSlotMicros) %
                                    static_cast<util::SimTime>(kWheelSlots));
  }
  /// Earliest pending due time, or -1 when no timers are pending.
  util::SimTime nextDue() const;
  void fireDueTimers(util::SimTime upTo);
  void pollOnce(util::SimTime deadline);

  int epollFd_ = -1;
  std::int64_t epochMicros_ = 0;
  std::map<int, FdHandler> fdHandlers_;
  std::vector<std::vector<TimerEntry>> wheel_;
  std::set<TimerId> cancelled_;
  TimerId nextTimerId_ = 1;
  std::size_t pendingTimers_ = 0;
  bool stopped_ = false;
  std::uint64_t wakeups_ = 0;
  std::uint64_t timersFired_ = 0;
};

}  // namespace dg::live
