add_test([=[Umbrella.EndToEndSmoke]=]  /root/repo/build/tests/test_umbrella [==[--gtest_filter=Umbrella.EndToEndSmoke]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Umbrella.EndToEndSmoke]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_umbrella_TESTS Umbrella.EndToEndSmoke)
