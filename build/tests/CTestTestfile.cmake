# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_playback[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_umbrella[1]_include.cmake")
