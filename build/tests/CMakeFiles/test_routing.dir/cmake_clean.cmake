file(REMOVE_RECURSE
  "CMakeFiles/test_routing.dir/routing/network_view_test.cpp.o"
  "CMakeFiles/test_routing.dir/routing/network_view_test.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/problem_detector_test.cpp.o"
  "CMakeFiles/test_routing.dir/routing/problem_detector_test.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/scheme_sweep_test.cpp.o"
  "CMakeFiles/test_routing.dir/routing/scheme_sweep_test.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/schemes_test.cpp.o"
  "CMakeFiles/test_routing.dir/routing/schemes_test.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/targeted_graphs_test.cpp.o"
  "CMakeFiles/test_routing.dir/routing/targeted_graphs_test.cpp.o.d"
  "test_routing"
  "test_routing.pdb"
  "test_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
