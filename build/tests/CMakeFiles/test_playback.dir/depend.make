# Empty dependencies file for test_playback.
# This may be replaced when dependencies are built.
