file(REMOVE_RECURSE
  "CMakeFiles/test_playback.dir/playback/ablation_test.cpp.o"
  "CMakeFiles/test_playback.dir/playback/ablation_test.cpp.o.d"
  "CMakeFiles/test_playback.dir/playback/classification_test.cpp.o"
  "CMakeFiles/test_playback.dir/playback/classification_test.cpp.o.d"
  "CMakeFiles/test_playback.dir/playback/delivery_model_test.cpp.o"
  "CMakeFiles/test_playback.dir/playback/delivery_model_test.cpp.o.d"
  "CMakeFiles/test_playback.dir/playback/experiment_test.cpp.o"
  "CMakeFiles/test_playback.dir/playback/experiment_test.cpp.o.d"
  "CMakeFiles/test_playback.dir/playback/graph_optimizer_test.cpp.o"
  "CMakeFiles/test_playback.dir/playback/graph_optimizer_test.cpp.o.d"
  "CMakeFiles/test_playback.dir/playback/latency_collection_test.cpp.o"
  "CMakeFiles/test_playback.dir/playback/latency_collection_test.cpp.o.d"
  "CMakeFiles/test_playback.dir/playback/playback_test.cpp.o"
  "CMakeFiles/test_playback.dir/playback/playback_test.cpp.o.d"
  "test_playback"
  "test_playback.pdb"
  "test_playback[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_playback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
