file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/link_state_test.cpp.o"
  "CMakeFiles/test_core.dir/core/link_state_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/monitor_test.cpp.o"
  "CMakeFiles/test_core.dir/core/monitor_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/overlay_node_test.cpp.o"
  "CMakeFiles/test_core.dir/core/overlay_node_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/sequence_window_test.cpp.o"
  "CMakeFiles/test_core.dir/core/sequence_window_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/transport_test.cpp.o"
  "CMakeFiles/test_core.dir/core/transport_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
