
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/importer_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/importer_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/importer_test.cpp.o.d"
  "/root/repo/tests/trace/synth_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/synth_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/synth_test.cpp.o.d"
  "/root/repo/tests/trace/topology_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/topology_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/topology_test.cpp.o.d"
  "/root/repo/tests/trace/trace_test.cpp" "tests/CMakeFiles/test_trace.dir/trace/trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_trace.dir/trace/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/playback/CMakeFiles/dg_playback.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dg_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
