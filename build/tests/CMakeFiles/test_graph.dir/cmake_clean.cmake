file(REMOVE_RECURSE
  "CMakeFiles/test_graph.dir/graph/analysis_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/analysis_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/disjoint_paths_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/disjoint_paths_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/dissemination_graph_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/dissemination_graph_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/flow_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/flow_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/graph_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/graph_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/k_shortest_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/k_shortest_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/shortest_path_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/shortest_path_test.cpp.o.d"
  "test_graph"
  "test_graph.pdb"
  "test_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
