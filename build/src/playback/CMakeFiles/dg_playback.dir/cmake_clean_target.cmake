file(REMOVE_RECURSE
  "libdg_playback.a"
)
