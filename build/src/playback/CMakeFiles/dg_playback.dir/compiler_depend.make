# Empty compiler generated dependencies file for dg_playback.
# This may be replaced when dependencies are built.
