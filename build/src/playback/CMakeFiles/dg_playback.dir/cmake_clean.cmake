file(REMOVE_RECURSE
  "CMakeFiles/dg_playback.dir/ablation.cpp.o"
  "CMakeFiles/dg_playback.dir/ablation.cpp.o.d"
  "CMakeFiles/dg_playback.dir/classification.cpp.o"
  "CMakeFiles/dg_playback.dir/classification.cpp.o.d"
  "CMakeFiles/dg_playback.dir/delivery_model.cpp.o"
  "CMakeFiles/dg_playback.dir/delivery_model.cpp.o.d"
  "CMakeFiles/dg_playback.dir/experiment.cpp.o"
  "CMakeFiles/dg_playback.dir/experiment.cpp.o.d"
  "CMakeFiles/dg_playback.dir/graph_optimizer.cpp.o"
  "CMakeFiles/dg_playback.dir/graph_optimizer.cpp.o.d"
  "CMakeFiles/dg_playback.dir/playback.cpp.o"
  "CMakeFiles/dg_playback.dir/playback.cpp.o.d"
  "CMakeFiles/dg_playback.dir/report.cpp.o"
  "CMakeFiles/dg_playback.dir/report.cpp.o.d"
  "libdg_playback.a"
  "libdg_playback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_playback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
