
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/playback/ablation.cpp" "src/playback/CMakeFiles/dg_playback.dir/ablation.cpp.o" "gcc" "src/playback/CMakeFiles/dg_playback.dir/ablation.cpp.o.d"
  "/root/repo/src/playback/classification.cpp" "src/playback/CMakeFiles/dg_playback.dir/classification.cpp.o" "gcc" "src/playback/CMakeFiles/dg_playback.dir/classification.cpp.o.d"
  "/root/repo/src/playback/delivery_model.cpp" "src/playback/CMakeFiles/dg_playback.dir/delivery_model.cpp.o" "gcc" "src/playback/CMakeFiles/dg_playback.dir/delivery_model.cpp.o.d"
  "/root/repo/src/playback/experiment.cpp" "src/playback/CMakeFiles/dg_playback.dir/experiment.cpp.o" "gcc" "src/playback/CMakeFiles/dg_playback.dir/experiment.cpp.o.d"
  "/root/repo/src/playback/graph_optimizer.cpp" "src/playback/CMakeFiles/dg_playback.dir/graph_optimizer.cpp.o" "gcc" "src/playback/CMakeFiles/dg_playback.dir/graph_optimizer.cpp.o.d"
  "/root/repo/src/playback/playback.cpp" "src/playback/CMakeFiles/dg_playback.dir/playback.cpp.o" "gcc" "src/playback/CMakeFiles/dg_playback.dir/playback.cpp.o.d"
  "/root/repo/src/playback/report.cpp" "src/playback/CMakeFiles/dg_playback.dir/report.cpp.o" "gcc" "src/playback/CMakeFiles/dg_playback.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/dg_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
