file(REMOVE_RECURSE
  "CMakeFiles/dg_core.dir/monitor.cpp.o"
  "CMakeFiles/dg_core.dir/monitor.cpp.o.d"
  "CMakeFiles/dg_core.dir/overlay_node.cpp.o"
  "CMakeFiles/dg_core.dir/overlay_node.cpp.o.d"
  "CMakeFiles/dg_core.dir/sequence_window.cpp.o"
  "CMakeFiles/dg_core.dir/sequence_window.cpp.o.d"
  "CMakeFiles/dg_core.dir/transport.cpp.o"
  "CMakeFiles/dg_core.dir/transport.cpp.o.d"
  "libdg_core.a"
  "libdg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
