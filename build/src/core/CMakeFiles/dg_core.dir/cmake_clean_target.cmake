file(REMOVE_RECURSE
  "libdg_core.a"
)
