# Empty dependencies file for dg_core.
# This may be replaced when dependencies are built.
