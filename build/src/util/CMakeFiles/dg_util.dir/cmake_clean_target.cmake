file(REMOVE_RECURSE
  "libdg_util.a"
)
