# Empty compiler generated dependencies file for dg_util.
# This may be replaced when dependencies are built.
