file(REMOVE_RECURSE
  "CMakeFiles/dg_util.dir/config.cpp.o"
  "CMakeFiles/dg_util.dir/config.cpp.o.d"
  "CMakeFiles/dg_util.dir/logging.cpp.o"
  "CMakeFiles/dg_util.dir/logging.cpp.o.d"
  "CMakeFiles/dg_util.dir/stats.cpp.o"
  "CMakeFiles/dg_util.dir/stats.cpp.o.d"
  "CMakeFiles/dg_util.dir/strings.cpp.o"
  "CMakeFiles/dg_util.dir/strings.cpp.o.d"
  "libdg_util.a"
  "libdg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
