file(REMOVE_RECURSE
  "CMakeFiles/dg_routing.dir/network_view.cpp.o"
  "CMakeFiles/dg_routing.dir/network_view.cpp.o.d"
  "CMakeFiles/dg_routing.dir/problem_detector.cpp.o"
  "CMakeFiles/dg_routing.dir/problem_detector.cpp.o.d"
  "CMakeFiles/dg_routing.dir/schemes.cpp.o"
  "CMakeFiles/dg_routing.dir/schemes.cpp.o.d"
  "CMakeFiles/dg_routing.dir/targeted_graphs.cpp.o"
  "CMakeFiles/dg_routing.dir/targeted_graphs.cpp.o.d"
  "libdg_routing.a"
  "libdg_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
