file(REMOVE_RECURSE
  "libdg_routing.a"
)
