# Empty compiler generated dependencies file for dg_routing.
# This may be replaced when dependencies are built.
