
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/network_view.cpp" "src/routing/CMakeFiles/dg_routing.dir/network_view.cpp.o" "gcc" "src/routing/CMakeFiles/dg_routing.dir/network_view.cpp.o.d"
  "/root/repo/src/routing/problem_detector.cpp" "src/routing/CMakeFiles/dg_routing.dir/problem_detector.cpp.o" "gcc" "src/routing/CMakeFiles/dg_routing.dir/problem_detector.cpp.o.d"
  "/root/repo/src/routing/schemes.cpp" "src/routing/CMakeFiles/dg_routing.dir/schemes.cpp.o" "gcc" "src/routing/CMakeFiles/dg_routing.dir/schemes.cpp.o.d"
  "/root/repo/src/routing/targeted_graphs.cpp" "src/routing/CMakeFiles/dg_routing.dir/targeted_graphs.cpp.o" "gcc" "src/routing/CMakeFiles/dg_routing.dir/targeted_graphs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
