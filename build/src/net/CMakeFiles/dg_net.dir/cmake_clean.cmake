file(REMOVE_RECURSE
  "CMakeFiles/dg_net.dir/network.cpp.o"
  "CMakeFiles/dg_net.dir/network.cpp.o.d"
  "CMakeFiles/dg_net.dir/packet.cpp.o"
  "CMakeFiles/dg_net.dir/packet.cpp.o.d"
  "CMakeFiles/dg_net.dir/simulator.cpp.o"
  "CMakeFiles/dg_net.dir/simulator.cpp.o.d"
  "libdg_net.a"
  "libdg_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
