# Empty dependencies file for dg_net.
# This may be replaced when dependencies are built.
