
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/dg_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/dg_net.dir/network.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/dg_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/dg_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/simulator.cpp" "src/net/CMakeFiles/dg_net.dir/simulator.cpp.o" "gcc" "src/net/CMakeFiles/dg_net.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
