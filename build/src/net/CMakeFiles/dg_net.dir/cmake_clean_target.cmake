file(REMOVE_RECURSE
  "libdg_net.a"
)
