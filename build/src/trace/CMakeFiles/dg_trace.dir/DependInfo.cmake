
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/importer.cpp" "src/trace/CMakeFiles/dg_trace.dir/importer.cpp.o" "gcc" "src/trace/CMakeFiles/dg_trace.dir/importer.cpp.o.d"
  "/root/repo/src/trace/synth.cpp" "src/trace/CMakeFiles/dg_trace.dir/synth.cpp.o" "gcc" "src/trace/CMakeFiles/dg_trace.dir/synth.cpp.o.d"
  "/root/repo/src/trace/topology.cpp" "src/trace/CMakeFiles/dg_trace.dir/topology.cpp.o" "gcc" "src/trace/CMakeFiles/dg_trace.dir/topology.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/dg_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/dg_trace.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
