# Empty dependencies file for dg_trace.
# This may be replaced when dependencies are built.
