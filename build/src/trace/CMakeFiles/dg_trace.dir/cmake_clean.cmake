file(REMOVE_RECURSE
  "CMakeFiles/dg_trace.dir/importer.cpp.o"
  "CMakeFiles/dg_trace.dir/importer.cpp.o.d"
  "CMakeFiles/dg_trace.dir/synth.cpp.o"
  "CMakeFiles/dg_trace.dir/synth.cpp.o.d"
  "CMakeFiles/dg_trace.dir/topology.cpp.o"
  "CMakeFiles/dg_trace.dir/topology.cpp.o.d"
  "CMakeFiles/dg_trace.dir/trace.cpp.o"
  "CMakeFiles/dg_trace.dir/trace.cpp.o.d"
  "libdg_trace.a"
  "libdg_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
