file(REMOVE_RECURSE
  "libdg_trace.a"
)
