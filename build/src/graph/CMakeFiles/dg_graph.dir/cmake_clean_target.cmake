file(REMOVE_RECURSE
  "libdg_graph.a"
)
