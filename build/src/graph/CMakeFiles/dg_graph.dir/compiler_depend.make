# Empty compiler generated dependencies file for dg_graph.
# This may be replaced when dependencies are built.
