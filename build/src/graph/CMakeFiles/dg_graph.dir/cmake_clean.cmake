file(REMOVE_RECURSE
  "CMakeFiles/dg_graph.dir/analysis.cpp.o"
  "CMakeFiles/dg_graph.dir/analysis.cpp.o.d"
  "CMakeFiles/dg_graph.dir/disjoint_paths.cpp.o"
  "CMakeFiles/dg_graph.dir/disjoint_paths.cpp.o.d"
  "CMakeFiles/dg_graph.dir/dissemination_graph.cpp.o"
  "CMakeFiles/dg_graph.dir/dissemination_graph.cpp.o.d"
  "CMakeFiles/dg_graph.dir/flow.cpp.o"
  "CMakeFiles/dg_graph.dir/flow.cpp.o.d"
  "CMakeFiles/dg_graph.dir/graph.cpp.o"
  "CMakeFiles/dg_graph.dir/graph.cpp.o.d"
  "CMakeFiles/dg_graph.dir/k_shortest.cpp.o"
  "CMakeFiles/dg_graph.dir/k_shortest.cpp.o.d"
  "CMakeFiles/dg_graph.dir/shortest_path.cpp.o"
  "CMakeFiles/dg_graph.dir/shortest_path.cpp.o.d"
  "libdg_graph.a"
  "libdg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
