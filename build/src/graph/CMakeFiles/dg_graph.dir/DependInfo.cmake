
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/analysis.cpp" "src/graph/CMakeFiles/dg_graph.dir/analysis.cpp.o" "gcc" "src/graph/CMakeFiles/dg_graph.dir/analysis.cpp.o.d"
  "/root/repo/src/graph/disjoint_paths.cpp" "src/graph/CMakeFiles/dg_graph.dir/disjoint_paths.cpp.o" "gcc" "src/graph/CMakeFiles/dg_graph.dir/disjoint_paths.cpp.o.d"
  "/root/repo/src/graph/dissemination_graph.cpp" "src/graph/CMakeFiles/dg_graph.dir/dissemination_graph.cpp.o" "gcc" "src/graph/CMakeFiles/dg_graph.dir/dissemination_graph.cpp.o.d"
  "/root/repo/src/graph/flow.cpp" "src/graph/CMakeFiles/dg_graph.dir/flow.cpp.o" "gcc" "src/graph/CMakeFiles/dg_graph.dir/flow.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/dg_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/dg_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/k_shortest.cpp" "src/graph/CMakeFiles/dg_graph.dir/k_shortest.cpp.o" "gcc" "src/graph/CMakeFiles/dg_graph.dir/k_shortest.cpp.o.d"
  "/root/repo/src/graph/shortest_path.cpp" "src/graph/CMakeFiles/dg_graph.dir/shortest_path.cpp.o" "gcc" "src/graph/CMakeFiles/dg_graph.dir/shortest_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
