# Empty compiler generated dependencies file for remote_surgery.
# This may be replaced when dependencies are built.
