file(REMOVE_RECURSE
  "CMakeFiles/remote_surgery.dir/remote_surgery.cpp.o"
  "CMakeFiles/remote_surgery.dir/remote_surgery.cpp.o.d"
  "remote_surgery"
  "remote_surgery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_surgery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
