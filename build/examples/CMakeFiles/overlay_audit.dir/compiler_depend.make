# Empty compiler generated dependencies file for overlay_audit.
# This may be replaced when dependencies are built.
