file(REMOVE_RECURSE
  "CMakeFiles/overlay_audit.dir/overlay_audit.cpp.o"
  "CMakeFiles/overlay_audit.dir/overlay_audit.cpp.o.d"
  "overlay_audit"
  "overlay_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
