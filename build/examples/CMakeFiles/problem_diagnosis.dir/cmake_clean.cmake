file(REMOVE_RECURSE
  "CMakeFiles/problem_diagnosis.dir/problem_diagnosis.cpp.o"
  "CMakeFiles/problem_diagnosis.dir/problem_diagnosis.cpp.o.d"
  "problem_diagnosis"
  "problem_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/problem_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
