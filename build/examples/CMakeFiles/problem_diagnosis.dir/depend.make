# Empty dependencies file for problem_diagnosis.
# This may be replaced when dependencies are built.
