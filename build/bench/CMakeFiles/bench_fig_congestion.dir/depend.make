# Empty dependencies file for bench_fig_congestion.
# This may be replaced when dependencies are built.
