file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_congestion.dir/bench_fig_congestion.cpp.o"
  "CMakeFiles/bench_fig_congestion.dir/bench_fig_congestion.cpp.o.d"
  "bench_fig_congestion"
  "bench_fig_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
