file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_latency.dir/bench_fig_latency.cpp.o"
  "CMakeFiles/bench_fig_latency.dir/bench_fig_latency.cpp.o.d"
  "bench_fig_latency"
  "bench_fig_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
