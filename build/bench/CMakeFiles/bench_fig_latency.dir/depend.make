# Empty dependencies file for bench_fig_latency.
# This may be replaced when dependencies are built.
