# Empty dependencies file for bench_fig_optimizer.
# This may be replaced when dependencies are built.
