file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_optimizer.dir/bench_fig_optimizer.cpp.o"
  "CMakeFiles/bench_fig_optimizer.dir/bench_fig_optimizer.cpp.o.d"
  "bench_fig_optimizer"
  "bench_fig_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
