file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_case_study.dir/bench_fig_case_study.cpp.o"
  "CMakeFiles/bench_fig_case_study.dir/bench_fig_case_study.cpp.o.d"
  "bench_fig_case_study"
  "bench_fig_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
