
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig_case_study.cpp" "bench/CMakeFiles/bench_fig_case_study.dir/bench_fig_case_study.cpp.o" "gcc" "bench/CMakeFiles/bench_fig_case_study.dir/bench_fig_case_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/playback/CMakeFiles/dg_playback.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dg_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
