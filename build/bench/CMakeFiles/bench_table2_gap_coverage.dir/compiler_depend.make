# Empty compiler generated dependencies file for bench_table2_gap_coverage.
# This may be replaced when dependencies are built.
