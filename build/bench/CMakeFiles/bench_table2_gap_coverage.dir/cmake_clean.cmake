file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_gap_coverage.dir/bench_table2_gap_coverage.cpp.o"
  "CMakeFiles/bench_table2_gap_coverage.dir/bench_table2_gap_coverage.cpp.o.d"
  "bench_table2_gap_coverage"
  "bench_table2_gap_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_gap_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
