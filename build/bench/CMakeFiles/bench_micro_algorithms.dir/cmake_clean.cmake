file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_algorithms.dir/bench_micro_algorithms.cpp.o"
  "CMakeFiles/bench_micro_algorithms.dir/bench_micro_algorithms.cpp.o.d"
  "bench_micro_algorithms"
  "bench_micro_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
