# Empty dependencies file for bench_micro_algorithms.
# This may be replaced when dependencies are built.
