file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_topology.dir/bench_table1_topology.cpp.o"
  "CMakeFiles/bench_table1_topology.dir/bench_table1_topology.cpp.o.d"
  "bench_table1_topology"
  "bench_table1_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
