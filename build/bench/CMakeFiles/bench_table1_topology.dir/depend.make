# Empty dependencies file for bench_table1_topology.
# This may be replaced when dependencies are built.
