# Empty compiler generated dependencies file for bench_fig_problem_classification.
# This may be replaced when dependencies are built.
