file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_problem_classification.dir/bench_fig_problem_classification.cpp.o"
  "CMakeFiles/bench_fig_problem_classification.dir/bench_fig_problem_classification.cpp.o.d"
  "bench_fig_problem_classification"
  "bench_fig_problem_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_problem_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
