file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_dissemination_graphs.dir/bench_fig1_dissemination_graphs.cpp.o"
  "CMakeFiles/bench_fig1_dissemination_graphs.dir/bench_fig1_dissemination_graphs.cpp.o.d"
  "bench_fig1_dissemination_graphs"
  "bench_fig1_dissemination_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_dissemination_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
