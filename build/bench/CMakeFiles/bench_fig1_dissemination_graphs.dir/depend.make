# Empty dependencies file for bench_fig1_dissemination_graphs.
# This may be replaced when dependencies are built.
