# Empty dependencies file for bench_fig_cdf_unavailability.
# This may be replaced when dependencies are built.
