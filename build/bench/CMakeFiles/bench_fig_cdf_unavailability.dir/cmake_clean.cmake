file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_cdf_unavailability.dir/bench_fig_cdf_unavailability.cpp.o"
  "CMakeFiles/bench_fig_cdf_unavailability.dir/bench_fig_cdf_unavailability.cpp.o.d"
  "bench_fig_cdf_unavailability"
  "bench_fig_cdf_unavailability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_cdf_unavailability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
