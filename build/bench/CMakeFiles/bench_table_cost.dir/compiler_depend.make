# Empty compiler generated dependencies file for bench_table_cost.
# This may be replaced when dependencies are built.
