# Empty dependencies file for dgnet.
# This may be replaced when dependencies are built.
