file(REMOVE_RECURSE
  "CMakeFiles/dgnet.dir/dgnet.cpp.o"
  "CMakeFiles/dgnet.dir/dgnet.cpp.o.d"
  "dgnet"
  "dgnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
